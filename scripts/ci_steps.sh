#!/usr/bin/env bash
# Single source of truth for the CI gate. Both scripts/verify.sh (local) and
# .github/workflows/ci.yml (CI) invoke the steps registered here, and the
# `parity` subcommand fails when either side drifts from the registry — so
# the local gate and CI cannot silently diverge.
#
# Usage:
#   ci_steps.sh list         print the registered step names, in order
#   ci_steps.sh run <step>   run one step
#   ci_steps.sh all          run every step, in order
#   ci_steps.sh parity       check verify.sh and ci.yml against the registry
set -euo pipefail
cd "$(dirname "$0")/.."

# Toolchain prefix override: CI's lint job pins an exact toolchain by
# exporting CARGO="cargo +<version>"; everywhere else plain `cargo` resolves
# through rust-toolchain.toml.
CARGO=${CARGO:-cargo}

# Ordered step registry. Adding a step here without wiring it into ci.yml
# (or vice versa) fails `parity`.
CI_STEPS=(fmt clippy build test check-targets doc analyze quickstart fig-ingest-smoke fig-shard-smoke fig-postings-smoke fig-serve-smoke fig-wal-smoke fig-window-smoke serve-smoke wal-smoke)

run_step() {
  echo "==> $1"
  case "$1" in
    fmt) $CARGO fmt --all --check ;;
    clippy) $CARGO clippy --workspace --all-targets -- -D warnings ;;
    build) $CARGO build --release --workspace ;;
    test) $CARGO test --workspace -q ;;
    check-targets) $CARGO check --workspace --examples --benches --bins ;;
    doc) RUSTDOCFLAGS="-D warnings" $CARGO doc --workspace --no-deps --quiet ;;
    analyze)
      # Static analysis + deep invariants (see ROADMAP "Static analysis &
      # invariants"). Three legs:
      #  1. the sitfact-audit lint/drift pass over the whole tree (its report
      #     is uploaded as a CI artifact),
      #  2. the test suite re-run in release mode with the deep `Audit`
      #     validators compiled in (debug test runs get them for free via
      #     debug_assertions; this leg proves the release gate too),
      #  3. the randomized audit_storm smoke over every audited structure.
      $CARGO run --release -p sitfact-audit --bin audit -- \
        --report /tmp/sitfact_audit_report.txt
      $CARGO test --release -q -p situational-facts --features deep-audit
      $CARGO run --release -p sitfact-bench --features deep-audit \
        --bin audit_storm ;;
    quickstart) $CARGO run --release --example quickstart ;;
    fig-ingest-smoke)
      # Small n keeps it fast; the binary asserts batched ingest produces
      # reports identical to the sequential loop before timing anything.
      $CARGO run --release -p sitfact-bench --bin fig_ingest -- \
        --n 1500 --monitor-n 300 --reps 1 --out /tmp/BENCH_ingest_smoke.json ;;
    fig-shard-smoke)
      # Small n; the binary asserts sharded ≡ unsharded (order-normalised)
      # before timing anything, so this doubles as a routing-soundness test.
      $CARGO run --release -p sitfact-bench --bin fig_shard -- \
        --n 1000 --baseline-n 400 --eq-n 600 --reps 1 \
        --out /tmp/BENCH_shard_smoke.json ;;
    fig-postings-smoke)
      # Small n; the binary asserts compressed lists decode to the raw
      # ground truth and that scan/merge/gallop agree on every query before
      # timing anything, so this doubles as an index-soundness test.
      $CARGO run --release -p sitfact-bench --bin fig_postings -- \
        --n 1200 --queries 60 --reps 1 --out /tmp/BENCH_postings_smoke.json ;;
    fig-serve-smoke)
      # Tiny scale; the binary asserts served reports equal an in-process
      # monitor per tenant, in both engine modes, before timing anything —
      # so this doubles as a multi-tenant wire-fidelity test.
      $CARGO run --release -p sitfact-bench --bin fig_serve -- \
        --n 60 --batch 10 --clients-max 2 --reads 40 --reps 1 \
        --out /tmp/BENCH_serve_smoke.json ;;
    fig-wal-smoke)
      # Small n; the binary asserts every recovered monitor is byte-identical
      # to an uninterrupted reference before timing anything, so this doubles
      # as a WAL recovery-fidelity test (log-only and snapshot-bounded).
      $CARGO run --release -p sitfact-bench --bin fig_wal -- \
        --n 400 --batch 16 --reps 1 --out /tmp/BENCH_wal_smoke.json ;;
    fig-window-smoke)
      # Small window, 5x-window stream; the binary asserts windowed ≡
      # rebuild-from-suffix (byte-identical continuation reports) and that
      # windowed memory stays bounded past the 2x-window fill level before
      # timing anything, so this doubles as a retraction-correctness test.
      $CARGO run --release -p sitfact-bench --bin fig_window -- \
        --window 120 --mult 5 --batch 8 --reps 1 \
        --out /tmp/BENCH_window_smoke.json ;;
    serve-smoke)
      # Round-trip the TCP service front-end: start a sharded server on an
      # ephemeral port (it writes the bound address to a file), stream rows
      # through the client binary over both INGEST and INGEST_BATCH, assert a
      # non-empty report, then shut the server down over the wire. Two
      # private tenants stream first (isolated OPEN/USE sessions with
      # different seeds), then the default tenant asserts facts and shuts
      # the server down. The server binary is backgrounded directly (not via
      # `cargo run`, whose wrapper PID would survive a kill and leak the
      # real server on failure).
      $CARGO build --release -p sitfact-serve
      local port_file=/tmp/sitfact_serve_port
      rm -f "$port_file"
      target/release/sitfact_serve \
        --addr 127.0.0.1:0 --port-file "$port_file" --shards 2 --tau 50 &
      local server_pid=$!
      local client_ok=1
      target/release/sitfact_client \
        --port-file "$port_file" --n 32 --batch 8 --seed 11 \
        --tenant east --tau 50 --assert-facts || client_ok=0
      target/release/sitfact_client \
        --port-file "$port_file" --n 24 --batch 6 --seed 23 \
        --tenant west --tau 50 --assert-facts || client_ok=0
      target/release/sitfact_client \
        --port-file "$port_file" --n 48 --batch 16 --assert-facts \
        --shutdown || client_ok=0
      if [[ "$client_ok" != 1 ]]; then
        kill "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
        echo "serve-smoke: client round trip failed" >&2
        return 1
      fi
      wait "$server_pid" ;;
    wal-smoke)
      # Kill-and-recover round trip for the durable server: ingest over the
      # wire into a --data-dir server, fingerprint its TOPK + STATS, SIGKILL
      # it (no clean shutdown — the WAL is the only survivor), restart it on
      # the same directory, and assert the recovered state matches the
      # fingerprint byte for byte before shutting down cleanly.
      $CARGO build --release -p sitfact-serve
      local data_dir=/tmp/sitfact_wal_smoke_data
      local port_file=/tmp/sitfact_wal_smoke_port
      local state_file=/tmp/sitfact_wal_smoke_state
      rm -rf "$data_dir"
      rm -f "$port_file" "$state_file"
      target/release/sitfact_serve \
        --addr 127.0.0.1:0 --port-file "$port_file" --tau 50 \
        --data-dir "$data_dir" &
      local server_pid=$!
      if ! target/release/sitfact_client \
        --port-file "$port_file" --n 40 --batch 8 --seed 11 \
        --assert-facts --state-out "$state_file"; then
        kill -9 "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
        echo "wal-smoke: pre-kill client round trip failed" >&2
        return 1
      fi
      kill -9 "$server_pid"
      wait "$server_pid" 2>/dev/null || true
      rm -f "$port_file"
      target/release/sitfact_serve \
        --addr 127.0.0.1:0 --port-file "$port_file" --tau 50 \
        --data-dir "$data_dir" &
      server_pid=$!
      if ! target/release/sitfact_client \
        --port-file "$port_file" --n 0 --state-expect "$state_file" \
        --shutdown; then
        kill "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
        echo "wal-smoke: recovered server state drifted from pre-kill" >&2
        return 1
      fi
      wait "$server_pid" ;;
    *) echo "ci_steps.sh: unknown step '$1'" >&2; exit 64 ;;
  esac
}

parity() {
  local ci=.github/workflows/ci.yml verify=scripts/verify.sh fail=0
  # Every registered step must be wired into CI …
  for step in "${CI_STEPS[@]}"; do
    if ! grep -Eq "ci_steps\.sh run $step( |\"|$)" "$ci"; then
      echo "parity: step '$step' is registered here but not invoked by $ci" >&2
      fail=1
    fi
  done
  # … and CI must not invoke steps this registry does not know.
  while read -r step; do
    local known=0
    for s in "${CI_STEPS[@]}"; do [[ "$s" == "$step" ]] && known=1; done
    if [[ "$known" == 0 ]]; then
      echo "parity: $ci invokes unknown step '$step' (add it to CI_STEPS)" >&2
      fail=1
    fi
  done < <(grep -Eo "ci_steps\.sh run [a-z-]+" "$ci" | awk '{print $3}' | sort -u)
  # The local gate must run the full registry (and this parity check).
  if ! grep -q "ci_steps.sh all" "$verify"; then
    echo "parity: $verify does not run 'ci_steps.sh all'" >&2
    fail=1
  fi
  if ! grep -q "ci_steps.sh parity" "$verify"; then
    echo "parity: $verify does not run 'ci_steps.sh parity'" >&2
    fail=1
  fi
  if [[ "$fail" != 0 ]]; then
    echo "parity: scripts/ci_steps.sh, scripts/verify.sh and $ci drifted" >&2
    exit 1
  fi
  echo "parity: local gate and CI agree on: ${CI_STEPS[*]}"
}

case "${1:-}" in
  list) printf '%s\n' "${CI_STEPS[@]}" ;;
  run) shift; run_step "${1:?usage: ci_steps.sh run <step>}" ;;
  all) for step in "${CI_STEPS[@]}"; do run_step "$step"; done ;;
  parity) parity ;;
  *) echo "usage: ci_steps.sh {list|run <step>|all|parity}" >&2; exit 64 ;;
esac
