#!/usr/bin/env bash
# Local mirror of the CI gate: run before pushing. The actual commands live
# in scripts/ci_steps.sh, shared with .github/workflows/ci.yml; the parity
# step fails if the local gate and CI ever diverge.
set -euo pipefail
cd "$(dirname "$0")/.."

scripts/ci_steps.sh parity
scripts/ci_steps.sh all

echo "All green."
