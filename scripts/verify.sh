#!/usr/bin/env bash
# Local mirror of the CI gate (.github/workflows/ci.yml): run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo check --workspace --examples --benches --bins (smoke)"
cargo check --workspace --examples --benches --bins

echo "==> fig_ingest smoke run (batched ingest equivalence + throughput)"
cargo run --release -p sitfact-bench --bin fig_ingest -- \
  --n 1500 --monitor-n 300 --reps 1 --out /tmp/BENCH_ingest_smoke.json

echo "==> cargo doc --workspace --no-deps (rustdoc warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "All green."
