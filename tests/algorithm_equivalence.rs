//! Cross-crate equivalence tests: every discovery algorithm must produce the
//! same fact stream as the brute-force reference on realistic generated
//! workloads (NBA, weather, and generic anti-correlated data).

use sitfact_core::pair::canonical_sort;
use situational_facts::datagen::generic::{Correlation, GenericConfig, GenericGenerator};
use situational_facts::datagen::nba::{NbaConfig, NbaGenerator};
use situational_facts::datagen::weather::{WeatherConfig, WeatherGenerator};
use situational_facts::datagen::{encode_row, DataGenerator};
use situational_facts::prelude::*;

/// Streams `n` rows from `generator` through every algorithm and asserts that
/// each produces exactly the brute-force fact set at every arrival.
fn assert_all_algorithms_agree<G: DataGenerator>(
    mut generator: G,
    n: usize,
    config: DiscoveryConfig,
) {
    let schema = generator.schema().clone();
    let mut table = Table::new(schema.clone());

    let mut reference = BruteForce::new(&schema, config);
    let fs_dir_bu = std::env::temp_dir().join(format!(
        "sitfact-eq-bu-{}-{}",
        std::process::id(),
        schema.name()
    ));
    let fs_dir_td = std::env::temp_dir().join(format!(
        "sitfact-eq-td-{}-{}",
        std::process::id(),
        schema.name()
    ));
    let _ = std::fs::remove_dir_all(&fs_dir_bu);
    let _ = std::fs::remove_dir_all(&fs_dir_td);

    let mut algorithms: Vec<Box<dyn Discovery>> = vec![
        Box::new(BaselineSeq::new(&schema, config)),
        Box::new(BaselineIdx::new(&schema, config)),
        Box::new(CCsc::new(&schema, config)),
        Box::new(BottomUp::new(&schema, config)),
        Box::new(TopDown::new(&schema, config)),
        Box::new(SBottomUp::new(&schema, config)),
        Box::new(STopDown::new(&schema, config)),
        Box::new(FsBottomUp::with_store(
            &schema,
            config,
            FileSkylineStore::new(&fs_dir_bu).unwrap(),
        )),
        Box::new(FsTopDown::with_store(
            &schema,
            config,
            FileSkylineStore::new(&fs_dir_td).unwrap(),
        )),
    ];

    for step in 0..n {
        let row = generator.next_row();
        let tuple = encode_row(&mut table, &row).expect("row encodes");
        let mut expected = reference.discover(&table, &tuple);
        canonical_sort(&mut expected);
        for algo in algorithms.iter_mut() {
            let mut actual = algo.discover(&table, &tuple);
            canonical_sort(&mut actual);
            assert_eq!(
                expected,
                actual,
                "{} diverged from BruteForce at tuple {} of {}",
                algo.name(),
                step,
                schema.name()
            );
        }
        table.append(tuple).unwrap();
    }

    drop(algorithms);
    let _ = std::fs::remove_dir_all(&fs_dir_bu);
    let _ = std::fs::remove_dir_all(&fs_dir_td);
}

#[test]
fn all_algorithms_agree_on_nba_stream() {
    let generator = NbaGenerator::new(NbaConfig {
        dimensions: 4,
        measures: 3,
        players: 25,
        teams: 6,
        seasons: 2,
        games_per_season: 60,
        seed: 424_242,
    });
    assert_all_algorithms_agree(generator, 90, DiscoveryConfig::unrestricted());
}

#[test]
fn all_algorithms_agree_on_nba_stream_with_caps() {
    let generator = NbaGenerator::new(NbaConfig {
        dimensions: 5,
        measures: 4,
        players: 20,
        teams: 5,
        seasons: 2,
        games_per_season: 40,
        seed: 31_337,
    });
    assert_all_algorithms_agree(generator, 60, DiscoveryConfig::capped(3, 3));
}

#[test]
fn all_algorithms_agree_on_weather_stream() {
    let generator = WeatherGenerator::new(WeatherConfig {
        dimensions: 4,
        measures: 3,
        locations: 15,
        records_per_day: 15,
        seed: 55,
    });
    assert_all_algorithms_agree(generator, 80, DiscoveryConfig::unrestricted());
}

#[test]
fn all_algorithms_agree_on_anticorrelated_workload() {
    // Anti-correlated measures maximise skyline sizes — the stress case for
    // store maintenance (demotions in TopDown, deletions in BottomUp).
    let generator = GenericGenerator::new(GenericConfig {
        dim_cardinalities: vec![3, 3, 2],
        measures: 3,
        correlation: Correlation::AntiCorrelated,
        seed: 77,
    });
    assert_all_algorithms_agree(generator, 80, DiscoveryConfig::unrestricted());
}

#[test]
fn all_algorithms_agree_with_duplicate_heavy_workload() {
    // Many exactly-equal measure vectors exercise the tie-handling paths of
    // the dominance relation (equal tuples never dominate each other).
    let generator = GenericGenerator::new(GenericConfig {
        dim_cardinalities: vec![2, 2],
        measures: 2,
        correlation: Correlation::Correlated,
        seed: 88,
    });
    // Quantise measures to a handful of values by regenerating rows.
    struct Quantised<G>(G);
    impl<G: DataGenerator> DataGenerator for Quantised<G> {
        fn schema(&self) -> &Schema {
            self.0.schema()
        }
        fn next_row(&mut self) -> Row {
            let mut row = self.0.next_row();
            for m in &mut row.measures {
                *m = (*m / 250.0).round();
            }
            row
        }
    }
    assert_all_algorithms_agree(Quantised(generator), 100, DiscoveryConfig::unrestricted());
}
