//! Edge-case integration tests: degenerate schemas, pathological streams and
//! configuration extremes that the randomized equivalence tests are unlikely
//! to hit densely.

use sitfact_core::pair::canonical_sort;
use situational_facts::prelude::*;

fn single_attr_schema() -> Schema {
    SchemaBuilder::new("tiny")
        .dimension("d")
        .measure("m", Direction::HigherIsBetter)
        .build()
        .unwrap()
}

/// With one dimension and one measure the problem degenerates to "is this the
/// best value ever seen (a) overall and (b) for its own dimension value" —
/// easy to reason about by hand.
#[test]
fn single_dimension_single_measure_stream() {
    let schema = single_attr_schema();
    let config = DiscoveryConfig::unrestricted();
    let mut table = Table::new(schema.clone());
    let mut algo = STopDown::new(&schema, config);

    // Values arrive: (a, 5), (b, 7), (a, 6), (a, 4).
    let rows = [("a", 5.0), ("b", 7.0), ("a", 6.0), ("a", 4.0)];
    let mut last_facts = Vec::new();
    for (dim, value) in rows {
        let ids = table.schema_mut().intern_dims(&[dim]).unwrap();
        let t = Tuple::new(ids, vec![value]);
        last_facts = algo.discover(&table, &t);
        table.append(t).unwrap();
    }
    // The last tuple (a, 4) is beaten overall (7) and within d=a (6): no facts.
    assert!(last_facts.is_empty());

    // A record-setting arrival produces both facts (⊤ and d=a).
    let ids = table.schema_mut().intern_dims(&["a"]).unwrap();
    let t = Tuple::new(ids, vec![99.0]);
    let facts = algo.discover(&table, &t);
    assert_eq!(facts.len(), 2);
}

/// Streams where every tuple is identical: everyone stays in every skyline
/// (equal tuples never dominate each other), so every constraint–measure pair
/// is a fact for every arrival.
#[test]
fn identical_tuples_never_dominate_each_other() {
    let schema = SchemaBuilder::new("same")
        .dimension("d0")
        .dimension("d1")
        .measure("m0", Direction::HigherIsBetter)
        .measure("m1", Direction::LowerIsBetter)
        .build()
        .unwrap();
    let config = DiscoveryConfig::unrestricted();
    let mut table = Table::new(schema.clone());
    let mut bottom_up = BottomUp::new(&schema, config);
    let mut top_down = TopDown::new(&schema, config);
    for _ in 0..20 {
        let t = Tuple::new(vec![0, 0], vec![3.0, 3.0]);
        let a = bottom_up.discover(&table, &t);
        let b = top_down.discover(&table, &t);
        // 4 constraints × 3 subspaces.
        assert_eq!(a.len(), 12);
        assert_eq!(b.len(), 12);
        table.append(t).unwrap();
    }
    // BottomUp stores every copy at every cell; TopDown should also keep all
    // 20 copies but only at the single maximal constraint ⊤ per subspace.
    assert_eq!(bottom_up.store_stats().stored_entries, 20 * 12);
    assert_eq!(top_down.store_stats().stored_entries, 20 * 3);
}

/// A strictly improving stream: each arrival dominates all history, so each
/// arrival is a fact everywhere and evicts the previous skyline tuple.
#[test]
fn strictly_improving_stream_keeps_stores_minimal() {
    let schema = SchemaBuilder::new("mono")
        .dimension("d0")
        .measure("m0", Direction::HigherIsBetter)
        .measure("m1", Direction::HigherIsBetter)
        .build()
        .unwrap();
    let config = DiscoveryConfig::unrestricted();
    let mut table = Table::new(schema.clone());
    let mut algo = SBottomUp::new(&schema, config);
    for i in 0..30 {
        let t = Tuple::new(vec![0], vec![i as f64, i as f64]);
        let facts = algo.discover(&table, &t);
        assert_eq!(facts.len(), 2 * 3); // 2 constraints × 3 subspaces
        table.append(t).unwrap();
    }
    // Only the latest tuple remains anywhere: 2 constraints × 3 subspaces.
    assert_eq!(algo.store_stats().stored_entries, 6);
}

/// A strictly worsening stream: after the first tuple, later arrivals only
/// stand out in contexts they newly create (none here, single dimension value).
#[test]
fn strictly_worsening_stream_produces_no_new_facts() {
    let schema = SchemaBuilder::new("down")
        .dimension("d0")
        .measure("m0", Direction::HigherIsBetter)
        .build()
        .unwrap();
    let config = DiscoveryConfig::unrestricted();
    let mut table = Table::new(schema.clone());
    let mut algo = STopDown::new(&schema, config);
    let mut last = Vec::new();
    for i in 0..10 {
        let t = Tuple::new(vec![0], vec![(100 - i) as f64]);
        last = algo.discover(&table, &t);
        table.append(t).unwrap();
    }
    assert!(last.is_empty());
}

/// `d̂ = 1`, `m̂ = 1`: only single-attribute constraints and single measures
/// are reported, yet the shared variants still maintain the full space
/// internally. All algorithms must agree under these caps.
#[test]
fn tightest_caps_still_agree_across_algorithms() {
    use rand::prelude::*;
    let mut rng = StdRng::seed_from_u64(4_040);
    let schema = SchemaBuilder::new("caps")
        .dimension("d0")
        .dimension("d1")
        .dimension("d2")
        .measure("m0", Direction::HigherIsBetter)
        .measure("m1", Direction::LowerIsBetter)
        .measure("m2", Direction::HigherIsBetter)
        .build()
        .unwrap();
    let config = DiscoveryConfig::capped(1, 1);
    let mut table = Table::new(schema.clone());
    let mut reference = BruteForce::new(&schema, config);
    let mut subjects: Vec<Box<dyn Discovery>> = vec![
        Box::new(BaselineSeq::new(&schema, config)),
        Box::new(CCsc::new(&schema, config)),
        Box::new(BottomUp::new(&schema, config)),
        Box::new(TopDown::new(&schema, config)),
        Box::new(SBottomUp::new(&schema, config)),
        Box::new(STopDown::new(&schema, config)),
    ];
    for _ in 0..60 {
        let t = Tuple::new(
            vec![
                rng.gen_range(0..3),
                rng.gen_range(0..3),
                rng.gen_range(0..2),
            ],
            vec![
                rng.gen_range(0..5) as f64,
                rng.gen_range(0..5) as f64,
                rng.gen_range(0..5) as f64,
            ],
        );
        let mut expected = reference.discover(&table, &t);
        canonical_sort(&mut expected);
        assert!(expected
            .iter()
            .all(|f| f.constraint.bound_count() <= 1 && f.subspace.len() == 1));
        for algo in subjects.iter_mut() {
            let mut actual = algo.discover(&table, &t);
            canonical_sort(&mut actual);
            assert_eq!(expected, actual, "{} under caps (1,1)", algo.name());
        }
        table.append(t).unwrap();
    }
}

/// The file-backed store persists across algorithm instances: a restarted
/// monitor sees the skyline state its predecessor wrote.
#[test]
fn file_store_state_survives_restart() {
    let dir = std::env::temp_dir().join(format!("sitfact-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let schema = SchemaBuilder::new("persist")
        .dimension("d0")
        .measure("m0", Direction::HigherIsBetter)
        .build()
        .unwrap();
    let constraint = Constraint::top(1);
    let full = SubspaceMask::full(1);

    {
        let mut store = FileSkylineStore::new(&dir).unwrap();
        store.insert(
            &constraint,
            full,
            sitfact_storage::StoredEntry::new(0, &[42.0]),
        );
        store.flush();
    }
    // A fresh store over the same directory starts from an empty index by
    // design (see module docs), but the file itself is still on disk; a new
    // monitor therefore starts cleanly without tripping over stale state.
    {
        let mut algo = FsTopDown::with_store(
            &schema,
            DiscoveryConfig::unrestricted(),
            FileSkylineStore::new(&dir).unwrap(),
        );
        let table = Table::new(schema.clone());
        let t = Tuple::new(vec![0], vec![1.0]);
        let facts = algo.discover(&table, &t);
        assert_eq!(facts.len(), 2);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Very wide contexts: many tuples share every dimension value, so contexts
/// grow large while the number of distinct constraints stays tiny. Exercises
/// skyline eviction (BottomUp deletions / TopDown demotions) heavily.
#[test]
fn wide_context_eviction_consistency() {
    use rand::prelude::*;
    let mut rng = StdRng::seed_from_u64(31_415);
    let schema = SchemaBuilder::new("wide")
        .dimension("d0")
        .measure("m0", Direction::HigherIsBetter)
        .measure("m1", Direction::HigherIsBetter)
        .build()
        .unwrap();
    let config = DiscoveryConfig::unrestricted();
    let mut table = Table::new(schema.clone());
    let mut bottom_up = BottomUp::new(&schema, config);
    let mut top_down = TopDown::new(&schema, config);
    for _ in 0..200 {
        let t = Tuple::new(
            vec![0],
            vec![rng.gen_range(0..30) as f64, rng.gen_range(0..30) as f64],
        );
        let mut a = bottom_up.discover(&table, &t);
        let mut b = top_down.discover(&table, &t);
        canonical_sort(&mut a);
        canonical_sort(&mut b);
        assert_eq!(a, b);
        table.append(t).unwrap();
    }
    // Ground truth for the full space on the single context ⊤.
    let dirs = table.schema().directions().to_vec();
    let expected =
        sitfact_core::dominance::skyline_of(table.iter(), SubspaceMask::full(2), &dirs).len();
    let mut check_bu = bottom_up;
    assert_eq!(
        check_bu.skyline_cardinality(&table, &Constraint::top(1), SubspaceMask::full(2)),
        expected
    );
    let mut check_td = top_down;
    assert_eq!(
        check_td.skyline_cardinality(&table, &Constraint::top(1), SubspaceMask::full(2)),
        expected
    );
}

/// Prominence monitoring with τ = 1 surfaces something for every arrival that
/// enters any contextual skyline at all (prominence is always ≥ 1, so the
/// threshold never filters), an arrival dominated in every context reports
/// nothing, and keep_top never drops prominent facts.
#[test]
fn monitor_with_minimal_threshold_always_reports() {
    let schema = single_attr_schema();
    let algo = SBottomUp::new(&schema, DiscoveryConfig::unrestricted());
    let mut monitor = FactMonitor::new(
        schema,
        algo,
        MonitorConfig::default().with_tau(1.0).with_keep_top(1),
    );
    let (mut with_facts, mut dominated) = (0, 0);
    for i in 0..25 {
        let report = monitor
            .ingest_raw(&[if i % 2 == 0 { "a" } else { "b" }], vec![(i % 7) as f64])
            .unwrap();
        if report.facts.is_empty() {
            // Dominated in both its contexts (⊤ and its own dimension value):
            // nothing to report, prominent or otherwise.
            assert_eq!(report.prominent_count, 0);
            dominated += 1;
        } else {
            assert!(report.prominent_count >= 1);
            assert!(report.facts.len() >= report.prominent_count);
            with_facts += 1;
        }
    }
    // The cycling stream exercises both outcomes: record-setters near the top
    // of each 0..7 cycle, dominated arrivals near its bottom.
    assert!(with_facts > 0, "stream never produced a fact");
    assert!(dominated > 0, "stream never produced a dominated arrival");
}
