//! Property-based tests (proptest) for the core invariants the algorithms
//! rely on: the dominance relation is a strict partial order, Proposition 4's
//! partition agrees with direct dominance in every subspace, constraint
//! subsumption mirrors the bound-mask lattice, skyline constraints are
//! downward-closed, and the incremental algorithms match the brute-force
//! reference on arbitrary streams.

use proptest::prelude::*;
use sitfact_core::dominance::{self, DominancePartition};
use sitfact_core::pair::canonical_sort;
use situational_facts::prelude::*;

/// Ends a property with a structure's deep [`Audit`], converting a violation
/// into a failing case carrying its `explain()` message.
fn deep_audit(subject: &impl Audit) -> Result<(), String> {
    subject.check().map_err(|v| v.explain())
}

const DIRS: [Direction; 3] = [
    Direction::HigherIsBetter,
    Direction::LowerIsBetter,
    Direction::HigherIsBetter,
];

fn tuple_strategy() -> impl Strategy<Value = Tuple> {
    (
        prop::collection::vec(0u32..4, 3),
        prop::collection::vec(0i32..6, 3),
    )
        .prop_map(|(dims, measures)| {
            Tuple::new(dims, measures.into_iter().map(|m| m as f64).collect())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Dominance is irreflexive and asymmetric in every subspace.
    #[test]
    fn dominance_is_a_strict_partial_order(a in tuple_strategy(), b in tuple_strategy(), c in tuple_strategy()) {
        for m in SubspaceMask::enumerate(3, 3) {
            prop_assert!(!dominance::dominates(&a, &a, m, &DIRS));
            if dominance::dominates(&a, &b, m, &DIRS) {
                prop_assert!(!dominance::dominates(&b, &a, m, &DIRS));
            }
            // Transitivity.
            if dominance::dominates(&a, &b, m, &DIRS) && dominance::dominates(&b, &c, m, &DIRS) {
                prop_assert!(dominance::dominates(&a, &c, m, &DIRS));
            }
        }
    }

    /// Proposition 4: the full-space partition decides dominance in every
    /// subspace exactly.
    #[test]
    fn partition_agrees_with_direct_dominance(a in tuple_strategy(), b in tuple_strategy()) {
        let p = DominancePartition::compute(&a, &b, &DIRS);
        for m in SubspaceMask::enumerate(3, 3) {
            prop_assert_eq!(p.left_dominates_in(m), dominance::dominates(&a, &b, m, &DIRS));
            prop_assert_eq!(p.left_dominated_in(m), dominance::dominates(&b, &a, m, &DIRS));
        }
        // The three masks partition the measure space.
        let union = p.better.union(p.worse).union(p.equal);
        prop_assert_eq!(union, SubspaceMask::full(3));
        prop_assert!(p.better.intersect(p.worse).is_empty());
        prop_assert!(p.better.intersect(p.equal).is_empty());
    }

    /// For constraints derived from the same tuple, subsumption is exactly the
    /// submask relation, and σ_C monotonically shrinks as constraints bind
    /// more attributes.
    #[test]
    fn subsumption_mirrors_bound_masks(t in tuple_strategy(), other in tuple_strategy(), a in 0u32..8, b in 0u32..8) {
        let ca = Constraint::from_tuple_mask(&t, BoundMask(a));
        let cb = Constraint::from_tuple_mask(&t, BoundMask(b));
        prop_assert_eq!(ca.is_subsumed_by(&cb), BoundMask(b).is_submask_of(BoundMask(a)));
        // Subsumption implies context containment for arbitrary tuples.
        if ca.is_subsumed_by(&cb) && ca.matches(&other) {
            prop_assert!(cb.matches(&other));
        }
        // The agreement mask is exactly the set of constraints of C^t that the
        // other tuple satisfies.
        let agreement = BoundMask::agreement(&t, &other);
        for mask in 0u32..8 {
            let c = Constraint::from_tuple_mask(&t, BoundMask(mask));
            prop_assert_eq!(c.matches(&other), BoundMask(mask).is_submask_of(agreement));
        }
    }

    /// Skyline constraints are downward-closed: if the new tuple is in the
    /// contextual skyline at C, it is also in the skyline at every descendant
    /// of C it satisfies.
    #[test]
    fn skyline_constraints_are_downward_closed(
        history in prop::collection::vec(tuple_strategy(), 1..40),
        t in tuple_strategy(),
    ) {
        let schema = SchemaBuilder::new("p")
            .dimension("d0").dimension("d1").dimension("d2")
            .measure("m0", DIRS[0])
            .measure("m1", DIRS[1])
            .measure("m2", DIRS[2])
            .build().unwrap();
        let mut table = Table::new(schema.clone());
        for h in &history {
            table.append(h.clone()).unwrap();
        }
        let mut algo = BruteForce::new(&schema, DiscoveryConfig::unrestricted());
        let facts = algo.discover(&table, &t);
        let lattice = ConstraintLattice::unrestricted(3);
        for fact in &facts {
            let mask = fact.constraint.bound_mask();
            for descendant in lattice.descendants(mask) {
                let child = Constraint::from_tuple_mask(&t, descendant);
                prop_assert!(
                    facts.iter().any(|f| f.subspace == fact.subspace && f.constraint == child),
                    "skyline at {:?} but not at descendant {:?}", mask, descendant
                );
            }
        }
        deep_audit(&table)?;
    }

    /// The flagship incremental algorithm (STopDown) matches BruteForce on
    /// arbitrary random streams — a property-based restatement of the
    /// equivalence tests with proptest-driven inputs and shrinking.
    #[test]
    fn stopdown_matches_bruteforce_on_arbitrary_streams(
        stream in prop::collection::vec(tuple_strategy(), 1..30),
    ) {
        let schema = SchemaBuilder::new("p")
            .dimension("d0").dimension("d1").dimension("d2")
            .measure("m0", DIRS[0])
            .measure("m1", DIRS[1])
            .measure("m2", DIRS[2])
            .build().unwrap();
        let config = DiscoveryConfig::unrestricted();
        let mut table = Table::new(schema.clone());
        let mut subject = STopDown::new(&schema, config);
        let mut reference = BruteForce::new(&schema, config);
        for t in stream {
            let mut expected = reference.discover(&table, &t);
            let mut actual = subject.discover(&table, &t);
            canonical_sort(&mut expected);
            canonical_sort(&mut actual);
            prop_assert_eq!(expected, actual);
            table.append(t).unwrap();
        }
        deep_audit(&table)?;
    }

    /// The inverted-index context (posting-list intersection) returns exactly
    /// the same `(id, tuple)` sequence as a naive predicate scan, for random
    /// schema widths and random constraints — including the top constraint
    /// and constraints binding never-observed values.
    #[test]
    fn indexed_context_equals_naive_scan(
        n_dims in 1usize..5,
        n_measures in 1usize..3,
        rows in prop::collection::vec(
            (prop::collection::vec(0u32..5, 4), 0i32..9),
            0..60,
        ),
        constraint_seeds in prop::collection::vec(prop::collection::vec(0u32..8, 4), 1..16),
    ) {
        let mut builder = SchemaBuilder::new("p");
        for d in 0..n_dims {
            builder = builder.dimension(format!("d{d}"));
        }
        for m in 0..n_measures {
            builder = builder.measure(format!("m{m}"), Direction::HigherIsBetter);
        }
        let schema = builder.build().unwrap();
        let mut table = Table::new(schema);
        for (dims, measure) in &rows {
            let t = Tuple::new(
                dims[..n_dims].to_vec(),
                vec![*measure as f64; n_measures],
            );
            table.append(t).unwrap();
        }
        // Random constraints: seed values 0..5 are (potentially) observed,
        // 5 and 6 are never observed, 7 maps to `*`. The explicit top
        // constraint is always exercised too.
        let mut constraints: Vec<Constraint> = vec![Constraint::top(n_dims)];
        for seed in &constraint_seeds {
            let values = seed[..n_dims]
                .iter()
                .map(|&v| if v == 7 { sitfact_core::UNBOUND } else { v })
                .collect();
            constraints.push(Constraint::from_values(values));
        }
        for c in &constraints {
            let indexed: Vec<(TupleId, Tuple)> =
                table.context(c).map(|(id, t)| (id, t.to_tuple())).collect();
            let scanned: Vec<(TupleId, Tuple)> = table
                .context_scan(c)
                .map(|(id, t)| (id, t.to_tuple()))
                .collect();
            prop_assert_eq!(&indexed, &scanned);
            prop_assert_eq!(indexed.len(), table.context_cardinality(c));
            // The probe bound brackets the result: the intersection can never
            // be larger than its smallest posting list, which in turn never
            // exceeds a full scan.
            prop_assert!(indexed.len() <= table.context_probe_bound(c));
            prop_assert!(table.context_probe_bound(c) <= table.len());
        }
        deep_audit(&table)?;
    }

    /// `append_batch` ≡ a loop of `append`: identical table contents (length,
    /// every row, heap-byte accounting), identical posting lists and
    /// identical probe bounds, for random schema widths and random windows —
    /// including value ids far outside the dense range (which push the batch
    /// path onto its sort-merge fallback) and a batch split at a random
    /// boundary (so batches compose with prior contents).
    #[test]
    fn append_batch_equals_append_loop(
        n_dims in 1usize..5,
        n_measures in 1usize..3,
        rows in prop::collection::vec(
            (prop::collection::vec(0u32..1000, 4), 0i32..9),
            0..60,
        ),
        split_seed in 0usize..64,
        constraint_seeds in prop::collection::vec(prop::collection::vec(0u32..8, 4), 1..8),
    ) {
        let mut builder = SchemaBuilder::new("p");
        for d in 0..n_dims {
            builder = builder.dimension(format!("d{d}"));
        }
        for m in 0..n_measures {
            builder = builder.measure(format!("m{m}"), Direction::HigherIsBetter);
        }
        let schema = builder.build().unwrap();
        // Mix dense ids with occasional huge ones so both the counting-sort
        // fast path and the sparse fallback are exercised.
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|(dims, measure)| {
                let dims = dims[..n_dims]
                    .iter()
                    .map(|&v| if v >= 995 { v * 100_000 } else { v % 6 })
                    .collect();
                Tuple::new(dims, vec![*measure as f64; n_measures])
            })
            .collect();

        let mut looped = Table::new(schema.clone());
        for t in &tuples {
            looped.append(t.clone()).unwrap();
        }
        let mut batched = Table::new(schema.clone());
        let split = if tuples.is_empty() { 0 } else { split_seed % (tuples.len() + 1) };
        let first = batched.append_batch(tuples[..split].to_vec()).unwrap();
        let second = batched.append_batch_slice(&tuples[split..]).unwrap();
        prop_assert_eq!(first, 0..split as TupleId);
        prop_assert_eq!(second, split as TupleId..tuples.len() as TupleId);

        prop_assert_eq!(batched.len(), looped.len());
        prop_assert_eq!(batched.approx_heap_bytes(), looped.approx_heap_bytes());
        for ((id_a, row_a), (id_b, row_b)) in batched.iter().zip(looped.iter()) {
            prop_assert_eq!(id_a, id_b);
            prop_assert_eq!(row_a, row_b);
        }
        // Every posting list agrees (checked through every value actually
        // observed, per attribute).
        for attr in 0..n_dims {
            for value in tuples.iter().map(|t| t.dim(attr)) {
                prop_assert_eq!(
                    batched.posting_list(attr, value),
                    looped.posting_list(attr, value)
                );
            }
        }
        // Context retrieval and its work bound agree for random constraints.
        for seed in &constraint_seeds {
            let values = seed[..n_dims]
                .iter()
                .map(|&v| if v == 7 { sitfact_core::UNBOUND } else { v })
                .collect();
            let c = Constraint::from_values(values);
            let a: Vec<TupleId> = batched.context(&c).map(|(id, _)| id).collect();
            let b: Vec<TupleId> = looped.context(&c).map(|(id, _)| id).collect();
            prop_assert_eq!(a, b);
            prop_assert_eq!(batched.context_probe_bound(&c), looped.context_probe_bound(&c));
        }
        deep_audit(&batched)?;
        deep_audit(&looped)?;
    }

    /// `FactMonitor::ingest_batch` ≡ a sequential `ingest` loop: identical
    /// `ArrivalReport`s — tuple ids, fact order, cardinalities, prominent
    /// counts — for random streams split into random windows.
    #[test]
    fn monitor_ingest_batch_equals_sequential(
        stream in prop::collection::vec(tuple_strategy(), 1..30),
        window_seed in 1usize..8,
    ) {
        let schema = SchemaBuilder::new("p")
            .dimension("d0").dimension("d1").dimension("d2")
            .measure("m0", DIRS[0])
            .measure("m1", DIRS[1])
            .measure("m2", DIRS[2])
            .build().unwrap();
        let config = MonitorConfig::default().with_tau(2.0);
        let mut sequential = FactMonitor::new(
            schema.clone(),
            STopDown::new(&schema, config.discovery),
            config,
        );
        let mut batched = FactMonitor::new(
            schema.clone(),
            STopDown::new(&schema, config.discovery),
            config,
        );
        let expected = sequential.ingest_all(stream.clone()).unwrap();
        let mut actual = Vec::new();
        for window in stream.chunks(window_seed) {
            actual.extend(batched.ingest_batch_slice(window).unwrap());
        }
        for report in &actual {
            deep_audit(report)?;
        }
        prop_assert_eq!(actual, expected);
        prop_assert_eq!(batched.table().len(), sequential.table().len());
        deep_audit(&sequential)?;
        deep_audit(&batched)?;
    }

    /// A `ShardedMonitor` produces reports byte-identical to an unsharded
    /// `FactMonitor` running the same anchored config — for random schema
    /// widths, random routing attributes, random shard counts and random
    /// window splits. This is the routing-soundness theorem of the sharded
    /// design: anchoring the constraint space on the routing attribute
    /// confines every reported fact's context to a single shard, and the
    /// canonical ranking order (`RankedFact::ranking_cmp`) makes each report
    /// a pure function of that fact set, emission order be damned.
    #[test]
    fn sharded_monitor_equals_unsharded(
        n_dims in 1usize..4,
        routing_seed in 0usize..4,
        num_shards in 1usize..5,
        window_seed in 1usize..9,
        rows in prop::collection::vec(
            (prop::collection::vec(0u32..4, 3), 0i32..6, 0i32..6),
            1..35,
        ),
    ) {
        let routing_dim = routing_seed % n_dims;
        let mut builder = SchemaBuilder::new("p");
        for d in 0..n_dims {
            builder = builder.dimension(format!("d{d}"));
        }
        let schema = builder
            .measure("m0", DIRS[0])
            .measure("m1", DIRS[1])
            .build().unwrap();
        let stream: Vec<Tuple> = rows
            .iter()
            .map(|(dims, m0, m1)| {
                Tuple::new(dims[..n_dims].to_vec(), vec![*m0 as f64, *m1 as f64])
            })
            .collect();

        // keep_top exercises truncation at prominence ties, which must be
        // deterministic for the byte-equality below to hold.
        let config = MonitorConfig::default().with_tau(2.0).with_keep_top(4);
        let mut sharded = ShardedMonitor::new(
            schema.clone(),
            routing_dim,
            num_shards,
            config,
            STopDown::new,
        ).unwrap();
        // The reference runs the sharded monitor's own (anchored) config.
        let anchored = *sharded.config();
        prop_assert_eq!(anchored.discovery.anchor_dim, Some(routing_dim));
        let mut unsharded = FactMonitor::new(
            schema.clone(),
            STopDown::new(&schema, anchored.discovery),
            anchored,
        );

        let mut actual = Vec::new();
        for window in stream.chunks(window_seed) {
            actual.extend(sharded.ingest_batch_slice(window).unwrap());
        }
        let expected = unsharded.ingest_all(stream.clone()).unwrap();
        for report in &actual {
            deep_audit(report)?;
        }
        prop_assert_eq!(actual, expected);
        // Shard tables partition the stream exactly.
        let sharded_rows: usize = sharded.shards().iter().map(|s| s.table().len()).sum();
        prop_assert_eq!(sharded_rows, stream.len());
        prop_assert_eq!(sharded.len(), stream.len());
        deep_audit(&sharded)?;
        deep_audit(&unsharded)?;
    }

    /// `Table::audit()` holds after *every* prefix of an arbitrary mixed
    /// `append`/`append_batch` sequence — including batches whose huge value
    /// ids push the posting-list build onto its sparse sort-merge fallback.
    #[test]
    fn table_audit_passes_after_mixed_append_sequences(
        n_dims in 1usize..4,
        ops in prop::collection::vec(
            (
                prop::collection::vec(
                    (prop::collection::vec(0u32..1000, 3), 0i32..9),
                    0..8,
                ),
                0u32..2,
            ),
            1..8,
        ),
    ) {
        let mut builder = SchemaBuilder::new("p");
        for d in 0..n_dims {
            builder = builder.dimension(format!("d{d}"));
        }
        let schema = builder.measure("m0", Direction::HigherIsBetter).build().unwrap();
        let mut table = Table::new(schema);
        for (rows, mode) in &ops {
            let tuples: Vec<Tuple> = rows
                .iter()
                .map(|(dims, measure)| {
                    let dims = dims[..n_dims]
                        .iter()
                        .map(|&v| if v >= 995 { v * 100_000 } else { v % 6 })
                        .collect();
                    Tuple::new(dims, vec![*measure as f64])
                })
                .collect();
            if *mode == 0 {
                for t in tuples {
                    table.append(t).unwrap();
                }
            } else {
                table.append_batch(tuples).unwrap();
            }
            // The invariant must hold after every operation, not just at the
            // end of the sequence.
            deep_audit(&table)?;
        }
    }

    /// A `CompressedPostings` list behaves exactly like a plain
    /// `Vec<TupleId>` under arbitrary interleavings of `push`,
    /// `extend_from_slice` and `compact`: same iteration order, same seek
    /// results, and the same galloping intersection against a second list —
    /// for gap distributions from dense runs to block-crossing jumps.
    #[test]
    fn compressed_postings_match_vec_model(
        ops in prop::collection::vec(
            (0u32..4, prop::collection::vec(1u32..2000, 0..80)),
            1..10,
        ),
        keep in 1u32..5,
    ) {
        use situational_facts::storage::CompressedPostings;

        let mut list = CompressedPostings::new();
        let mut model: Vec<TupleId> = Vec::new();
        let mut next: TupleId = 0;
        for (mode, gaps) in &ops {
            match mode {
                // One-at-a-time appends.
                0 => {
                    for &gap in gaps {
                        next += gap;
                        list.push(next);
                        model.push(next);
                    }
                }
                // Batched appends (the counting-sort ingest path).
                1 | 2 => {
                    let run: Vec<TupleId> = gaps
                        .iter()
                        .map(|&gap| {
                            next += gap;
                            next
                        })
                        .collect();
                    list.extend_from_slice(&run);
                    model.extend_from_slice(&run);
                }
                // Mid-stream compaction: may seal a partial block, must not
                // change the decoded sequence.
                _ => list.compact(),
            }
            prop_assert_eq!(list.len(), model.len());
            prop_assert_eq!(list.last(), model.last().copied());
        }
        prop_assert!(list.iter().eq(model.iter().copied()));

        // A second list keeping every `keep`-th id, shifted off by one half
        // the time, intersected by galloping: driver next + other seek.
        let mut other = CompressedPostings::new();
        let mut other_model: Vec<TupleId> = Vec::new();
        for (i, &id) in model.iter().enumerate() {
            if (i as u32).is_multiple_of(keep) {
                let id = if i % 2 == 0 { id } else { id + 1 };
                if other_model.last().is_none_or(|&prev| prev < id) {
                    other.push(id);
                    other_model.push(id);
                }
            }
        }
        let expected: Vec<TupleId> = other_model
            .iter()
            .copied()
            .filter(|id| model.binary_search(id).is_ok())
            .collect();
        let driver = other.cursor();
        let mut probe = list.cursor();
        let mut actual = Vec::new();
        for candidate in driver {
            match probe.seek(candidate) {
                Some(id) if id == candidate => actual.push(candidate),
                Some(_) => {}
                None => break,
            }
        }
        prop_assert_eq!(actual, expected);

        deep_audit(&list)?;
        deep_audit(&other)?;
    }

    /// At block-crossing scale (hundreds of rows over a handful of values,
    /// so posting lists span several sealed 128-id blocks), the galloping
    /// indexed context must equal the naive scan for every constraint shape —
    /// single-attribute streams, multi-attribute intersections, never-observed
    /// values — before and after `compact_postings`.
    #[test]
    fn indexed_context_equals_scan_at_block_scale(
        n_rows in 300usize..600,
        n_dims in 2usize..4,
        mults in prop::collection::vec(1usize..23, 3),
        constraint_seeds in prop::collection::vec(prop::collection::vec(0u32..8, 3), 1..10),
    ) {
        let mut builder = SchemaBuilder::new("p");
        for d in 0..n_dims {
            builder = builder.dimension(format!("d{d}"));
        }
        let schema = builder.measure("m0", Direction::HigherIsBetter).build().unwrap();
        let mut table = Table::new(schema);
        // Deterministic pseudo-random rows over tiny per-attribute domains:
        // every list collects n_rows / ~4 ids and seals multiple blocks.
        for i in 0..n_rows {
            let dims: Vec<u32> = (0..n_dims)
                .map(|d| ((i * mults[d]) % (3 + d)) as u32)
                .collect();
            table.append(Tuple::new(dims, vec![(i % 7) as f64])).unwrap();
        }

        let mut constraints: Vec<Constraint> = vec![Constraint::top(n_dims)];
        for seed in &constraint_seeds {
            let values = seed[..n_dims]
                .iter()
                .map(|&v| if v == 7 { sitfact_core::UNBOUND } else { v })
                .collect();
            constraints.push(Constraint::from_values(values));
        }
        for round in 0..2 {
            for c in &constraints {
                let mut indexed = table.context(c);
                let ids: Vec<TupleId> = indexed.by_ref().map(|(id, _)| id).collect();
                let scanned: Vec<TupleId> =
                    table.context_scan(c).map(|(id, _)| id).collect();
                prop_assert_eq!(&ids, &scanned);
                // Galloping work stays bounded by the lists actually touched.
                let stats = table.posting_index_stats();
                prop_assert!(indexed.blocks_decoded() <= stats.sealed_blocks);
            }
            if round == 0 {
                // Second pass over the same constraints with fully sealed
                // lists (no raw tails beyond unprofitable ones).
                table.compact_postings();
            }
        }
        deep_audit(&table)?;
    }

    /// The load-bearing sliding-window property: **windowed ≡
    /// rebuild-from-scratch**. After any arrival sequence — random generator
    /// seed, random seeded shuffle of the arrival order, random window
    /// length, random batch partitioning — a `WindowedMonitor` must behave
    /// exactly like a fresh monitor (id space aligned via
    /// `FactMonitor::with_base`) fed only the surviving suffix: byte-identical
    /// reports for every subsequent arrival, and deep audits green on both.
    /// Along the way the eviction bookkeeping must reconcile after every
    /// batch: `live = min(len, window)` and `len = live + tombstones +
    /// evicted`.
    #[test]
    fn windowed_monitor_equals_rebuild_from_suffix(
        n_rows in 4usize..40,
        extra in 1usize..12,
        window in 1usize..9,
        window_seed in 1usize..7,
        gen_seed in 0u64..1024,
        shuffle_seed in 0u64..1024,
    ) {
        use situational_facts::datagen::generic::{Correlation, GenericConfig, GenericGenerator};

        let mut gen = GenericGenerator::new(GenericConfig {
            dim_cardinalities: vec![3, 4],
            measures: 2,
            correlation: Correlation::Independent,
            seed: gen_seed,
        });
        // The order-shuffled replay: the same row multiset in an arbitrary
        // seeded order, since a windowed report stream is a function of
        // arrival order, not just of the rows.
        let mut replay = ShuffledReplay::new(&mut gen, n_rows, shuffle_seed);
        let schema = replay.schema().clone();
        // Encode every row against one shared dictionary (both monitors see
        // identical value ids — each interning independently would drift, as
        // the rebuild never observes the evicted rows' strings).
        let mut scratch = Table::new(schema.clone());
        let mut encode = |rows: &[Row]| -> Vec<Tuple> {
            rows.iter()
                .map(|row| situational_facts::datagen::encode_row(&mut scratch, row).unwrap())
                .collect()
        };
        let tuples = encode(&replay.take_rows(n_rows));
        let continuation = encode(&replay.take_rows(extra));

        let config = MonitorConfig::default().with_tau(2.0);
        let policy = WindowPolicy::count(window).unwrap();
        let mut windowed = WindowedMonitor::new(
            FactMonitor::new(schema.clone(), STopDown::new(&schema, config.discovery), config),
            policy,
        );

        for chunk in tuples.chunks(window_seed) {
            windowed.ingest_batch(chunk.to_vec()).unwrap();
            // Bookkeeping reconciles at every batch boundary.
            prop_assert_eq!(windowed.live_rows(), windowed.len().min(window));
            prop_assert_eq!(
                windowed.len(),
                windowed.live_rows() + windowed.tombstone_rows() + windowed.evicted_rows()
            );
        }
        deep_audit(windowed.inner())?;

        // Rebuild from scratch: a fresh monitor, id space starting at the
        // windowed monitor's watermark, fed only the surviving suffix.
        let start = windowed.len() - windowed.live_rows();
        let mut rebuilt = WindowedMonitor::new(
            FactMonitor::with_base(
                schema.clone(),
                STopDown::new(&schema, config.discovery),
                config,
                start as TupleId,
            ),
            policy,
        );
        rebuilt.ingest_batch(tuples[start..].to_vec()).unwrap();
        prop_assert_eq!(rebuilt.live_rows(), windowed.live_rows());

        // Both monitors must now be observably identical: every future
        // arrival — same continuation, same batch partitioning — produces
        // byte-identical reports.
        for chunk in continuation.chunks(window_seed) {
            let expected = windowed.ingest_batch(chunk.to_vec()).unwrap();
            let actual = rebuilt.ingest_batch(chunk.to_vec()).unwrap();
            prop_assert_eq!(&actual, &expected);
            for report in &actual {
                deep_audit(report)?;
            }
        }
        deep_audit(windowed.inner())?;
        deep_audit(rebuilt.inner())?;
    }

    /// Prominence is always ≥ 1 for facts pertinent to the newly added tuple,
    /// and the context is never smaller than its skyline.
    #[test]
    fn prominence_is_at_least_one(
        stream in prop::collection::vec(tuple_strategy(), 1..25),
    ) {
        let schema = SchemaBuilder::new("p")
            .dimension("d0").dimension("d1").dimension("d2")
            .measure("m0", DIRS[0])
            .measure("m1", DIRS[1])
            .measure("m2", DIRS[2])
            .build().unwrap();
        let algo = SBottomUp::new(&schema, DiscoveryConfig::unrestricted());
        let mut monitor = FactMonitor::new(schema, algo, MonitorConfig::default());
        for t in stream {
            let report = monitor.ingest(t).unwrap();
            for fact in &report.facts {
                prop_assert!(fact.skyline_size >= 1);
                prop_assert!(fact.context_size >= fact.skyline_size);
                prop_assert!(fact.prominence() >= 1.0);
            }
            deep_audit(&report)?;
        }
        deep_audit(&monitor)?;
    }
}
