//! The `StreamMonitor` trait-object contract: one generic driver feeds both
//! monitor types through `Box<dyn StreamMonitor>`, and every provided method
//! (`ingest_raw`, `ingest_batch`, `ingest_all`) agrees with the required
//! core, sharded or not.

use rand::prelude::*;
use situational_facts::prelude::*;

fn schema() -> Schema {
    SchemaBuilder::new("gamelog")
        .dimension("player")
        .dimension("team")
        .measure("points", Direction::HigherIsBetter)
        .measure("assists", Direction::HigherIsBetter)
        .build()
        .unwrap()
}

/// Both monitor shapes behind the same trait object, on the *same anchored
/// config* (the space over which sharded ≡ unsharded is provable).
fn monitors() -> Vec<(&'static str, Box<dyn StreamMonitor>)> {
    let schema = schema();
    let config = MonitorConfig::default()
        .with_tau(1.0)
        .with_keep_top(8)
        .with_discovery(DiscoveryConfig::unrestricted().with_anchor(1));
    let flat: Box<dyn StreamMonitor> = Box::new(FactMonitor::new(
        schema.clone(),
        STopDown::new(&schema, config.discovery),
        config,
    ));
    let sharded: Box<dyn StreamMonitor> =
        Box::new(ShardedMonitor::by_attribute(schema, "team", 3, config, STopDown::new).unwrap());
    vec![("FactMonitor", flat), ("ShardedMonitor", sharded)]
}

fn raw_rows(n: usize, seed: u64) -> Vec<(Vec<String>, Vec<f64>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (
                vec![
                    format!("P{}", rng.gen_range(0..5u32)),
                    format!("T{}", rng.gen_range(0..3u32)),
                ],
                vec![rng.gen_range(0..7) as f64, rng.gen_range(0..7) as f64],
            )
        })
        .collect()
}

/// The generic driver of this test file: everything it does is expressed
/// against `dyn StreamMonitor`, so it cannot know (or care) which monitor
/// shape it is feeding.
fn drive(monitor: &mut dyn StreamMonitor, rows: &[(Vec<String>, Vec<f64>)]) -> Vec<ArrivalReport> {
    assert!(monitor.is_empty());
    let mut reports = Vec::new();
    // A few per-arrival raw ingests …
    for (dims, measures) in &rows[..3] {
        let dims: Vec<&str> = dims.iter().map(String::as_str).collect();
        reports.push(monitor.ingest_raw(&dims, measures.clone()).unwrap());
    }
    // … then pre-encoded batched windows.
    for window in rows[3..].chunks(9) {
        let window: Vec<Tuple> = window
            .iter()
            .map(|(dims, measures)| {
                let dims: Vec<&str> = dims.iter().map(String::as_str).collect();
                monitor.encode_raw(&dims, measures.clone()).unwrap()
            })
            .collect();
        reports.extend(monitor.ingest_batch(window).unwrap());
    }
    assert_eq!(monitor.len(), rows.len());
    reports
}

#[test]
fn trait_object_drives_both_monitor_types_identically() {
    let rows = raw_rows(30, 17);
    let mut transcripts = Vec::new();
    for (name, mut monitor) in monitors() {
        let reports = drive(monitor.as_mut(), &rows);
        assert_eq!(reports.len(), rows.len(), "{name}: one report per arrival");
        // Reports expose their tuples back through the trait.
        for report in &reports {
            assert!(monitor.tuple(report.tuple_id).is_some(), "{name}");
        }
        assert!(monitor.tuple(rows.len() as TupleId).is_none(), "{name}");
        assert_eq!(monitor.config().discovery.anchor_dim, Some(1), "{name}");
        transcripts.push(reports);
    }
    // Same anchored config, same stream ⇒ the sharded transcript is
    // byte-identical to the unsharded one — through the trait object, too.
    assert_eq!(transcripts[0], transcripts[1]);
}

#[test]
fn ingest_all_is_the_sequential_ground_truth_for_both_types() {
    let rows = raw_rows(24, 91);
    for (name, mut monitor) in monitors() {
        // Encode through the same monitor that will ingest (interning is
        // deterministic in arrival order, so a second identically-configured
        // monitor sees the same ids).
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|(dims, measures)| {
                let dims: Vec<&str> = dims.iter().map(String::as_str).collect();
                monitor.encode_raw(&dims, measures.clone()).unwrap()
            })
            .collect();
        let sequential = monitor.ingest_all(tuples.clone()).unwrap();
        assert_eq!(sequential.len(), rows.len(), "{name}");

        let (_, mut batched) = monitors()
            .into_iter()
            .find(|(n, _)| *n == name)
            .expect("same shape again");
        let tuples2: Vec<Tuple> = rows
            .iter()
            .map(|(dims, measures)| {
                let dims: Vec<&str> = dims.iter().map(String::as_str).collect();
                batched.encode_raw(&dims, measures.clone()).unwrap()
            })
            .collect();
        assert_eq!(tuples, tuples2, "{name}: interning is deterministic");
        let fast = batched.ingest_batch(tuples2).unwrap();
        // ingest_all (per-arrival loop) ≡ ingest_batch (fast path), exactly.
        assert_eq!(sequential, fast, "{name}");
    }
}

#[test]
fn ingest_all_propagates_errors_at_the_failing_tuple() {
    let (_, mut monitor) = monitors().into_iter().next().unwrap();
    let good = monitor.encode_raw(&["P0", "T0"], vec![1.0, 2.0]).unwrap();
    let bad = Tuple::new(vec![0], vec![1.0, 2.0]); // wrong arity
    let result = monitor.ingest_all(vec![good, bad]);
    assert!(result.is_err());
    // Sequential semantics: tuples before the failure were ingested.
    assert_eq!(monitor.len(), 1);
}
