//! End-to-end integration tests: schema → generator → monitor → ranked facts,
//! exercising every crate of the workspace together.

use situational_facts::datagen::nba::{NbaConfig, NbaGenerator};
use situational_facts::datagen::{csv, DataGenerator};
use situational_facts::prelude::*;

fn nba_generator(seed: u64) -> NbaGenerator {
    NbaGenerator::new(NbaConfig {
        dimensions: 5,
        measures: 5,
        players: 60,
        teams: 8,
        seasons: 3,
        games_per_season: 500,
        seed,
    })
}

#[test]
fn monitor_reports_are_internally_consistent() {
    let mut generator = nba_generator(1);
    let schema = generator.schema().clone();
    let discovery = DiscoveryConfig::capped(3, 3);
    let algo = SBottomUp::new(&schema, discovery);
    let mut monitor = FactMonitor::new(
        schema,
        algo,
        MonitorConfig::default()
            .with_discovery(discovery)
            .with_tau(5.0),
    );
    let mut distribution = DistributionStats::new(100, 3, 3);

    for _ in 0..1_200 {
        let row = generator.next_row();
        let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
        let report = monitor.ingest_raw(&dims, row.measures.clone()).unwrap();
        distribution.record(&report);

        // Ranked in non-increasing prominence.
        for window in report.facts.windows(2) {
            assert!(window[0].prominence() >= window[1].prominence() - 1e-9);
        }
        for fact in &report.facts {
            // The new tuple itself is in every reported skyline, so the ratio
            // is well defined and at least 1.
            assert!(fact.skyline_size >= 1);
            assert!(fact.context_size >= fact.skyline_size);
            assert!(fact.prominence() >= 1.0);
            // The d̂ / m̂ caps hold.
            assert!(fact.pair.constraint.bound_count() <= 3);
            assert!((1..=3).contains(&fact.pair.subspace.len()));
        }
        // Prominent facts all reach τ and the maximum.
        if let Some(max) = report.max_prominence() {
            for fact in report.prominent() {
                assert!(fact.prominence() >= 5.0);
                assert!((fact.prominence() - max).abs() < 1e-9);
            }
        } else {
            assert_eq!(report.prominent_count, 0);
        }
    }

    assert_eq!(distribution.tuples_seen, 1_200);
    assert_eq!(monitor.table().len(), 1_200);
    // The stream is long enough that at least some prominent facts appear.
    assert!(distribution.total_prominent > 0);
    // Fig. 15a's shape: no prominent fact binds more attributes than d̂.
    assert!(distribution.by_bound.len() == 4);
    // Work was actually done and recorded.
    let work = monitor.algorithm().work_stats();
    assert!(work.comparisons > 0 && work.traversed_constraints > 0);
}

#[test]
fn context_counter_and_table_agree_after_streaming() {
    let mut generator = nba_generator(2);
    let schema = generator.schema().clone();
    let mut counter = ContextCounter::new(schema.num_dimensions(), 3);
    let mut table = Table::new(schema);
    for _ in 0..800 {
        let row = generator.next_row();
        let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
        let id = table.append_raw(&dims, row.measures.clone()).unwrap();
        counter.observe(table.tuple(id));
    }
    // Cross-check the incremental counts against scans for a sample of
    // constraints drawn from actual tuples.
    let lattice = ConstraintLattice::new(table.schema().num_dimensions(), 3);
    for sample_id in [0u32, 250, 500, 799] {
        let tuple = table.tuple(sample_id);
        for mask in lattice.enumerate_top_down().into_iter().step_by(7) {
            let constraint = Constraint::from_tuple_mask(tuple, mask);
            assert_eq!(
                counter.cardinality(&constraint),
                table.context_cardinality(&constraint) as u64,
                "constraint {constraint:?}"
            );
        }
    }
}

#[test]
fn csv_round_trip_preserves_discovery_results() {
    let mut generator = nba_generator(3);
    let table = generator.table_of(300).unwrap();
    let path = std::env::temp_dir().join(format!("sitfact-e2e-{}.csv", std::process::id()));
    csv::write_csv(&table, &path).unwrap();
    let reloaded = csv::read_csv(&nba_generator(3).schema().clone(), &path).unwrap();
    assert_eq!(reloaded.len(), table.len());

    // Discovering the same new tuple against both tables yields the same facts.
    let config = DiscoveryConfig::capped(3, 3);
    let mut on_original = BruteForce::new(table.schema(), config);
    let mut on_reloaded = BruteForce::new(reloaded.schema(), config);
    let probe = table.tuple(120).to_tuple();
    let mut a = on_original.discover(&table, &probe);
    let mut b = on_reloaded.discover(&reloaded, &probe);
    sitfact_core::pair::canonical_sort(&mut a);
    sitfact_core::pair::canonical_sort(&mut b);
    assert_eq!(a.len(), b.len());
    // Constraint value ids can differ between dictionaries; compare rendered
    // forms, which are id-independent.
    let rendered = |facts: &[SkylinePair], schema: &Schema| -> Vec<String> {
        let mut v: Vec<String> = facts.iter().map(|f| f.display(schema)).collect();
        v.sort();
        v
    };
    assert_eq!(
        rendered(&a, table.schema()),
        rendered(&b, reloaded.schema())
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn file_backed_monitor_survives_many_tuples() {
    let mut generator = nba_generator(4);
    let schema = generator.schema().clone();
    let discovery = DiscoveryConfig::capped(2, 2);
    let dir = std::env::temp_dir().join(format!("sitfact-e2e-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = FileSkylineStore::new(&dir).unwrap();
    let algo = FsTopDown::with_store(&schema, discovery, store);
    let mut monitor = FactMonitor::new(
        schema,
        algo,
        MonitorConfig::default()
            .with_discovery(discovery)
            .with_tau(10.0),
    );
    for _ in 0..400 {
        let row = generator.next_row();
        let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
        let report = monitor.ingest_raw(&dims, row.measures.clone()).unwrap();
        assert!(report.facts.iter().all(|f| f.prominence() >= 1.0));
    }
    let stats = monitor.algorithm().store_stats();
    assert!(stats.stored_entries > 0);
    assert!(stats.file_writes > 0);
    drop(monitor);
    let _ = std::fs::remove_dir_all(&dir);
}
