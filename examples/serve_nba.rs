//! The paper's deployment story as a running program: a news organisation's
//! box-score feed on one side of a TCP connection, the fact monitor on the
//! other. The server end holds a `Box<dyn StreamMonitor>` — pass a shard
//! count as the second argument and the *same* server code serves a
//! team-routed [`ShardedMonitor`] instead of a flat [`FactMonitor`]; nothing
//! but monitor construction changes.
//!
//! Run with `cargo run --release --example serve_nba [-- n_tuples shards]`.

use situational_facts::datagen::nba::{NbaConfig, NbaGenerator};
use situational_facts::datagen::DataGenerator;
use situational_facts::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2_000);
    let shards: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);

    let mut generator = NbaGenerator::new(NbaConfig {
        dimensions: 5,
        measures: 4,
        players: 200,
        seasons: 3,
        games_per_season: n / 3 + 1,
        seed: 7,
        ..NbaConfig::default()
    });
    let schema = generator.schema().clone();
    let discovery = DiscoveryConfig::capped(3, 3);
    let config = MonitorConfig::default()
        .with_discovery(discovery)
        .with_tau(50.0)
        .with_keep_top(8);

    // The only sharded-vs-flat branch in the whole program.
    let monitor: Box<dyn StreamMonitor + Send> = if shards == 0 {
        Box::new(FactMonitor::new(
            schema.clone(),
            STopDown::new(&schema, discovery),
            config,
        ))
    } else {
        Box::new(ShardedMonitor::by_attribute(
            schema,
            "team",
            shards,
            config,
            STopDown::new,
        )?)
    };

    let server = FactServer::bind("127.0.0.1:0", monitor)?;
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());
    println!(
        "serving a {} monitor on {addr}; streaming {n} box scores …\n",
        if shards == 0 {
            "flat".to_string()
        } else {
            format!("{shards}-shard team-routed")
        }
    );

    let mut client = Client::connect(addr)?;
    client.ping()?;
    const WINDOW: usize = 128;
    let mut ingested = 0usize;
    let mut total_facts = 0usize;
    let mut prominent_games = 0usize;
    while ingested < n {
        let window: Vec<RawRow> = (0..WINDOW.min(n - ingested))
            .map(|_| {
                let row = generator.next_row();
                let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
                RawRow::new(&dims, &row.measures)
            })
            .collect();
        ingested += window.len();
        for report in client.ingest_batch(window)? {
            total_facts += report.facts.len();
            if report.prominent_count > 0 {
                prominent_games += 1;
                if prominent_games <= 10 {
                    println!(
                        "game #{}: {} prominent fact(s), max prominence {:.1}",
                        report.tuple_id,
                        report.prominent_count,
                        report.max_prominence().unwrap_or(0.0)
                    );
                }
            }
        }
    }

    let stats = client.stats()?;
    let top = client.top_k(3)?;
    println!("\n=== summary (over the wire) ===");
    println!("server len:           {}", stats.len);
    println!("schema:               {}", stats.schema);
    println!("anchored dimension:   {:?}", stats.anchor_dim);
    println!("facts received:       {total_facts}");
    println!("prominent games:      {prominent_games}");
    println!("last arrival's top-3: {} facts", top.facts.len());

    client.shutdown()?;
    server_thread.join().expect("server thread")?;
    Ok(())
}
