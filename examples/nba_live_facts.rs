//! Streaming discovery over a synthetic NBA season, in the style of the
//! paper's case study (Section VII): report each game that produces a
//! prominent fact, narrated in English. Box scores arrive in windows (a
//! night's worth of games at a time) and are ingested through the batched
//! fast path — `FactMonitor::ingest_batch` appends each window once and
//! still reports every game against exactly the games that preceded it.
//!
//! Run with `cargo run --release --example nba_live_facts [-- n_tuples tau]`.

use situational_facts::datagen::encode_row;
use situational_facts::datagen::nba::{NbaConfig, NbaGenerator};
use situational_facts::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let tau: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100.0);

    // The paper's case-study setting: d = 5, m = 7, d̂ = 3, m̂ = 3.
    let mut generator = NbaGenerator::new(NbaConfig {
        dimensions: 5,
        measures: 7,
        players: 400,
        seasons: 6,
        games_per_season: n / 6 + 1,
        seed: 7,
        ..NbaConfig::default()
    });
    let schema = generator.schema().clone();
    let discovery = DiscoveryConfig::capped(3, 3);
    let algo = SBottomUp::new(&schema, discovery);
    let config = MonitorConfig::default()
        .with_discovery(discovery)
        .with_tau(tau)
        .with_keep_top(8);
    let mut monitor = FactMonitor::new(schema, algo, config);
    let mut distribution = DistributionStats::new(1_000, 3, 3);

    const WINDOW: usize = 256;
    println!("streaming {n} synthetic box scores (τ = {tau}, windows of {WINDOW}) …\n");
    let mut prominent_games = 0usize;
    let mut ingested = 0usize;
    while ingested < n {
        // A window of arrivals, encoded against the monitor's schema …
        let window: Vec<Tuple> = (0..WINDOW.min(n - ingested))
            .map(|_| {
                let row = generator.next_row();
                let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
                monitor.encode_raw(&dims, row.measures.clone())
            })
            .collect::<Result<_, _>>()?;
        ingested += window.len();
        // … ingested in one amortised batch: one report per game, each
        // ranked against its true prefix.
        for report in monitor.ingest_batch(window)? {
            distribution.record(&report);
            if report.prominent_count > 0 && prominent_games < 25 {
                prominent_games += 1;
                let schema = monitor.table().schema();
                let tuple = monitor.table().tuple(report.tuple_id);
                let player = schema
                    .resolve_dim(0, tuple.dim(0))
                    .unwrap_or("?")
                    .to_string();
                println!("game #{}: {player}", report.tuple_id);
                for fact in report.prominent().iter().take(2) {
                    println!("    {}", narrate(schema, tuple, fact));
                }
            }
        }
    }

    println!("\n=== summary ===");
    println!("tuples processed:        {}", distribution.tuples_seen);
    println!("prominent facts total:   {}", distribution.total_prominent);
    println!(
        "prominent facts / 1K:    {:.1}",
        distribution.mean_per_window()
    );
    println!("by bound(C):             {:?}", distribution.by_bound);
    println!(
        "by |M|:                  {:?}",
        distribution.by_measure_dims
    );

    // Ensure unused helper does not bit-rot: encode_row is the lower-level
    // path examples can use when they keep their own Table.
    let mut scratch = Table::new(generator.schema().clone());
    let _ = encode_row(&mut scratch, &generator.next_row())?;
    Ok(())
}
