//! Streaming discovery over a synthetic NBA season through a **sharded**
//! monitor: box scores are routed by team across independent `FactMonitor`
//! shards, and each window is fanned out to the shards in parallel.
//!
//! Routing soundness: sharding by team anchors the constraint space on the
//! `team` attribute — every reported fact is of the form "… within team X
//! games …", and for those facts the merged reports are provably identical
//! to an unsharded monitor (the example spot-checks this against a reference
//! monitor on the first windows). League-wide facts (team unbound) are
//! outside the sharded space by construction; serve those unsharded.
//!
//! Run with `cargo run --release --example nba_sharded [-- n_tuples shards tau]`.

use situational_facts::datagen::nba::{NbaConfig, NbaGenerator};
use situational_facts::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(12_000);
    let shards: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let tau: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(50.0);

    let mut generator = NbaGenerator::new(NbaConfig {
        dimensions: 5,
        measures: 4,
        players: 400,
        seasons: 6,
        games_per_season: n / 6 + 1,
        seed: 7,
        ..NbaConfig::default()
    });
    let schema = generator.schema().clone();
    let config = MonitorConfig::default()
        .with_discovery(DiscoveryConfig::capped(3, 3))
        .with_tau(tau);
    // The config is auto-anchored on `team` — the routing attribute must be
    // bound in every reported fact for sharding to be sound.
    let mut monitor =
        ShardedMonitor::by_attribute(schema.clone(), "team", shards, config, STopDown::new)?;
    // Unsharded reference running the same anchored config, for the
    // equivalence spot-check on the first windows.
    let anchored = *monitor.config();
    let mut reference = FactMonitor::new(
        schema.clone(),
        STopDown::new(&schema, anchored.discovery),
        anchored,
    );

    const WINDOW: usize = 512;
    const CHECK_WINDOWS: usize = 4;
    println!(
        "streaming {n} synthetic box scores through {shards} team-routed shards \
         (τ = {tau}, windows of {WINDOW}) …\n"
    );
    let start = std::time::Instant::now();
    let mut prominent_games = 0usize;
    let mut total_prominent = 0usize;
    let mut ingested = 0usize;
    let mut windows_seen = 0usize;
    while ingested < n {
        let window: Vec<Tuple> = (0..WINDOW.min(n - ingested))
            .map(|_| {
                let row = generator.next_row();
                let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
                monitor.encode_raw(&dims, row.measures.clone())
            })
            .collect::<Result<_, _>>()?;
        ingested += window.len();
        windows_seen += 1;
        let reports = monitor.ingest_batch_slice(&window)?;
        if windows_seen <= CHECK_WINDOWS {
            // Sharded ≡ unsharded over the anchored constraint space —
            // byte-identical, order included.
            let expected = reference.ingest_batch_slice(&window)?;
            assert_eq!(
                reports, expected,
                "sharded reports drifted from the unsharded monitor"
            );
        }
        for report in &reports {
            total_prominent += report.prominent_count;
            if report.prominent_count > 0 && prominent_games < 20 {
                prominent_games += 1;
                let schema = monitor.schema();
                let tuple = monitor.tuple(report.tuple_id).expect("ingested tuple");
                let (shard, _) = monitor.locate(report.tuple_id).expect("ingested tuple");
                let player = schema.resolve_dim(0, tuple.dim(0)).unwrap_or("?");
                println!("game #{} (shard {shard}): {player}", report.tuple_id);
                for fact in report.prominent().iter().take(2) {
                    println!("    {}", narrate(schema, tuple, fact));
                }
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();

    println!("\n=== summary ===");
    println!("tuples processed:        {}", monitor.len());
    println!("shards:                  {shards} (routed by team)");
    for (i, shard) in monitor.shards().iter().enumerate() {
        println!("  shard {i}: {:>6} tuples", shard.table().len());
    }
    println!("prominent facts total:   {total_prominent}");
    println!(
        "window-ingest throughput: {:.0} rows/sec ({:.2}s total)",
        monitor.len() as f64 / elapsed.max(1e-9),
        elapsed
    );
    println!(
        "equivalence spot-check:  first {CHECK_WINDOWS} windows matched the unsharded monitor"
    );
    Ok(())
}
