//! Monitoring a stream of weather forecasts for extreme-condition facts —
//! "city B has never encountered such high wind speed and humidity in March"
//! (the paper's introduction, example 2).
//!
//! Run with `cargo run --release --example weather_watch [-- n_tuples]`.

use situational_facts::datagen::weather::{WeatherConfig, WeatherGenerator};
use situational_facts::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(15_000);

    let mut generator = WeatherGenerator::new(WeatherConfig {
        dimensions: 5,
        measures: 4, // wind day/night, temperature day/night
        locations: 250,
        records_per_day: 250,
        seed: 2012,
    });
    let schema = generator.schema().clone();
    let discovery = DiscoveryConfig::capped(2, 2);
    let algo = STopDown::new(&schema, discovery);
    let mut monitor = FactMonitor::new(
        schema,
        algo,
        MonitorConfig::default()
            .with_discovery(discovery)
            .with_tau(50.0)
            .with_keep_top(4),
    );

    println!("watching {n} forecasts for record-setting conditions …\n");
    let mut alerts = 0usize;
    for _ in 0..n {
        let row = generator.next_row();
        let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
        let report = monitor.ingest_raw(&dims, row.measures.clone())?;
        if report.prominent_count > 0 && alerts < 15 {
            alerts += 1;
            let schema = monitor.table().schema();
            let tuple = monitor.table().tuple(report.tuple_id);
            let location = schema.resolve_dim(0, tuple.dim(0)).unwrap_or("?");
            let month = schema.resolve_dim(2, tuple.dim(2)).unwrap_or("?");
            println!("⚠ record conditions at {location} in {month}:");
            for fact in report.prominent().iter().take(2) {
                println!("    {}", narrate(schema, tuple, fact));
            }
        }
    }
    println!(
        "\nprocessed {} forecasts, raised {alerts} alerts (capped at 15 shown)",
        n
    );

    let stats = monitor.algorithm().work_stats();
    println!(
        "algorithm work: {} comparisons, {} constraints traversed",
        stats.comparisons, stats.traversed_constraints
    );
    Ok(())
}
