//! Situational facts over a stock-tick stream — "stock A becomes the first
//! stock in history with price over $300 and market cap over $400B" (the
//! paper's introduction, example 1) — and a demonstration of the file-backed
//! skyline store for long-running monitors.
//!
//! Run with `cargo run --release --example stock_alerts [-- n_ticks]`.

use situational_facts::datagen::stocks::{StockConfig, StockGenerator};
use situational_facts::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10_000);

    let mut generator = StockGenerator::new(StockConfig {
        tickers: 150,
        ticks_per_day: 150,
        seed: 1987,
    });
    let schema = generator.schema().clone();
    let discovery = DiscoveryConfig::capped(2, 3);

    // Long-running monitors can spill the skyline cells to disk: FSTopDown is
    // STopDown over the file-backed store (Section VI-C of the paper).
    let store_dir = std::env::temp_dir().join("sitfact-stock-alerts-store");
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = FileSkylineStore::new(&store_dir)?;
    let algo = FsTopDown::with_store(&schema, discovery, store);

    let mut monitor = FactMonitor::new(
        schema,
        algo,
        MonitorConfig::default()
            .with_discovery(discovery)
            .with_tau(75.0)
            .with_keep_top(4),
    );

    println!("processing {n} ticks with a file-backed skyline store …\n");
    let mut alerts = 0usize;
    for _ in 0..n {
        let row = generator.next_row();
        let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
        let report = monitor.ingest_raw(&dims, row.measures.clone())?;
        if report.prominent_count > 0 && alerts < 12 {
            alerts += 1;
            let schema = monitor.table().schema();
            let tuple = monitor.table().tuple(report.tuple_id);
            let ticker = schema.resolve_dim(0, tuple.dim(0)).unwrap_or("?");
            let sector = schema.resolve_dim(1, tuple.dim(1)).unwrap_or("?");
            println!("📈 {ticker} ({sector}) sets a record:");
            for fact in report.prominent().iter().take(1) {
                println!("    {}", narrate(schema, tuple, fact));
            }
        }
    }

    let store_stats = monitor.algorithm().store_stats();
    println!("\n=== store summary (file-backed) ===");
    println!("skyline entries stored: {}", store_stats.stored_entries);
    println!("non-empty (C, M) cells: {}", store_stats.non_empty_cells);
    println!(
        "file reads / writes:    {} / {}",
        store_stats.file_reads, store_stats.file_writes
    );
    let _ = std::fs::remove_dir_all(&store_dir);
    Ok(())
}
