//! Quickstart: discover situational facts on the paper's mini-world of
//! basketball gamelogs (Table I) and print them ranked by prominence.
//!
//! Run with `cargo run --example quickstart`.

use situational_facts::prelude::*;

/// One gamelog row of Table I: player, month, season, team, opponent, then
/// (points, assists, rebounds).
type BoxScore<'a> = (&'a str, &'a str, &'a str, &'a str, &'a str, [f64; 3]);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Declare the relation: dimension attributes describe the situation,
    //    measure attributes are compared by dominance.
    let schema = SchemaBuilder::new("gamelog")
        .dimension("player")
        .dimension("month")
        .dimension("season")
        .dimension("team")
        .dimension("opp_team")
        .measure("points", Direction::HigherIsBetter)
        .measure("assists", Direction::HigherIsBetter)
        .measure("rebounds", Direction::HigherIsBetter)
        .build()?;

    // 2. Pick a discovery algorithm (STopDown = Algorithm 6, the most
    //    scalable one) and wrap it in a FactMonitor that ranks facts by
    //    prominence |σ_C(R)| / |λ_M(σ_C(R))|.
    let algo = STopDown::new(&schema, DiscoveryConfig::unrestricted());
    let mut monitor = FactMonitor::new(schema, algo, MonitorConfig::default().with_tau(2.0));

    // 3. Stream the historical tuples t1..t6 of Table I.
    let history: [BoxScore; 6] = [
        (
            "Bogues",
            "Feb",
            "1991-92",
            "Hornets",
            "Hawks",
            [4.0, 12.0, 5.0],
        ),
        (
            "Seikaly",
            "Feb",
            "1991-92",
            "Heat",
            "Hawks",
            [24.0, 5.0, 15.0],
        ),
        (
            "Sherman",
            "Dec",
            "1993-94",
            "Celtics",
            "Nets",
            [13.0, 13.0, 5.0],
        ),
        (
            "Wesley",
            "Feb",
            "1994-95",
            "Celtics",
            "Nets",
            [2.0, 5.0, 2.0],
        ),
        (
            "Wesley",
            "Feb",
            "1994-95",
            "Celtics",
            "Timberwolves",
            [3.0, 5.0, 3.0],
        ),
        (
            "Strickland",
            "Jan",
            "1995-96",
            "Blazers",
            "Celtics",
            [27.0, 18.0, 8.0],
        ),
    ];
    for (player, month, season, team, opp, stats) in history {
        monitor.ingest_raw(&[player, month, season, team, opp], stats.to_vec())?;
    }

    // 4. The new arrival t7: Wesley's 12/13/5 game for the Celtics vs the Nets.
    let report = monitor.ingest_raw(
        &["Wesley", "Feb", "1995-96", "Celtics", "Nets"],
        vec![12.0, 13.0, 5.0],
    )?;

    let schema = monitor.table().schema();
    println!(
        "t7 enters {} contextual skylines; highest prominence {:.1}",
        report.facts.len(),
        report.max_prominence().unwrap_or(0.0)
    );
    println!("\nTop facts:");
    let new_tuple = monitor.table().tuple(report.tuple_id);
    for fact in report.top_k(5) {
        println!("  • {}", fact.display(schema));
        println!("    {}", narrate(schema, new_tuple, fact));
    }
    println!(
        "\nProminent facts (ties at the maximum, τ = {}): {}",
        monitor.config().tau,
        report.prominent_count
    );
    Ok(())
}
