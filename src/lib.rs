//! # situational-facts
//!
//! A Rust implementation of **incremental discovery of prominent situational
//! facts** (Sultana, Hassan, Li, Yang, Yu — ICDE 2014): watch an append-only
//! table and, for every arriving tuple, find the contexts and measure
//! combinations in which it stands out against all of history, ranked by how
//! rare such a standing is.
//!
//! This facade crate re-exports the whole public API of the workspace:
//!
//! * [`core`] — schemas, tuples, constraints, measure subspaces, dominance;
//! * [`storage`] — the append-only table, skyline stores and k-d tree;
//! * [`algos`] — the discovery algorithms (`BottomUp`, `TopDown`, shared and
//!   file-backed variants, plus the paper's baselines);
//! * [`prominence`] — prominence ranking, thresholds and narration, unified
//!   behind the [`StreamMonitor`](prominence::StreamMonitor) trait, plus
//!   [`DurableMonitor`](prominence::DurableMonitor), which write-ahead-logs
//!   any monitor's arrivals for snapshot-bounded crash recovery;
//! * [`serve`] — the framed-TCP, multi-tenant service front-end (server +
//!   client) over any `Box<dyn StreamMonitor>`, durable when bound with a
//!   data directory;
//! * [`datagen`] — synthetic NBA / weather / stock workloads and CSV IO.
//!
//! ## Quickstart
//!
//! Every monitor is fed through the [`StreamMonitor`](prominence::StreamMonitor)
//! trait (re-exported by the prelude): `ingest_raw` for one row, `ingest_batch`
//! for amortised windows — identically on a [`FactMonitor`](prominence::FactMonitor),
//! a [`ShardedMonitor`](prominence::ShardedMonitor), or a `Box<dyn StreamMonitor>`
//! serving traffic over TCP. On the wire, one [`FactServer`](serve::FactServer)
//! multiplexes many such monitors: a client `OPEN`s a named *tenant* (its own
//! schema, threshold and discovery caps — see [`TenantSpec`](serve::TenantSpec))
//! and `USE`s it, each tenant owned by a server worker and read through
//! lock-free snapshots, so independent streams never share state.
//!
//! ```
//! use situational_facts::prelude::*;
//!
//! // A table of basketball box scores: who did what, against whom.
//! let schema = SchemaBuilder::new("gamelog")
//!     .dimension("player")
//!     .dimension("team")
//!     .dimension("opp_team")
//!     .measure("points", Direction::HigherIsBetter)
//!     .measure("assists", Direction::HigherIsBetter)
//!     .measure("rebounds", Direction::HigherIsBetter)
//!     .build()
//!     .unwrap();
//!
//! // STopDown is the paper's most scalable algorithm; the monitor ranks the
//! // discovered facts by prominence.
//! let algo = STopDown::new(&schema, DiscoveryConfig::unrestricted());
//! let mut monitor = FactMonitor::new(schema, algo, MonitorConfig::default().with_tau(2.0));
//!
//! monitor.ingest_raw(&["Bogues", "Hornets", "Hawks"], vec![4.0, 12.0, 5.0]).unwrap();
//! monitor.ingest_raw(&["Seikaly", "Heat", "Hawks"], vec![24.0, 5.0, 15.0]).unwrap();
//! let report = monitor
//!     .ingest_raw(&["Wesley", "Celtics", "Nets"], vec![12.0, 13.0, 5.0])
//!     .unwrap();
//! assert!(!report.facts.is_empty());
//! for fact in report.top_k(3) {
//!     println!("{}", fact.display(monitor.table().schema()));
//! }
//!
//! // High-throughput feeds ingest whole windows at once: the batch is
//! // appended in one amortised pass, yet every arrival is discovered and
//! // ranked against exactly the rows that preceded it — the reports are
//! // identical to a sequential `ingest` loop, just faster.
//! let window = vec![
//!     monitor.encode_raw(&["Bogues", "Hornets", "Magic"], vec![8.0, 14.0, 4.0]).unwrap(),
//!     monitor.encode_raw(&["Wesley", "Celtics", "Hawks"], vec![14.0, 11.0, 6.0]).unwrap(),
//! ];
//! let reports = monitor.ingest_batch(window).unwrap();
//! assert_eq!(reports.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sitfact_algos as algos;
pub use sitfact_core as core;
pub use sitfact_datagen as datagen;
pub use sitfact_prominence as prominence;
pub use sitfact_serve as serve;
pub use sitfact_storage as storage;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use sitfact_algos::{
        AlgorithmKind, BaselineIdx, BaselineSeq, BottomUp, BruteForce, CCsc, Discovery, FsBottomUp,
        FsTopDown, SBottomUp, STopDown, TopDown,
    };
    pub use sitfact_core::{
        Audit, AuditViolation, BoundMask, Constraint, ConstraintLattice, Dictionary, Direction,
        DiscoveryConfig, Schema, SchemaBuilder, SkylinePair, SubspaceMask, Tuple, TupleId,
        TupleRef, TupleView,
    };
    pub use sitfact_datagen::{shuffle_rows, DataGenerator, Row, ShuffledReplay};
    pub use sitfact_prominence::{
        narrate, replay_log, ArrivalReport, DistributionStats, DurableMonitor, FactMonitor,
        MonitorConfig, RankedFact, RecoveryReport, ReplayOutcome, ShardedMonitor, StreamMonitor,
        WalOptions, WindowPolicy, WindowedMonitor,
    };
    pub use sitfact_serve::{
        Client, FactServer, RawRow, ServeError, ServeMode, ServerHandle, ServerOptions, TenantSpec,
    };
    pub use sitfact_storage::{
        ContextCounter, FileSkylineStore, KdTree, MemorySkylineStore, SkylineStore, StoreStats,
        SyncPolicy, Table, WalStats, WorkStats,
    };
}
