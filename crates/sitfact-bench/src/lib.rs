//! # sitfact-bench
//!
//! Experiment harness reproducing every figure of the evaluation section of
//! *Incremental Discovery of Prominent Situational Facts* (ICDE 2014).
//!
//! Each figure has a dedicated binary under `src/bin/` (see DESIGN.md for the
//! experiment index); this library holds the shared plumbing:
//!
//! * [`params`] — the paper's parameter grids (Table V/VI dimension and
//!   measure spaces, default `d̂`/`m̂`, sweep ranges) scaled to laptop sizes;
//! * [`harness`] — streaming drivers that measure per-tuple latency, work
//!   counters and storage growth for any
//!   [`AlgorithmKind`](sitfact_algos::AlgorithmKind);
//! * [`report`] — plain-text/CSV emission of the series each figure plots.
//!
//! The absolute numbers differ from the paper's (Java on 2009-era hardware vs
//! native Rust, and smaller default stream sizes); the *relationships* between
//! algorithms are what the binaries reproduce and what `EXPERIMENTS.md`
//! records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod params;
pub mod report;

pub use harness::{
    build_algorithm, drive_windows, drive_windows_count, generate_rows, run_prominence_study,
    run_stream, sweep_dimensions, sweep_measures, DatasetKind, ProminenceStudy, SeriesPoint,
    StreamOutcome,
};
pub use params::ExperimentParams;
pub use report::{print_series_csv, print_table, Series};
