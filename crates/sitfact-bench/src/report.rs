//! Plain-text emission of experiment results.
//!
//! Every figure binary prints (a) a human-readable aligned table and (b) CSV
//! rows prefixed with `csv,` so results can be extracted with `grep ^csv`.

use crate::harness::StreamOutcome;

/// A named series of `(x, y)` points — one line of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (algorithm name).
    pub label: String,
    /// The plotted points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a series from a label and points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// Builds the per-tuple-time series of a [`StreamOutcome`] (x = tuple id,
    /// y = µs per tuple).
    pub fn from_outcome(outcome: &StreamOutcome) -> Self {
        Series {
            label: outcome.algorithm.clone(),
            points: outcome
                .points
                .iter()
                .map(|p| (p.tuple_id as f64, p.micros_per_tuple))
                .collect(),
        }
    }
}

/// Prints a figure as an aligned table: one row per x value, one column per
/// series.
pub fn print_table(title: &str, x_label: &str, y_label: &str, series: &[Series]) {
    println!("\n=== {title} ===");
    println!("(y = {y_label})");
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(x, _)| *x))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs.dedup();
    print!("{x_label:>12}");
    for s in series {
        print!(" {:>16}", s.label);
    }
    println!();
    for &x in &xs {
        print!("{x:>12.0}");
        for s in series {
            match s
                .points
                .iter()
                .find(|(px, _)| (px - x).abs() < f64::EPSILON)
            {
                Some((_, y)) => print!(" {y:>16.2}"),
                None => print!(" {:>16}", "-"),
            }
        }
        println!();
    }
}

/// Prints the same data as CSV rows (`csv,<figure>,<series>,<x>,<y>`).
pub fn print_series_csv(figure: &str, series: &[Series]) {
    for s in series {
        for (x, y) in &s.points {
            println!("csv,{figure},{},{x},{y}", s.label);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::SeriesPoint;
    use sitfact_storage::{StoreStats, WorkStats};

    #[test]
    fn series_from_outcome_maps_points() {
        let outcome = StreamOutcome {
            algorithm: "TopDown".into(),
            points: vec![
                SeriesPoint {
                    tuple_id: 100,
                    micros_per_tuple: 12.5,
                    work: WorkStats::default(),
                    store: StoreStats::default(),
                },
                SeriesPoint {
                    tuple_id: 200,
                    micros_per_tuple: 14.0,
                    work: WorkStats::default(),
                    store: StoreStats::default(),
                },
            ],
            total_seconds: 1.0,
        };
        let series = Series::from_outcome(&outcome);
        assert_eq!(series.label, "TopDown");
        assert_eq!(series.points, vec![(100.0, 12.5), (200.0, 14.0)]);
    }

    #[test]
    fn printing_does_not_panic_on_ragged_series() {
        let series = vec![
            Series::new("A", vec![(1.0, 2.0), (2.0, 3.0)]),
            Series::new("B", vec![(2.0, 4.0)]),
        ];
        print_table("test", "x", "y", &series);
        print_series_csv("test", &series);
    }
}
