//! Streaming experiment drivers.

use crate::params::ExperimentParams;
use sitfact_algos::{
    AlgorithmKind, BaselineIdx, BaselineSeq, BottomUp, BruteForce, CCsc, Discovery, SBottomUp,
    STopDown, TopDown,
};
use sitfact_core::{DiscoveryConfig, Schema, Tuple};
use sitfact_datagen::nba::{NbaConfig, NbaGenerator};
use sitfact_datagen::weather::{WeatherConfig, WeatherGenerator};
use sitfact_datagen::zipf::{ZipfConfig, ZipfGenerator};
use sitfact_datagen::{DataGenerator, Row};
use sitfact_prominence::{ArrivalReport, FactMonitor, MonitorConfig, RankedFact, StreamMonitor};
use sitfact_storage::{FileSkylineStore, StoreStats, Table, WorkStats};
use std::path::Path;
use std::time::Instant;

/// Which synthetic dataset an experiment streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Synthetic NBA box scores (the paper's primary dataset).
    Nba,
    /// Synthetic UK weather forecasts (the paper's larger dataset).
    Weather,
    /// Zipf-skewed high-cardinality dimensions — the adversarial shape for
    /// the compressed context index (posting lists from table-sized to
    /// singleton).
    Zipf,
}

impl DatasetKind {
    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Nba => "nba",
            DatasetKind::Weather => "weather",
            DatasetKind::Zipf => "zipf",
        }
    }
}

/// Generates the schema and `n` rows of the requested dataset at the given
/// dimensionalities.
pub fn generate_rows(kind: DatasetKind, params: &ExperimentParams) -> (Schema, Vec<Row>) {
    match kind {
        DatasetKind::Nba => {
            let mut gen = NbaGenerator::new(NbaConfig {
                dimensions: params.d,
                measures: params.m,
                players: 600,
                teams: 29,
                seasons: 8,
                games_per_season: (params.n / 8).max(1),
                seed: params.seed,
            });
            (gen.schema().clone(), gen.take_rows(params.n))
        }
        DatasetKind::Weather => {
            let mut gen = WeatherGenerator::new(WeatherConfig {
                dimensions: params.d.min(7),
                measures: params.m,
                locations: 1_200,
                records_per_day: 1_200,
                seed: params.seed,
            });
            (gen.schema().clone(), gen.take_rows(params.n))
        }
        DatasetKind::Zipf => {
            // Cardinalities descend from adversarially high (thousands of
            // mostly-singleton posting lists) to hot (table-sized lists).
            let cards = [5_000, 500, 32, 8, 2_000, 64, 16, 4];
            let take = params.d.clamp(1, cards.len());
            let mut gen = ZipfGenerator::new(ZipfConfig {
                dim_cardinalities: cards[..take].to_vec(),
                exponent: 1.2,
                measures: params.m,
                seed: params.seed,
            });
            (gen.schema().clone(), gen.take_rows(params.n))
        }
    }
}

/// Builds an algorithm instance by kind. File-backed kinds require `file_dir`.
pub fn build_algorithm(
    kind: AlgorithmKind,
    schema: &Schema,
    config: DiscoveryConfig,
    file_dir: Option<&Path>,
) -> Box<dyn Discovery> {
    match kind {
        AlgorithmKind::BruteForce => Box::new(BruteForce::new(schema, config)),
        AlgorithmKind::BaselineSeq => Box::new(BaselineSeq::new(schema, config)),
        AlgorithmKind::BaselineIdx => Box::new(BaselineIdx::new(schema, config)),
        AlgorithmKind::CCsc => Box::new(CCsc::new(schema, config)),
        AlgorithmKind::BottomUp => Box::new(BottomUp::new(schema, config)),
        AlgorithmKind::TopDown => Box::new(TopDown::new(schema, config)),
        AlgorithmKind::SBottomUp => Box::new(SBottomUp::new(schema, config)),
        AlgorithmKind::STopDown => Box::new(STopDown::new(schema, config)),
        AlgorithmKind::FsBottomUp => {
            let dir = file_dir.expect("FSBottomUp needs a store directory");
            let store = FileSkylineStore::new(dir).expect("create file store");
            Box::new(SBottomUp::with_store(schema, config, store))
        }
        AlgorithmKind::FsTopDown => {
            let dir = file_dir.expect("FSTopDown needs a store directory");
            let store = FileSkylineStore::new(dir).expect("create file store");
            Box::new(STopDown::with_store(schema, config, store))
        }
    }
}

/// Streams pre-encoded tuples through any monitor in windows of `batch`
/// tuples via the batched fast path, collecting every arrival's report.
///
/// This is the generic driver behind the shard-scaling and service
/// experiments: it takes `&mut dyn StreamMonitor`, so whether the monitor is
/// a [`FactMonitor`], a [`ShardedMonitor`](sitfact_prominence::ShardedMonitor)
/// or anything else implementing the trait is the caller's construction
/// choice — not a separate driving code path here.
pub fn drive_windows(
    monitor: &mut dyn StreamMonitor,
    tuples: &[Tuple],
    batch: usize,
) -> Vec<ArrivalReport> {
    let mut reports = Vec::with_capacity(tuples.len());
    for window in tuples.chunks(batch.max(1)) {
        reports.extend(
            monitor
                .ingest_batch_slice(window)
                .expect("window matches schema"),
        );
    }
    reports
}

/// [`drive_windows`] for timing loops: drops each window's reports after
/// counting their facts, so the measured region never retains O(stream)
/// report memory (which would skew throughput numbers against earlier
/// count-only harnesses). Returns the total fact count as a checksum.
pub fn drive_windows_count(
    monitor: &mut dyn StreamMonitor,
    tuples: &[Tuple],
    batch: usize,
) -> usize {
    let mut facts = 0;
    for window in tuples.chunks(batch.max(1)) {
        facts += monitor
            .ingest_batch_slice(window)
            .expect("window matches schema")
            .iter()
            .map(|r| r.facts.len())
            .sum::<usize>();
    }
    facts
}

/// One measurement along the stream.
#[derive(Debug, Clone, Copy)]
pub struct SeriesPoint {
    /// Position in the stream (1-based tuple count at the measurement).
    pub tuple_id: usize,
    /// Average per-tuple discovery time over the window ending here, in
    /// microseconds (for the stateless baselines: the time of the single
    /// probe discovery at this position).
    pub micros_per_tuple: f64,
    /// Cumulative work counters at this point.
    pub work: WorkStats,
    /// Storage counters at this point.
    pub store: StoreStats,
}

/// The full outcome of streaming one dataset through one algorithm.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// Algorithm display name.
    pub algorithm: String,
    /// Measurements at the sampled positions.
    pub points: Vec<SeriesPoint>,
    /// Total wall-clock seconds spent inside `discover` calls.
    pub total_seconds: f64,
}

impl StreamOutcome {
    /// The per-tuple time at the last sample point (µs) — the figure-of-merit
    /// used by the `d` / `m` sweeps.
    pub fn final_micros_per_tuple(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.micros_per_tuple)
    }
}

/// Streams `rows` through one algorithm, sampling `sample_points` times.
///
/// Incremental algorithms (everything except `BruteForce` / `BaselineSeq`)
/// process every tuple; the stateless baselines skip non-sampled positions
/// (their per-tuple cost depends only on the table contents, which are
/// appended regardless), which is what makes it feasible to chart them at all
/// at realistic stream lengths.
pub fn run_stream(
    kind: AlgorithmKind,
    schema: &Schema,
    rows: &[Row],
    discovery: DiscoveryConfig,
    sample_points: usize,
    file_dir: Option<&Path>,
) -> StreamOutcome {
    let mut algo = build_algorithm(kind, schema, discovery, file_dir);
    let mut table = Table::with_capacity(schema.clone(), rows.len());
    let sample_every = (rows.len() / sample_points.max(1)).max(1);
    let incremental = kind.is_incremental();

    let mut points = Vec::with_capacity(sample_points + 1);
    let mut window_seconds = 0.0f64;
    let mut window_count = 0usize;
    let mut total_seconds = 0.0f64;

    for (i, row) in rows.iter().enumerate() {
        let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
        let ids = table
            .schema_mut()
            .intern_dims(&dims)
            .expect("row matches schema");
        let tuple = Tuple::new(ids, row.measures.clone());
        let is_sample = (i + 1) % sample_every == 0 || i + 1 == rows.len();

        if incremental || is_sample {
            let start = Instant::now();
            let _facts = algo.discover(&table, &tuple);
            let elapsed = start.elapsed().as_secs_f64();
            window_seconds += elapsed;
            window_count += 1;
            total_seconds += elapsed;
        }
        table.append(tuple).expect("tuple matches schema");

        if is_sample {
            let micros = if window_count > 0 {
                window_seconds / window_count as f64 * 1e6
            } else {
                0.0
            };
            points.push(SeriesPoint {
                tuple_id: i + 1,
                micros_per_tuple: micros,
                work: algo.work_stats(),
                store: algo.store_stats(),
            });
            window_seconds = 0.0;
            window_count = 0;
        }
    }

    StreamOutcome {
        algorithm: kind.name().to_string(),
        points,
        total_seconds,
    }
}

/// Runs the `d` sweep of Figs. 7b/8b/12b: for each number of dimension
/// attributes, streams a fresh dataset and reports the final per-tuple time.
pub fn sweep_dimensions(
    dataset: DatasetKind,
    kinds: &[AlgorithmKind],
    base: ExperimentParams,
    d_values: &[usize],
    file_dir: Option<&Path>,
) -> Vec<(String, Vec<(usize, f64)>)> {
    let mut results: Vec<(String, Vec<(usize, f64)>)> = kinds
        .iter()
        .map(|k| (k.name().to_string(), Vec::new()))
        .collect();
    for &d in d_values {
        let params = base.with_d(d);
        let (schema, rows) = generate_rows(dataset, &params);
        let discovery = DiscoveryConfig::capped(params.d_hat, params.m_hat);
        for (idx, &kind) in kinds.iter().enumerate() {
            let dir = file_dir.map(|p| p.join(format!("{}-d{}", kind.name(), d)));
            let outcome = run_stream(
                kind,
                &schema,
                &rows,
                discovery,
                params.sample_points,
                dir.as_deref(),
            );
            results[idx].1.push((d, outcome.final_micros_per_tuple()));
        }
    }
    results
}

/// Runs the `m` sweep of Figs. 7c/8c/12c.
pub fn sweep_measures(
    dataset: DatasetKind,
    kinds: &[AlgorithmKind],
    base: ExperimentParams,
    m_values: &[usize],
    file_dir: Option<&Path>,
) -> Vec<(String, Vec<(usize, f64)>)> {
    let mut results: Vec<(String, Vec<(usize, f64)>)> = kinds
        .iter()
        .map(|k| (k.name().to_string(), Vec::new()))
        .collect();
    for &m in m_values {
        let params = base.with_m(m);
        let (schema, rows) = generate_rows(dataset, &params);
        let discovery = DiscoveryConfig::capped(params.d_hat, params.m_hat);
        for (idx, &kind) in kinds.iter().enumerate() {
            let dir = file_dir.map(|p| p.join(format!("{}-m{}", kind.name(), m)));
            let outcome = run_stream(
                kind,
                &schema,
                &rows,
                discovery,
                params.sample_points,
                dir.as_deref(),
            );
            results[idx].1.push((m, outcome.final_micros_per_tuple()));
        }
    }
    results
}

/// Outcome of the prominence case study (Figs. 14–15 and Section VII).
#[derive(Debug, Clone)]
pub struct ProminenceStudy {
    /// Threshold values studied.
    pub tau_values: Vec<f64>,
    /// Prominent facts per window of 1,000 tuples, for the first τ (Fig. 14).
    pub per_window: Vec<u64>,
    /// For each τ, prominent-fact counts by number of bound attributes
    /// (Fig. 15a).
    pub by_bound: Vec<Vec<u64>>,
    /// For each τ, prominent-fact counts by measure-subspace dimensionality
    /// (Fig. 15b).
    pub by_measure_dims: Vec<Vec<u64>>,
    /// A few narrated example facts (the Section VII bullet list).
    pub examples: Vec<String>,
}

/// Streams an NBA dataset through a [`FactMonitor`] once and accumulates the
/// prominent-fact distributions for several τ values simultaneously.
pub fn run_prominence_study(
    params: ExperimentParams,
    tau_values: &[f64],
    window: usize,
    max_examples: usize,
) -> ProminenceStudy {
    let (schema, rows) = generate_rows(DatasetKind::Nba, &params);
    let discovery = DiscoveryConfig::capped(params.d_hat, params.m_hat);
    let algo = SBottomUp::new(&schema, discovery);
    // τ = 1 inside the monitor: every arrival's maximal facts are surfaced and
    // re-thresholded here for each studied τ.
    let mut monitor = FactMonitor::new(
        schema,
        algo,
        MonitorConfig::default()
            .with_discovery(discovery)
            .with_tau(1.0)
            .with_keep_top(64),
    );

    let n_windows = rows.len() / window.max(1) + 1;
    let mut per_window = vec![0u64; n_windows];
    let mut by_bound = vec![vec![0u64; params.d_hat + 1]; tau_values.len()];
    let mut by_measure_dims = vec![vec![0u64; params.m_hat + 1]; tau_values.len()];
    let mut examples = Vec::new();

    for (i, row) in rows.iter().enumerate() {
        let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
        let report = monitor
            .ingest_raw(&dims, row.measures.clone())
            .expect("row matches schema");
        let Some(max) = report.max_prominence() else {
            continue;
        };
        let ties: Vec<&RankedFact> = report
            .facts
            .iter()
            .take_while(|f| (f.prominence() - max).abs() < f64::EPSILON)
            .collect();
        for (ti, &tau) in tau_values.iter().enumerate() {
            if max < tau {
                continue;
            }
            for fact in &ties {
                let bound = fact.pair.constraint.bound_count();
                if bound < by_bound[ti].len() {
                    by_bound[ti][bound] += 1;
                }
                let dims = fact.pair.subspace.len();
                if dims < by_measure_dims[ti].len() {
                    by_measure_dims[ti][dims] += 1;
                }
                if ti == 0 {
                    per_window[i / window.max(1)] += 1;
                    if examples.len() < max_examples {
                        let schema = monitor.table().schema();
                        let tuple = monitor.table().tuple(report.tuple_id);
                        let player = schema.resolve_dim(0, tuple.dim(0)).unwrap_or("?");
                        examples.push(format!(
                            "{player}: {}",
                            sitfact_prominence::narrate(schema, tuple, fact)
                        ));
                    }
                }
            }
        }
    }

    ProminenceStudy {
        tau_values: tau_values.to_vec(),
        per_window,
        by_bound,
        by_measure_dims,
        examples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> ExperimentParams {
        ExperimentParams {
            d: 4,
            m: 3,
            d_hat: 3,
            m_hat: 3,
            n: 200,
            sample_points: 4,
            seed: 9,
        }
    }

    #[test]
    fn generate_rows_matches_params() {
        let (schema, rows) = generate_rows(DatasetKind::Nba, &tiny_params());
        assert_eq!(schema.num_dimensions(), 4);
        assert_eq!(schema.num_measures(), 3);
        assert_eq!(rows.len(), 200);
        let (schema, rows) = generate_rows(DatasetKind::Weather, &tiny_params());
        assert_eq!(schema.num_dimensions(), 4);
        assert_eq!(rows.len(), 200);
        assert_eq!(DatasetKind::Nba.name(), "nba");
    }

    #[test]
    fn run_stream_produces_sample_points_for_all_algorithm_classes() {
        let params = tiny_params();
        let (schema, rows) = generate_rows(DatasetKind::Nba, &params);
        let discovery = DiscoveryConfig::capped(params.d_hat, params.m_hat);
        for kind in [
            AlgorithmKind::BaselineSeq,
            AlgorithmKind::BaselineIdx,
            AlgorithmKind::BottomUp,
            AlgorithmKind::STopDown,
        ] {
            let outcome = run_stream(kind, &schema, &rows, discovery, params.sample_points, None);
            assert!(
                outcome.points.len() >= params.sample_points,
                "{} produced {} points",
                outcome.algorithm,
                outcome.points.len()
            );
            assert!(outcome.final_micros_per_tuple() > 0.0);
            assert!(outcome.total_seconds > 0.0);
            // Work counters are monotone along the stream.
            for pair in outcome.points.windows(2) {
                assert!(pair[1].work.comparisons >= pair[0].work.comparisons);
            }
        }
    }

    #[test]
    fn sweeps_cover_requested_values() {
        let params = tiny_params().with_n(120);
        let kinds = [AlgorithmKind::BottomUp, AlgorithmKind::STopDown];
        let by_d = sweep_dimensions(DatasetKind::Nba, &kinds, params, &[4, 5], None);
        assert_eq!(by_d.len(), 2);
        assert_eq!(by_d[0].1.len(), 2);
        let by_m = sweep_measures(DatasetKind::Nba, &kinds, params, &[3, 4], None);
        assert_eq!(
            by_m[1].1.iter().map(|(m, _)| *m).collect::<Vec<_>>(),
            vec![3, 4]
        );
    }

    /// Acceptance guard for the inverted context index: on an NBA-scale
    /// table, retrieving a selective context must examine far fewer rows than
    /// a full scan (the probe bound is the smallest posting list involved),
    /// while returning exactly the scan's results.
    #[test]
    fn context_retrieval_is_sublinear_on_nba_data() {
        use sitfact_core::{BoundMask, Constraint};
        let params = ExperimentParams {
            d: 5,
            m: 4,
            d_hat: 3,
            m_hat: 3,
            n: 5_000,
            sample_points: 1,
            seed: 21,
        };
        let (schema, rows) = generate_rows(DatasetKind::Nba, &params);
        let mut table = Table::with_capacity(schema, rows.len());
        for row in &rows {
            let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
            let ids = table.schema_mut().intern_dims(&dims).unwrap();
            table.append(Tuple::new(ids, row.measures.clone())).unwrap();
        }
        for probe_id in [0u32, 1_000, 2_500, 4_999] {
            let probe = table.tuple(probe_id);
            // Bind the player attribute alone and player ∧ team.
            for mask in [
                BoundMask::from_indices([0]),
                BoundMask::from_indices([0, 3]),
            ] {
                let constraint = Constraint::from_tuple_mask(probe, mask);
                let indexed: Vec<u32> = table.context(&constraint).map(|(id, _)| id).collect();
                let scanned: Vec<u32> = table.context_scan(&constraint).map(|(id, _)| id).collect();
                assert_eq!(indexed, scanned);
                let bound = table.context_probe_bound(&constraint);
                assert!(
                    bound * 10 < table.len(),
                    "constraint {constraint:?} probes {bound} of {} rows — not sub-linear",
                    table.len()
                );
            }
        }
    }

    #[test]
    fn prominence_study_accumulates() {
        let params = ExperimentParams {
            d: 5,
            m: 4,
            d_hat: 3,
            m_hat: 3,
            n: 600,
            sample_points: 3,
            seed: 11,
        };
        let study = run_prominence_study(params, &[2.0, 20.0], 100, 5);
        assert_eq!(study.tau_values.len(), 2);
        assert_eq!(study.by_bound.len(), 2);
        assert_eq!(study.by_bound[0].len(), 4);
        // Lower thresholds admit at least as many prominent facts.
        let total_low: u64 = study.by_bound[0].iter().sum();
        let total_high: u64 = study.by_bound[1].iter().sum();
        assert!(total_low >= total_high);
        assert!(total_low > 0);
        assert!(!study.examples.is_empty());
        assert_eq!(
            study.per_window.iter().sum::<u64>(),
            study.by_bound[0].iter().sum::<u64>()
        );
    }
}
