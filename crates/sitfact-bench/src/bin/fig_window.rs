//! Sliding-window experiment: steady-state memory of a `CountWindow` monitor
//! under sustained ingest vs. the unbounded growth of the append-only
//! monitor, with machine-readable results written to `BENCH_window.json`
//! (schema documented in `crates/sitfact-bench/README.md`).
//!
//! Usage: `fig_window [--window 400] [--mult 5] [--batch 16] [--reps 3]
//! [--seed S] [--out BENCH_window.json]`
//!
//! Three legs on the synthetic NBA workload (`d = 5`, `m = 4`,
//! `d̂ = m̂ = 3`, `STopDown`):
//!
//! * **fidelity** — before anything is timed, the binary asserts the
//!   subsystem's load-bearing equivalence: a `WindowedMonitor` that ingested
//!   the whole stream produces byte-identical reports for a continuation to
//!   a fresh monitor (id space aligned via `FactMonitor::with_base`) fed
//!   only the surviving suffix. A CI smoke run of this binary therefore
//!   doubles as an end-to-end retraction-correctness test.
//! * **memory** — `window * mult` rows (`mult ≥ 4` required) are streamed
//!   through a windowed and an unbounded monitor side by side, sampling
//!   resident heap bytes (table + discovery store) at every half-window
//!   checkpoint. The windowed curve must stay bounded once the window has
//!   filled — retraction plus amortised compaction keeps the resident set
//!   within a small constant of the window length — while the unbounded
//!   curve grows with the stream. Both properties are asserted, not just
//!   reported.
//! * **ingest** — windowed vs. unbounded `ingest_batch_slice` throughput,
//!   best-of-`reps`, so the retraction overhead is visible next to the
//!   memory it buys back.

use sitfact_algos::Discovery;
use sitfact_bench::params::arg_value;
use sitfact_bench::{generate_rows, DatasetKind, ExperimentParams};
use sitfact_core::{DiscoveryConfig, Schema, Tuple, TupleId};
use sitfact_prominence::{
    FactMonitor, MonitorConfig, StreamMonitor, WindowPolicy, WindowedMonitor,
};
use std::time::Instant;

const TAU: f64 = 100.0;
const KEEP_TOP: usize = 8;

/// One memory checkpoint: resident heap bytes after `rows` arrivals.
struct MemoryPoint {
    rows: usize,
    windowed_bytes: usize,
    unbounded_bytes: usize,
}

/// One measured ingest leg.
struct IngestLeg {
    mode: &'static str,
    rows: usize,
    seconds: f64,
    rows_per_sec: f64,
}

fn encode(schema: &mut Schema, rows: &[sitfact_datagen::Row]) -> Vec<Tuple> {
    rows.iter()
        .map(|row| {
            let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
            let ids = schema.intern_dims(&dims).expect("row matches schema");
            Tuple::new(ids, row.measures.clone())
        })
        .collect()
}

/// Resident heap of a monitor: table columns + postings + dictionaries, plus
/// the discovery algorithm's skyline store.
fn heap_bytes(monitor: &FactMonitor<sitfact_algos::STopDown>) -> usize {
    monitor.table().approx_heap_bytes() + monitor.algorithm().store_stats().approx_bytes as usize
}

/// Runs `run` `reps` times and keeps the best wall-clock time; the closure
/// returns a checksum so the work cannot be optimised away.
fn measure(reps: usize, mut run: impl FnMut() -> usize) -> f64 {
    let mut best = f64::INFINITY;
    let mut checksum = 0usize;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        checksum = checksum.wrapping_add(run());
        best = best.min(start.elapsed().as_secs_f64());
    }
    std::hint::black_box(checksum);
    best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let window: usize = arg_value(&args, "--window", 400).max(1);
    let mult: usize = arg_value(&args, "--mult", 5);
    let batch: usize = arg_value(&args, "--batch", 16).max(1);
    let reps: usize = arg_value(&args, "--reps", 3);
    let seed: u64 = arg_value(&args, "--seed", 42);
    let out: String = arg_value(&args, "--out", "BENCH_window.json".to_string());
    assert!(
        mult >= 4,
        "--mult must be >= 4: steady state only shows once the stream has \
         sustained several window lengths"
    );
    let n = window * mult;

    let params = ExperimentParams {
        d: 5,
        m: 4,
        d_hat: 3,
        m_hat: 3,
        n: n + 2 * batch, // the tail feeds the fidelity continuation
        sample_points: 1,
        seed,
    };
    let (mut schema, rows) = generate_rows(DatasetKind::Nba, &params);
    let tuples = encode(&mut schema, &rows);
    let (stream, continuation) = tuples.split_at(n);
    let discovery = DiscoveryConfig::capped(params.d_hat, params.m_hat);
    let config = MonitorConfig::default()
        .with_discovery(discovery)
        .with_tau(TAU)
        .with_keep_top(KEEP_TOP);
    let fresh = || {
        let algo = sitfact_algos::STopDown::new(&schema, discovery);
        FactMonitor::new(schema.clone(), algo, config)
    };
    let policy = WindowPolicy::count(window).expect("window >= 1");
    eprintln!("fig_window: window={window}, n={n} ({mult}x), batch={batch}, reps={reps}");

    // --- Fidelity: windowed ≡ rebuild-from-suffix, asserted before timing --
    let mut windowed = WindowedMonitor::new(fresh(), policy);
    for chunk in stream.chunks(batch) {
        windowed.ingest_batch_slice(chunk).expect("windowed ingest");
    }
    assert_eq!(windowed.live_rows(), window.min(n), "window not enforced");
    let start = windowed.len() - windowed.live_rows();
    let algo = sitfact_algos::STopDown::new(&schema, discovery);
    let rebuilt_inner = FactMonitor::with_base(schema.clone(), algo, config, start as TupleId);
    let mut rebuilt = WindowedMonitor::new(rebuilt_inner, policy);
    rebuilt
        .ingest_batch_slice(&stream[start..])
        .expect("rebuild ingest");
    for chunk in continuation.chunks(batch) {
        let expected = windowed.ingest_batch_slice(chunk).expect("windowed");
        let actual = rebuilt.ingest_batch_slice(chunk).expect("rebuilt");
        assert_eq!(
            actual, expected,
            "windowed monitor drifted from the rebuild-from-suffix reference"
        );
    }
    eprintln!(
        "fidelity: {} continuation reports byte-identical to the rebuild",
        continuation.len()
    );

    // --- Memory curve -----------------------------------------------------
    let checkpoint_every = (window / 2).max(1);
    let mut windowed = WindowedMonitor::new(fresh(), policy);
    let mut unbounded = fresh();
    let mut memory: Vec<MemoryPoint> = Vec::new();
    let mut since_checkpoint = 0usize;
    for chunk in stream.chunks(batch) {
        windowed.ingest_batch_slice(chunk).expect("windowed ingest");
        unbounded
            .ingest_batch_slice(chunk)
            .expect("unbounded ingest");
        since_checkpoint += chunk.len();
        if since_checkpoint >= checkpoint_every {
            since_checkpoint = 0;
            memory.push(MemoryPoint {
                rows: unbounded.len(),
                windowed_bytes: heap_bytes(windowed.inner()),
                unbounded_bytes: heap_bytes(&unbounded),
            });
        }
    }
    // Boundedness: once the window has filled and the first compactions have
    // run (2x window), the windowed resident set must stay within a small
    // constant of its level at that point — compaction halves the tombstoned
    // prefix whenever it reaches the live count, so the resident set
    // oscillates below ~2 windows of rows and never tracks the stream.
    let fill_level = memory
        .iter()
        .find(|p| p.rows >= 2 * window)
        .map(|p| p.windowed_bytes)
        .expect("mult >= 4 guarantees a 2x-window checkpoint");
    let steady_max = memory
        .iter()
        .filter(|p| p.rows >= 2 * window)
        .map(|p| p.windowed_bytes)
        .max()
        .unwrap_or(fill_level);
    assert!(
        steady_max <= 3 * fill_level,
        "windowed memory grew past steady state: {steady_max} bytes vs {fill_level} at 2x window"
    );
    let final_point = memory.last().expect("at least one checkpoint");
    assert!(
        final_point.unbounded_bytes > final_point.windowed_bytes,
        "unbounded monitor should out-grow the windowed one at {mult}x window"
    );

    // --- Ingest legs ------------------------------------------------------
    let mut ingest_legs: Vec<IngestLeg> = Vec::new();
    for (mode, is_windowed) in [("unbounded", false), ("windowed", true)] {
        let seconds = measure(reps, || {
            if is_windowed {
                let mut monitor = WindowedMonitor::new(fresh(), policy);
                for chunk in stream.chunks(batch) {
                    monitor.ingest_batch_slice(chunk).expect("ingest");
                }
                monitor.live_rows()
            } else {
                let mut monitor = fresh();
                for chunk in stream.chunks(batch) {
                    monitor.ingest_batch_slice(chunk).expect("ingest");
                }
                monitor.len()
            }
        });
        ingest_legs.push(IngestLeg {
            mode,
            rows: n,
            seconds,
            rows_per_sec: n as f64 / seconds.max(1e-12),
        });
    }

    // --- Report ----------------------------------------------------------
    println!("\n=== Sliding window: steady-state memory & ingest (NBA, d=5 m=4) ===");
    println!(
        "{:>8} {:>16} {:>16} {:>8}",
        "rows", "windowed_bytes", "unbounded_bytes", "ratio"
    );
    for p in &memory {
        println!(
            "{:>8} {:>16} {:>16} {:>7.2}x",
            p.rows,
            p.windowed_bytes,
            p.unbounded_bytes,
            p.unbounded_bytes as f64 / p.windowed_bytes.max(1) as f64
        );
        println!(
            "csv,fig_window,memory,{},{},{}",
            p.rows, p.windowed_bytes, p.unbounded_bytes
        );
    }
    println!(
        "\n{:>10} {:>8} {:>12} {:>12} {:>10}",
        "mode", "rows", "seconds", "rows/sec", "overhead"
    );
    let unbounded_seconds = ingest_legs[0].seconds;
    for l in &ingest_legs {
        println!(
            "{:>10} {:>8} {:>12.6} {:>12.0} {:>9.2}x",
            l.mode,
            l.rows,
            l.seconds,
            l.rows_per_sec,
            l.seconds / unbounded_seconds.max(1e-12)
        );
        println!(
            "csv,fig_window,ingest_{},{},{}",
            l.mode, l.rows, l.rows_per_sec
        );
    }

    // --- Machine-readable results (schema: crates/sitfact-bench/README.md)
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"window_retraction\",\n");
    json.push_str(&format!(
        "  \"params\": {{\"window\": {window}, \"mult\": {mult}, \"n\": {n}, \"batch\": {batch}, \"reps\": {reps}, \"seed\": {seed}, \"dataset\": \"nba\", \"d\": {}, \"m\": {}, \"d_hat\": {}, \"m_hat\": {}, \"tau\": {TAU}, \"keep_top\": {KEEP_TOP}}},\n",
        params.d, params.m, params.d_hat, params.m_hat
    ));
    json.push_str("  \"memory\": [\n");
    for (i, p) in memory.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"rows\": {}, \"windowed_bytes\": {}, \"unbounded_bytes\": {}}}{}\n",
            p.rows,
            p.windowed_bytes,
            p.unbounded_bytes,
            if i + 1 < memory.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"steady_state\": {{\"fill_bytes\": {fill_level}, \"max_bytes\": {steady_max}, \"final_unbounded_bytes\": {}, \"unbounded_over_windowed\": {:.2}}},\n",
        final_point.unbounded_bytes,
        final_point.unbounded_bytes as f64 / final_point.windowed_bytes.max(1) as f64
    ));
    json.push_str("  \"ingest\": [\n");
    for (i, l) in ingest_legs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"rows\": {}, \"seconds\": {:.6}, \"rows_per_sec\": {:.0}, \"overhead\": {:.3}}}{}\n",
            l.mode,
            l.rows,
            l.seconds,
            l.rows_per_sec,
            l.seconds / unbounded_seconds.max(1e-12),
            if i + 1 < ingest_legs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");
    std::fs::write(&out, json).expect("write results file");
    eprintln!("wrote {out}");
}
