//! Figure 12: per-tuple execution time of the file-based implementations
//! FSBottomUp and FSTopDown on the NBA dataset — (a) varying n, (b) varying
//! d, (c) varying m.
//!
//! Usage: `fig12_filebased [--n 1500] [--sweep-n 800] [--seed S]`

use sitfact_algos::AlgorithmKind;
use sitfact_bench::params::{arg_value, D_SWEEP, M_SWEEP};
use sitfact_bench::{
    generate_rows, print_series_csv, print_table, run_stream, sweep_dimensions, sweep_measures,
    DatasetKind, ExperimentParams, Series,
};
use sitfact_core::DiscoveryConfig;

const ALGOS: [AlgorithmKind; 2] = [AlgorithmKind::FsBottomUp, AlgorithmKind::FsTopDown];

fn store_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sitfact-fig12-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_value(&args, "--n", 1_500);
    let sweep_n: usize = arg_value(&args, "--sweep-n", 800);
    let seed: u64 = arg_value(&args, "--seed", 20_140_331);

    // (a) varying n.
    let params = ExperimentParams {
        seed,
        sample_points: 6,
        ..ExperimentParams::paper_default(n)
    };
    let (schema, rows) = generate_rows(DatasetKind::Nba, &params);
    let discovery = DiscoveryConfig::capped(params.d_hat, params.m_hat);
    let mut series = Vec::new();
    for kind in ALGOS {
        let dir = store_root(kind.name());
        let outcome = run_stream(
            kind,
            &schema,
            &rows,
            discovery,
            params.sample_points,
            Some(&dir),
        );
        eprintln!(
            "  {} done in {:.1}s of discovery time",
            kind.name(),
            outcome.total_seconds
        );
        series.push(Series::from_outcome(&outcome));
        let _ = std::fs::remove_dir_all(&dir);
    }
    print_table(
        "Fig 12a: execution time per tuple, file-based stores, NBA, d=5 m=7",
        "tuple id",
        "µs per tuple",
        &series,
    );
    print_series_csv("fig12a", &series);

    // (b) varying d and (c) varying m.
    let base = ExperimentParams {
        seed,
        sample_points: 4,
        ..ExperimentParams::paper_default(sweep_n)
    };
    let root = store_root("sweep-d");
    let by_d = sweep_dimensions(DatasetKind::Nba, &ALGOS, base, &D_SWEEP, Some(&root));
    let series: Vec<Series> = by_d
        .iter()
        .map(|(l, pts)| {
            Series::new(
                l.clone(),
                pts.iter().map(|(d, y)| (*d as f64, *y)).collect(),
            )
        })
        .collect();
    print_table(
        &format!("Fig 12b: file-based stores, NBA, n={sweep_n} m=7, varying d"),
        "d",
        "µs per tuple",
        &series,
    );
    print_series_csv("fig12b", &series);
    let _ = std::fs::remove_dir_all(&root);

    let root = store_root("sweep-m");
    let by_m = sweep_measures(DatasetKind::Nba, &ALGOS, base, &M_SWEEP, Some(&root));
    let series: Vec<Series> = by_m
        .iter()
        .map(|(l, pts)| {
            Series::new(
                l.clone(),
                pts.iter().map(|(m, y)| (*m as f64, *y)).collect(),
            )
        })
        .collect();
    print_table(
        &format!("Fig 12c: file-based stores, NBA, n={sweep_n} d=5, varying m"),
        "m",
        "µs per tuple",
        &series,
    );
    print_series_csv("fig12c", &series);
    let _ = std::fs::remove_dir_all(&root);
}
