//! Shard-scaling experiment: window-ingest throughput of a `ShardedMonitor`
//! (routed by team) against the unsharded `FactMonitor` running the same
//! anchored constraint space, with machine-readable results written to
//! `BENCH_shard.json` (schema documented in `crates/sitfact-bench/README.md`).
//!
//! Usage: `fig_shard [--n 8000] [--baseline-n 2000] [--batch 2048]
//! [--max-shards 4] [--reps 3] [--eq-n 2500] [--seed S]
//! [--out BENCH_shard.json]`
//!
//! Before timing anything the binary asserts, at `--eq-n` rows, that the
//! sharded monitor's merged reports are byte-identical to the unsharded
//! monitor's — a CI smoke run of this binary doubles as an end-to-end
//! routing-soundness test.
//!
//! Two algorithms are measured: `STopDown` (the paper's flagship incremental
//! algorithm — its per-arrival cost barely depends on history length, so
//! sharding pays mostly through parallelism and the smaller out-of-anchor
//! contexts each shard maintains) and `BaselineSeq` (scan-based — per-arrival
//! cost tracks table size, so partitioning the table pays even on one core).

use sitfact_bench::params::arg_value;
use sitfact_bench::{
    drive_windows, drive_windows_count, generate_rows, DatasetKind, ExperimentParams,
};
use sitfact_core::{DiscoveryConfig, Schema, Tuple};
use sitfact_prominence::{FactMonitor, MonitorConfig, ShardedMonitor};
use std::time::Instant;

/// One measured leg: `shards == 0` is the unsharded monitor.
struct Leg {
    algo: &'static str,
    shards: usize,
    rows: usize,
    seconds: f64,
    rows_per_sec: f64,
}

/// Runs `run` `reps` times, keeping the best wall-clock time; the closure
/// returns a checksum so the work cannot be optimised away.
fn measure(reps: usize, mut run: impl FnMut() -> usize) -> f64 {
    let mut best = f64::INFINITY;
    let mut checksum = 0usize;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        checksum = checksum.wrapping_add(run());
        best = best.min(start.elapsed().as_secs_f64());
    }
    std::hint::black_box(checksum);
    best
}

fn encode(schema: &mut Schema, rows: &[sitfact_datagen::Row]) -> Vec<Tuple> {
    rows.iter()
        .map(|row| {
            let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
            let ids = schema.intern_dims(&dims).expect("row matches schema");
            Tuple::new(ids, row.measures.clone())
        })
        .collect()
}

/// Measures one algorithm across the shard ladder, asserting equivalence
/// first.
#[allow(clippy::too_many_arguments)]
fn bench_algo<A, F>(
    algo_name: &'static str,
    schema: &Schema,
    tuples: &[Tuple],
    routing_dim: usize,
    shard_counts: &[usize],
    batch: usize,
    reps: usize,
    eq_n: usize,
    make: F,
    legs: &mut Vec<Leg>,
) where
    A: sitfact_algos::Discovery + Send + 'static,
    F: Fn(&Schema, DiscoveryConfig) -> A + Copy,
{
    let discovery = DiscoveryConfig::capped(3, 3).with_anchor(routing_dim);
    let config = MonitorConfig::default()
        .with_discovery(discovery)
        .with_tau(100.0);
    let max_shards = shard_counts.iter().copied().max().unwrap_or(1).max(2);

    // --- Routing-soundness guard: sharded ≡ unsharded, byte-identical ------
    // Both monitors are fed by the same generic driver
    // (`drive_windows(&mut dyn StreamMonitor, …)`): since the StreamMonitor
    // redesign, sharded vs unsharded is a construction choice, not a
    // separate driving code path.
    {
        let window = &tuples[..eq_n.min(tuples.len())];
        let mut unsharded = FactMonitor::new(schema.clone(), make(schema, discovery), config);
        let expected = drive_windows(&mut unsharded, window, window.len().max(1));
        let mut sharded =
            ShardedMonitor::new(schema.clone(), routing_dim, max_shards, config, make).unwrap();
        let actual = drive_windows(&mut sharded, window, batch);
        assert_eq!(
            actual, expected,
            "{algo_name}: sharded reports drifted from the unsharded monitor"
        );
        eprintln!(
            "  {algo_name}: equivalence check passed \
             ({} reports, {max_shards} shards vs unsharded)",
            expected.len()
        );
    }

    // --- Unsharded baseline (shards = 0 in the report) ---------------------
    let n = tuples.len();
    let seconds = measure(reps, || {
        let mut monitor = FactMonitor::new(schema.clone(), make(schema, discovery), config);
        drive_windows_count(&mut monitor, tuples, batch)
    });
    legs.push(Leg {
        algo: algo_name,
        shards: 0,
        rows: n,
        seconds,
        rows_per_sec: n as f64 / seconds.max(1e-12),
    });

    // --- Shard ladder ------------------------------------------------------
    for &num_shards in shard_counts {
        let seconds = measure(reps, || {
            let mut monitor =
                ShardedMonitor::new(schema.clone(), routing_dim, num_shards, config, make).unwrap();
            drive_windows_count(&mut monitor, tuples, batch)
        });
        legs.push(Leg {
            algo: algo_name,
            shards: num_shards,
            rows: n,
            seconds,
            rows_per_sec: n as f64 / seconds.max(1e-12),
        });
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_value(&args, "--n", 8_000);
    let baseline_n: usize = arg_value(&args, "--baseline-n", 2_000).min(n);
    let batch: usize = arg_value(&args, "--batch", 2_048).max(1);
    let max_shards: usize = arg_value(&args, "--max-shards", 4).max(1);
    let reps: usize = arg_value(&args, "--reps", 3);
    let eq_n: usize = arg_value(&args, "--eq-n", 2_500).min(n);
    let seed: u64 = arg_value(&args, "--seed", 42);
    let out: String = arg_value(&args, "--out", "BENCH_shard.json".to_string());

    let params = ExperimentParams {
        d: 5,
        m: 4,
        d_hat: 3,
        m_hat: 3,
        n,
        sample_points: 1,
        seed,
    };
    let (mut schema, rows) = generate_rows(DatasetKind::Nba, &params);
    let tuples = encode(&mut schema, &rows);
    let routing_attr = "team";
    let routing_dim = schema
        .dimension_index(routing_attr)
        .expect("NBA schema has a team attribute");
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let shard_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&s| s <= max_shards)
        .collect();
    eprintln!(
        "fig_shard: n={n}, baseline_n={baseline_n}, batch={batch}, shards={shard_counts:?}, \
         reps={reps}, routing={routing_attr}, hardware threads={threads}"
    );

    let mut legs: Vec<Leg> = Vec::new();
    bench_algo(
        "STopDown",
        &schema,
        &tuples,
        routing_dim,
        &shard_counts,
        batch,
        reps,
        eq_n,
        sitfact_algos::STopDown::new,
        &mut legs,
    );
    bench_algo(
        "BaselineSeq",
        &schema,
        &tuples[..baseline_n],
        routing_dim,
        &shard_counts,
        batch,
        reps,
        eq_n.min(baseline_n),
        sitfact_algos::BaselineSeq::new,
        &mut legs,
    );

    // --- Report -------------------------------------------------------------
    println!("\n=== Shard scaling: window-ingest throughput (NBA, routed by team) ===");
    println!(
        "{:>12} {:>8} {:>8} {:>12} {:>14}",
        "algo", "shards", "rows", "seconds", "rows/sec"
    );
    for l in &legs {
        let shards = if l.shards == 0 {
            "unsh".to_string()
        } else {
            l.shards.to_string()
        };
        println!(
            "{:>12} {:>8} {:>8} {:>12.6} {:>14.0}",
            l.algo, shards, l.rows, l.seconds, l.rows_per_sec
        );
        println!(
            "csv,fig_shard,{}_{},{},{}",
            l.algo, l.shards, l.rows, l.rows_per_sec
        );
    }
    let speedup_at = |algo: &str, shards: usize| -> f64 {
        let unsharded = legs
            .iter()
            .find(|l| l.algo == algo && l.shards == 0)
            .map_or(0.0, |l| l.seconds);
        let sharded = legs
            .iter()
            .find(|l| l.algo == algo && l.shards == shards)
            .map_or(f64::INFINITY, |l| l.seconds);
        unsharded / sharded.max(1e-12)
    };
    let headline_shards = *shard_counts.last().unwrap_or(&1);
    for algo in ["STopDown", "BaselineSeq"] {
        let by_count: Vec<String> = shard_counts
            .iter()
            .map(|&s| format!("{s} shards {:.2}x", speedup_at(algo, s)))
            .collect();
        println!("speedup {algo}: {}", by_count.join(", "));
    }

    // --- Machine-readable results (schema: crates/sitfact-bench/README.md) --
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"shard_scaling\",\n");
    json.push_str(&format!(
        "  \"params\": {{\"n\": {n}, \"baseline_n\": {baseline_n}, \"batch\": {batch}, \"reps\": {reps}, \"seed\": {seed}, \"dataset\": \"nba\", \"d\": {}, \"m\": {}, \"d_hat\": {}, \"m_hat\": {}, \"routing_attr\": \"{routing_attr}\", \"hardware_threads\": {threads}}},\n",
        params.d, params.m, params.d_hat, params.m_hat
    ));
    json.push_str("  \"legs\": [\n");
    for (i, l) in legs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"algo\": \"{}\", \"shards\": {}, \"rows\": {}, \"seconds\": {:.6}, \"rows_per_sec\": {:.0}}}{}\n",
            l.algo,
            l.shards,
            l.rows,
            l.seconds,
            l.rows_per_sec,
            if i + 1 < legs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_at_{headline_shards}_shards\": {{\"STopDown\": {:.2}, \"BaselineSeq\": {:.2}}}\n",
        speedup_at("STopDown", headline_shards),
        speedup_at("BaselineSeq", headline_shards)
    ));
    json.push_str("}\n");
    std::fs::write(&out, json).expect("write results file");
    eprintln!("wrote {out}");
}
