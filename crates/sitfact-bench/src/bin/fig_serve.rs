//! Multi-tenant serving saturation experiment: the shared-nothing engine
//! (worker-owned tenant monitors, lock-free `TOPK` snapshots) against the
//! retained single-global-mutex baseline, on real loopback TCP round trips.
//! Results go to `BENCH_serve.json` (schema documented in
//! `crates/sitfact-bench/README.md`).
//!
//! Usage: `fig_serve [--n 600] [--batch 25] [--clients-max 4] [--reads 400]
//! [--reps 3] [--seed S] [--out BENCH_serve.json]`
//!
//! Two measured curves per mode (`owned` vs `mutex`):
//!
//! * **ingest saturation** — 1..clients-max concurrent clients, each streaming
//!   `--n` rows into its *own* tenant in `--batch`-row windows; wall-clock of
//!   the slowest client, best of `--reps` runs with a fresh server each.
//! * **TOPK read latency** — one writer streaming large windows into a hot
//!   tenant while a reader times `TOPK` round trips against the same tenant.
//!   In owned mode the read is answered from an epoch-published snapshot and
//!   never waits for an in-flight window; in mutex mode it queues behind the
//!   global monitor lock, so the tail (`max_us`) carries whole-window stalls.
//!
//! Before any timing, each mode's served reports are asserted equal to a
//! fresh in-process [`FactMonitor`] fed the same windows, per tenant — a CI
//! smoke run doubles as a wire-fidelity test. The host's hardware thread
//! count is recorded in the output: on a single hardware thread the ingest
//! curve cannot show parallel speedup (everything is CPU-bound on one core)
//! and the read-latency legs are the meaningful comparison.

use sitfact_algos::STopDown;
use sitfact_bench::params::arg_value;
use sitfact_bench::{generate_rows, DatasetKind, ExperimentParams};
use sitfact_core::{Direction, DiscoveryConfig, Schema, ThreadPool};
use sitfact_datagen::Row;
use sitfact_prominence::{ArrivalReport, FactMonitor, MonitorConfig, StreamMonitor};
use sitfact_serve::{Client, FactServer, RawRow, ServeMode, TenantSpec};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const D: usize = 5;
const M: usize = 4;
const D_HAT: usize = 3;
const M_HAT: usize = 3;
const TAU: f64 = 100.0;
const KEEP_TOP: usize = 8;

fn mode_name(mode: ServeMode) -> &'static str {
    match mode {
        ServeMode::Owned => "owned",
        ServeMode::GlobalMutex => "mutex",
    }
}

fn monitor_config() -> MonitorConfig {
    MonitorConfig::default()
        .with_discovery(DiscoveryConfig::capped(D_HAT, M_HAT))
        .with_tau(TAU)
        .with_keep_top(KEEP_TOP)
}

fn fresh_monitor(schema: &Schema) -> FactMonitor<STopDown> {
    let config = monitor_config();
    FactMonitor::new(
        schema.clone(),
        STopDown::new(schema, config.discovery),
        config,
    )
}

/// The tenant spec matching [`monitor_config`] on the NBA demo schema, so a
/// served tenant and an in-process reference discover identical facts.
fn spec_for(name: &str, schema: &Schema) -> TenantSpec {
    let dims: Vec<&str> = schema
        .dimension_names()
        .iter()
        .map(String::as_str)
        .collect();
    let measures: Vec<(&str, Direction)> = schema
        .measures()
        .iter()
        .map(|m| (m.name.as_str(), m.direction))
        .collect();
    let mut spec = TenantSpec::new(name, &dims, &measures, TAU);
    spec.keep_top = Some(KEEP_TOP as u64);
    spec.d_hat = Some(D_HAT as u64);
    spec.m_hat = Some(M_HAT as u64);
    spec
}

/// A server running on its own single-thread pool; dropping joins it.
struct RunningServer {
    runner: ThreadPool,
    handle: sitfact_serve::ServerHandle,
    addr: std::net::SocketAddr,
}

fn start_server(schema: &Schema, mode: ServeMode, clients: usize) -> RunningServer {
    let monitor: Box<dyn StreamMonitor + Send> = Box::new(fresh_monitor(schema));
    let server = FactServer::builder()
        .with_workers(clients + 1)
        .with_owners(clients.max(1))
        .with_mode(mode)
        .with_read_timeout(Some(Duration::from_secs(30)))
        .with_write_timeout(Some(Duration::from_secs(30)))
        .bind("127.0.0.1:0", monitor)
        .expect("bind loopback server");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = ThreadPool::new(1);
    runner.execute(move || server.run().expect("server exits cleanly"));
    RunningServer {
        runner,
        handle,
        addr,
    }
}

impl RunningServer {
    fn stop(self) {
        self.handle.shutdown();
        drop(self.runner); // joins the accept loop
    }
}

/// Streams rows in `batch`-row windows; returns total facts as checksum.
fn stream_rows(client: &mut Client, rows: &[Row], batch: usize) -> usize {
    let mut facts = 0;
    for window in rows.chunks(batch) {
        let window: Vec<RawRow> = window
            .iter()
            .map(|row| {
                let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
                RawRow::new(&dims, &row.measures)
            })
            .collect();
        facts += client
            .ingest_batch(window)
            .expect("window round trip")
            .iter()
            .map(|r| r.facts.len())
            .sum::<usize>();
    }
    facts
}

/// The in-process ground truth: same config, same windows, no socket.
fn reference_reports(schema: &Schema, rows: &[Row], batch: usize) -> Vec<ArrivalReport> {
    let mut monitor = fresh_monitor(schema);
    let mut reports = Vec::with_capacity(rows.len());
    for window in rows.chunks(batch) {
        let tuples: Vec<_> = window
            .iter()
            .map(|row| {
                let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
                monitor
                    .encode_raw(&dims, row.measures.clone())
                    .expect("row matches schema")
            })
            .collect();
        reports.extend(monitor.ingest_batch(tuples).expect("ingest window"));
    }
    reports
}

/// Asserts each tenant's served reports equal its in-process reference,
/// before anything is timed.
fn assert_wire_fidelity(schema: &Schema, streams: &[Vec<Row>], batch: usize, mode: ServeMode) {
    let server = start_server(schema, mode, streams.len());
    for (i, rows) in streams.iter().enumerate() {
        let name = format!("t{i}");
        let spec = spec_for(&name, schema);
        let mut client = Client::connect(server.addr).expect("connect");
        client.open(&spec).expect("open tenant");
        client.use_tenant(&name).expect("use tenant");
        let mut served = Vec::new();
        for window in rows.chunks(batch) {
            let window: Vec<RawRow> = window
                .iter()
                .map(|row| {
                    let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
                    RawRow::new(&dims, &row.measures)
                })
                .collect();
            served.extend(client.ingest_batch(window).expect("window round trip"));
        }
        let reference = reference_reports(schema, rows, batch);
        assert_eq!(
            served,
            reference,
            "tenant {name} ({} mode) drifted from the in-process monitor",
            mode_name(mode)
        );
        let stats = client.stats().expect("stats");
        assert_eq!(stats.len as usize, rows.len());
        assert_eq!(stats.schema, name);
    }
    server.stop();
}

/// One ingest-saturation point: `clients` concurrent clients, each streaming
/// its own tenant; returns the best wall-clock seconds over `reps` runs.
fn timed_ingest(
    schema: &Schema,
    streams: &[Vec<Row>],
    mode: ServeMode,
    batch: usize,
    reps: usize,
) -> f64 {
    let clients = streams.len();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let server = start_server(schema, mode, clients);
        // Connect and OPEN/USE outside the timed region: the curve is about
        // steady-state ingest, not connection setup.
        let conns: Vec<Client> = (0..clients)
            .map(|i| {
                let name = format!("t{i}");
                let mut c = Client::connect(server.addr).expect("connect");
                c.open(&spec_for(&name, schema)).expect("open tenant");
                c.use_tenant(&name).expect("use tenant");
                c
            })
            .collect();
        let drivers = ThreadPool::new(clients.max(1));
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = conns
            .into_iter()
            .zip(streams.iter().cloned())
            .map(|(mut c, rows)| -> Box<dyn FnOnce() -> usize + Send> {
                Box::new(move || stream_rows(&mut c, &rows, batch))
            })
            .collect();
        let start = Instant::now();
        let facts: usize = drivers.run_all(tasks).into_iter().sum();
        best = best.min(start.elapsed().as_secs_f64());
        std::hint::black_box(facts);
        server.stop();
    }
    best
}

struct ReadLeg {
    reads: usize,
    avg_us: f64,
    p95_us: f64,
    max_us: f64,
    writer_rows: usize,
    writer_seconds: f64,
}

/// Times `TOPK` round trips against a tenant while a writer streams large
/// windows into it. The reader keeps going until the writer finishes *and*
/// at least `reads_min` samples exist.
fn read_latency_leg(
    schema: &Schema,
    rows: &[Row],
    mode: ServeMode,
    write_batch: usize,
    reads_min: usize,
) -> ReadLeg {
    let server = start_server(schema, mode, 2);
    let spec = spec_for("hot", schema);
    let mut writer = Client::connect(server.addr).expect("connect writer");
    writer.open(&spec).expect("open tenant");
    writer.use_tenant("hot").expect("use tenant");
    // Prime with one window so TOPK always has a last arrival to answer.
    let (prime, rest) = rows.split_at(write_batch.min(rows.len()));
    std::hint::black_box(stream_rows(&mut writer, prime, write_batch));
    let mut reader = Client::connect(server.addr).expect("connect reader");
    reader.use_tenant("hot").expect("use tenant");

    let writing = Arc::new(AtomicBool::new(true));
    let writer_flag = Arc::clone(&writing);
    let rest: Vec<Row> = rest.to_vec();
    let writer_rows = rest.len();
    let drivers = ThreadPool::new(2);
    let sample_cap = reads_min * 64;
    let tasks: Vec<Box<dyn FnOnce() -> Vec<f64> + Send>> = vec![
        Box::new(move || {
            let start = Instant::now();
            std::hint::black_box(stream_rows(&mut writer, &rest, write_batch));
            let seconds = start.elapsed().as_secs_f64();
            writer_flag.store(false, Ordering::SeqCst);
            vec![seconds]
        }),
        Box::new(move || {
            let mut lat = Vec::with_capacity(reads_min);
            while (writing.load(Ordering::SeqCst) || lat.len() < reads_min)
                && lat.len() < sample_cap
            {
                let start = Instant::now();
                let report = reader.top_k(1 << 20).expect("TOPK round trip");
                lat.push(start.elapsed().as_secs_f64() * 1e6);
                std::hint::black_box(report.facts.len());
            }
            lat
        }),
    ];
    let mut results = drivers.run_all(tasks);
    let mut lat = results.pop().expect("reader samples");
    let writer_seconds = results.pop().expect("writer seconds")[0];
    server.stop();

    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let reads = lat.len();
    ReadLeg {
        reads,
        avg_us: lat.iter().sum::<f64>() / reads.max(1) as f64,
        p95_us: lat[(reads * 95 / 100).min(reads - 1)],
        max_us: lat.last().copied().unwrap_or(0.0),
        writer_rows,
        writer_seconds,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_value(&args, "--n", 600);
    let batch: usize = arg_value(&args, "--batch", 25).max(1);
    let clients_max: usize = arg_value(&args, "--clients-max", 4).max(1);
    let reads_min: usize = arg_value(&args, "--reads", 400).max(1);
    let reps: usize = arg_value(&args, "--reps", 3).max(1);
    let seed: u64 = arg_value(&args, "--seed", 42);
    let out: String = arg_value(&args, "--out", "BENCH_serve.json".to_string());
    let hardware_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    eprintln!(
        "fig_serve: n={n}/client, batch={batch}, clients≤{clients_max}, reps={reps}, \
         {hardware_threads} hardware thread(s)"
    );

    // One schema shape; each client gets its own stream (distinct seed) so
    // tenants hold genuinely different data.
    let params = |i: u64| ExperimentParams {
        d: D,
        m: M,
        d_hat: D_HAT,
        m_hat: M_HAT,
        n,
        sample_points: 1,
        seed: seed + i,
    };
    let (schema, _) = generate_rows(DatasetKind::Nba, &params(0));
    let streams: Vec<Vec<Row>> = (0..clients_max)
        .map(|i| generate_rows(DatasetKind::Nba, &params(i as u64)).1)
        .collect();

    let modes = [ServeMode::Owned, ServeMode::GlobalMutex];
    for mode in modes {
        let check = 2.min(clients_max);
        assert_wire_fidelity(&schema, &streams[..check], batch, mode);
        eprintln!(
            "  {}: wire fidelity passed ({check} tenants, {n} rows each)",
            mode_name(mode)
        );
    }

    // Clients ladder: powers of two up to the cap.
    let mut ladder = Vec::new();
    let mut c = 1;
    while c < clients_max {
        ladder.push(c);
        c *= 2;
    }
    ladder.push(clients_max);

    struct IngestPoint {
        mode: &'static str,
        clients: usize,
        rows_total: usize,
        seconds: f64,
        rows_per_sec: f64,
    }
    println!("\n=== Multi-tenant serving saturation (n={n}/client) ===");
    let mut ingest_points = Vec::new();
    for mode in modes {
        for &clients in &ladder {
            let seconds = timed_ingest(&schema, &streams[..clients], mode, batch, reps);
            let rows_total = clients * n;
            let rows_per_sec = rows_total as f64 / seconds.max(1e-12);
            println!(
                "{:>6} ingest, {clients} client(s): {rows_total:>6} rows in {seconds:.4} s ({rows_per_sec:>9.0} rows/s)",
                mode_name(mode)
            );
            println!(
                "csv,fig_serve,ingest_{}_{clients}c,{rows_total},{rows_per_sec:.0}",
                mode_name(mode)
            );
            ingest_points.push(IngestPoint {
                mode: mode_name(mode),
                clients,
                rows_total,
                seconds,
                rows_per_sec,
            });
        }
    }

    let write_batch = (n / 4).max(batch);
    let mut read_legs = Vec::new();
    for mode in modes {
        let leg = read_latency_leg(&schema, &streams[0], mode, write_batch, reads_min);
        println!(
            "{:>6} TOPK reads vs {write_batch}-row windows: {} reads, avg {:.1} µs, p95 {:.1} µs, max {:.1} µs",
            mode_name(mode),
            leg.reads,
            leg.avg_us,
            leg.p95_us,
            leg.max_us
        );
        println!(
            "csv,fig_serve,topk_{},{},{:.2}",
            mode_name(mode),
            leg.reads,
            leg.avg_us
        );
        read_legs.push((mode_name(mode), leg));
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"serve_saturation\",\n");
    json.push_str(&format!(
        "  \"params\": {{\"n\": {n}, \"batch\": {batch}, \"clients_max\": {clients_max}, \"reads_min\": {reads_min}, \"reps\": {reps}, \"seed\": {seed}, \"hardware_threads\": {hardware_threads}, \"d\": {D}, \"m\": {M}, \"d_hat\": {D_HAT}, \"m_hat\": {M_HAT}, \"tau\": {TAU}, \"keep_top\": {KEEP_TOP}}},\n"
    ));
    json.push_str("  \"ingest\": [\n");
    for (i, p) in ingest_points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"clients\": {}, \"rows_total\": {}, \"seconds\": {:.6}, \"rows_per_sec\": {:.1}}}{}\n",
            p.mode,
            p.clients,
            p.rows_total,
            p.seconds,
            p.rows_per_sec,
            if i + 1 < ingest_points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"topk_reads\": [\n");
    for (i, (mode, leg)) in read_legs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{mode}\", \"reads\": {}, \"avg_us\": {:.2}, \"p95_us\": {:.2}, \"max_us\": {:.2}, \"writer_rows\": {}, \"writer_seconds\": {:.6}}}{}\n",
            leg.reads,
            leg.avg_us,
            leg.p95_us,
            leg.max_us,
            leg.writer_rows,
            leg.writer_seconds,
            if i + 1 < read_legs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");
    std::fs::write(&out, json).expect("write results file");
    eprintln!("wrote {out}");
}
