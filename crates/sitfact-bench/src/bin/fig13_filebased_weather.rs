//! Figure 13: per-tuple execution time of FSBottomUp and FSTopDown on the
//! (synthetic) weather dataset, varying n, d=5, m=7.
//!
//! Usage: `fig13_filebased_weather [--n 2000] [--seed S]`

use sitfact_algos::AlgorithmKind;
use sitfact_bench::params::arg_value;
use sitfact_bench::{
    generate_rows, print_series_csv, print_table, run_stream, DatasetKind, ExperimentParams, Series,
};
use sitfact_core::DiscoveryConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_value(&args, "--n", 2_000);
    let seed: u64 = arg_value(&args, "--seed", 2_012);

    let params = ExperimentParams {
        seed,
        sample_points: 6,
        ..ExperimentParams::paper_default(n)
    };
    let (schema, rows) = generate_rows(DatasetKind::Weather, &params);
    let discovery = DiscoveryConfig::capped(params.d_hat, params.m_hat);
    let mut series = Vec::new();
    for kind in [AlgorithmKind::FsBottomUp, AlgorithmKind::FsTopDown] {
        let dir = std::env::temp_dir().join(format!(
            "sitfact-fig13-{}-{}",
            kind.name(),
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let outcome = run_stream(
            kind,
            &schema,
            &rows,
            discovery,
            params.sample_points,
            Some(&dir),
        );
        eprintln!(
            "  {} done in {:.1}s of discovery time",
            kind.name(),
            outcome.total_seconds
        );
        series.push(Series::from_outcome(&outcome));
        let _ = std::fs::remove_dir_all(&dir);
    }
    print_table(
        "Fig 13: execution time per tuple, file-based stores, weather, d=5 m=7",
        "tuple id",
        "µs per tuple",
        &series,
    );
    print_series_csv("fig13", &series);
}
