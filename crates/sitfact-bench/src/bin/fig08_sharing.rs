//! Figure 8: per-tuple execution time of C-CSC, BottomUp, TopDown, SBottomUp
//! and STopDown on the NBA dataset — (a) varying n, (b) varying d, (c)
//! varying m.
//!
//! Usage: `fig08_sharing [--n 10000] [--sweep-n 3000] [--seed S]`

use sitfact_algos::AlgorithmKind;
use sitfact_bench::params::{arg_value, D_SWEEP, M_SWEEP};
use sitfact_bench::{
    generate_rows, print_series_csv, print_table, run_stream, sweep_dimensions, sweep_measures,
    DatasetKind, ExperimentParams, Series,
};
use sitfact_core::DiscoveryConfig;

const ALGOS: [AlgorithmKind; 5] = [
    AlgorithmKind::CCsc,
    AlgorithmKind::BottomUp,
    AlgorithmKind::TopDown,
    AlgorithmKind::SBottomUp,
    AlgorithmKind::STopDown,
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_value(&args, "--n", 10_000);
    let sweep_n: usize = arg_value(&args, "--sweep-n", 3_000);
    let seed: u64 = arg_value(&args, "--seed", 20_140_331);

    let params = ExperimentParams {
        seed,
        ..ExperimentParams::paper_default(n)
    };
    let (schema, rows) = generate_rows(DatasetKind::Nba, &params);
    let discovery = DiscoveryConfig::capped(params.d_hat, params.m_hat);
    let mut series = Vec::new();
    for kind in ALGOS {
        let outcome = run_stream(kind, &schema, &rows, discovery, params.sample_points, None);
        eprintln!(
            "  {} done in {:.1}s of discovery time",
            kind.name(),
            outcome.total_seconds
        );
        series.push(Series::from_outcome(&outcome));
    }
    print_table(
        "Fig 8a: execution time per tuple, NBA, d=5 m=7, varying n",
        "tuple id",
        "µs per tuple",
        &series,
    );
    print_series_csv("fig8a", &series);

    let base = ExperimentParams {
        seed,
        ..ExperimentParams::paper_default(sweep_n)
    };
    let by_d = sweep_dimensions(DatasetKind::Nba, &ALGOS, base, &D_SWEEP, None);
    let series: Vec<Series> = by_d
        .iter()
        .map(|(l, pts)| {
            Series::new(
                l.clone(),
                pts.iter().map(|(d, y)| (*d as f64, *y)).collect(),
            )
        })
        .collect();
    print_table(
        &format!("Fig 8b: execution time per tuple, NBA, n={sweep_n} m=7, varying d"),
        "d",
        "µs per tuple",
        &series,
    );
    print_series_csv("fig8b", &series);

    let by_m = sweep_measures(DatasetKind::Nba, &ALGOS, base, &M_SWEEP, None);
    let series: Vec<Series> = by_m
        .iter()
        .map(|(l, pts)| {
            Series::new(
                l.clone(),
                pts.iter().map(|(m, y)| (*m as f64, *y)).collect(),
            )
        })
        .collect();
    print_table(
        &format!("Fig 8c: execution time per tuple, NBA, n={sweep_n} d=5, varying m"),
        "m",
        "µs per tuple",
        &series,
    );
    print_series_csv("fig8c", &series);
}
