//! Durability experiment: what the write-ahead arrival log costs on ingest
//! and what snapshots buy on recovery, with machine-readable results written
//! to `BENCH_wal.json` (schema documented in `crates/sitfact-bench/README.md`).
//!
//! Usage: `fig_wal [--n 4000] [--batch 32] [--reps 3] [--seed S]
//! [--out BENCH_wal.json]`
//!
//! Two curves on the synthetic NBA workload (`d = 5`, `m = 4`,
//! `d̂ = m̂ = 3`, `STopDown`):
//!
//! * **ingest** — windowed `ingest_batch_slice` throughput of a bare
//!   [`FactMonitor`] vs the same monitor wrapped in a [`DurableMonitor`]
//!   under both sync policies (`SyncPolicy::Os`: append + OS flushing;
//!   `SyncPolicy::Always`: fsync before every window ack).
//! * **recovery** — wall-clock to rebuild the monitor from its data
//!   directory as a function of the snapshot interval (0 = log-only, i.e.
//!   full replay). Every recovered monitor is asserted to report the same
//!   facts as an uninterrupted reference monitor, so a CI smoke run of this
//!   binary doubles as an end-to-end recovery-fidelity test.

use sitfact_bench::params::arg_value;
use sitfact_bench::{generate_rows, DatasetKind, ExperimentParams};
use sitfact_core::{DiscoveryConfig, Schema, Tuple};
use sitfact_prominence::{DurableMonitor, FactMonitor, MonitorConfig, StreamMonitor, WalOptions};
use sitfact_storage::SyncPolicy;
use std::path::{Path, PathBuf};
use std::time::Instant;

const TAU: f64 = 100.0;
const KEEP_TOP: usize = 8;

/// One measured ingest leg.
struct IngestLeg {
    mode: &'static str,
    sync: &'static str,
    rows: usize,
    seconds: f64,
    rows_per_sec: f64,
}

/// One measured recovery point.
struct RecoveryLeg {
    snapshot_every: u64,
    log_bytes: u64,
    snapshot_rows: u64,
    replayed_rows: u64,
    recovery_seconds: f64,
    rows_per_sec: f64,
}

/// Runs `run` `reps` times and keeps the best wall-clock time; the closure
/// returns a checksum so the work cannot be optimised away.
fn measure(reps: usize, mut run: impl FnMut() -> usize) -> f64 {
    let mut best = f64::INFINITY;
    let mut checksum = 0usize;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        checksum = checksum.wrapping_add(run());
        best = best.min(start.elapsed().as_secs_f64());
    }
    std::hint::black_box(checksum);
    best
}

fn encode(schema: &mut Schema, rows: &[sitfact_datagen::Row]) -> Vec<Tuple> {
    rows.iter()
        .map(|row| {
            let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
            let ids = schema.intern_dims(&dims).expect("row matches schema");
            Tuple::new(ids, row.measures.clone())
        })
        .collect()
}

fn fresh_dir(root: &Path, tag: &str) -> PathBuf {
    let dir = root.join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_value(&args, "--n", 4_000);
    let batch: usize = arg_value(&args, "--batch", 32).max(1);
    let reps: usize = arg_value(&args, "--reps", 3);
    let seed: u64 = arg_value(&args, "--seed", 42);
    let out: String = arg_value(&args, "--out", "BENCH_wal.json".to_string());

    let params = ExperimentParams {
        d: 5,
        m: 4,
        d_hat: 3,
        m_hat: 3,
        n,
        sample_points: 1,
        seed,
    };
    let (mut schema, rows) = generate_rows(DatasetKind::Nba, &params);
    let tuples = encode(&mut schema, &rows);
    let discovery = DiscoveryConfig::capped(params.d_hat, params.m_hat);
    let config = MonitorConfig::default()
        .with_discovery(discovery)
        .with_tau(TAU)
        .with_keep_top(KEEP_TOP);
    let fresh_monitor = || {
        let algo = sitfact_algos::STopDown::new(&schema, discovery);
        FactMonitor::new(schema.clone(), algo, config)
    };
    let root = std::env::temp_dir().join(format!("fig_wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    eprintln!(
        "fig_wal: n={n}, batch={batch}, reps={reps}, data under {}",
        root.display()
    );

    // --- Reference: the uninterrupted monitor every recovery must match ---
    let mut reference = fresh_monitor();
    let mut expected_report = None;
    for window in tuples.chunks(batch) {
        let reports = reference
            .ingest_batch_slice(window)
            .expect("reference ingest");
        expected_report = reports.into_iter().last().or(expected_report);
    }
    let expected_report = expected_report.expect("n > 0 produces a report");

    // --- Ingest legs ------------------------------------------------------
    let mut ingest_legs: Vec<IngestLeg> = Vec::new();
    let mut push_ingest = |mode: &'static str, sync: &'static str, seconds: f64| {
        ingest_legs.push(IngestLeg {
            mode,
            sync,
            rows: n,
            seconds,
            rows_per_sec: n as f64 / seconds.max(1e-12),
        });
    };
    push_ingest(
        "unlogged",
        "none",
        measure(reps, || {
            let mut monitor = fresh_monitor();
            for window in tuples.chunks(batch) {
                monitor.ingest_batch_slice(window).expect("ingest");
            }
            monitor.len()
        }),
    );
    for sync in [SyncPolicy::Os, SyncPolicy::Always] {
        let mode = match sync {
            SyncPolicy::Os => "wal_os",
            SyncPolicy::Always => "wal_always",
        };
        let opts = WalOptions::default().with_sync(sync).without_snapshots();
        let seconds = measure(reps, || {
            let dir = fresh_dir(&root, mode);
            let (mut durable, _) =
                DurableMonitor::open(&dir, fresh_monitor(), opts).expect("open wal");
            for window in tuples.chunks(batch) {
                durable.ingest_batch_slice(window).expect("logged ingest");
            }
            durable.len()
        });
        push_ingest(mode, sync.name(), seconds);
    }

    // --- Recovery curve ---------------------------------------------------
    // 0 = log-only (full replay); the other points bound replay by
    // snapshotting every n/2 and n/8 rows.
    let intervals: Vec<u64> = vec![0, (n as u64 / 2).max(1), (n as u64 / 8).max(1)];
    let mut recovery_legs: Vec<RecoveryLeg> = Vec::new();
    for &snapshot_every in &intervals {
        let opts = if snapshot_every == 0 {
            WalOptions::default()
                .with_sync(SyncPolicy::Os)
                .without_snapshots()
        } else {
            WalOptions::default()
                .with_sync(SyncPolicy::Os)
                .with_snapshot_every(snapshot_every)
        };
        let dir = fresh_dir(&root, &format!("recover-{snapshot_every}"));
        let (mut durable, _) = DurableMonitor::open(&dir, fresh_monitor(), opts).expect("open wal");
        for window in tuples.chunks(batch) {
            durable.ingest_batch_slice(window).expect("logged ingest");
        }
        let log_bytes = durable.wal_stats().bytes;
        drop(durable);

        // Recovery fidelity first (recovered ≡ uninterrupted, asserted with
        // ==), then best-of-reps recovery wall-clock on the same directory.
        let (recovered, report) =
            DurableMonitor::open(&dir, fresh_monitor(), opts).expect("recover");
        assert_eq!(recovered.len(), n, "recovered row count");
        assert_eq!(
            recovered.last_report(),
            Some(&expected_report),
            "recovered monitor drifted from the uninterrupted reference"
        );
        drop(recovered);
        let seconds = measure(reps, || {
            let (recovered, _) =
                DurableMonitor::open(&dir, fresh_monitor(), opts).expect("recover");
            recovered.len()
        });
        recovery_legs.push(RecoveryLeg {
            snapshot_every,
            log_bytes,
            snapshot_rows: report.snapshot_rows,
            replayed_rows: report.replayed_rows,
            recovery_seconds: seconds,
            rows_per_sec: n as f64 / seconds.max(1e-12),
        });
    }
    let _ = std::fs::remove_dir_all(&root);

    // --- Report ----------------------------------------------------------
    println!("\n=== WAL durability: ingest overhead & recovery (NBA, d=5 m=4) ===");
    println!(
        "{:>12} {:>8} {:>8} {:>12} {:>12} {:>10}",
        "mode", "sync", "rows", "seconds", "rows/sec", "overhead"
    );
    let unlogged_seconds = ingest_legs[0].seconds;
    for l in &ingest_legs {
        let overhead = l.seconds / unlogged_seconds.max(1e-12);
        println!(
            "{:>12} {:>8} {:>8} {:>12.6} {:>12.0} {:>9.2}x",
            l.mode, l.sync, l.rows, l.seconds, l.rows_per_sec, overhead
        );
        println!(
            "csv,fig_wal,ingest_{},{},{}",
            l.mode, l.rows, l.rows_per_sec
        );
    }
    println!(
        "\n{:>14} {:>10} {:>12} {:>13} {:>14} {:>12}",
        "snapshot_every", "log_bytes", "snap_rows", "replay_rows", "recovery_s", "rows/sec"
    );
    for l in &recovery_legs {
        println!(
            "{:>14} {:>10} {:>12} {:>13} {:>14.6} {:>12.0}",
            l.snapshot_every,
            l.log_bytes,
            l.snapshot_rows,
            l.replayed_rows,
            l.recovery_seconds,
            l.rows_per_sec
        );
        println!(
            "csv,fig_wal,recover_{},{},{}",
            l.snapshot_every, l.replayed_rows, l.rows_per_sec
        );
    }

    // --- Machine-readable results (schema: crates/sitfact-bench/README.md)
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"wal_durability\",\n");
    json.push_str(&format!(
        "  \"params\": {{\"n\": {n}, \"batch\": {batch}, \"reps\": {reps}, \"seed\": {seed}, \"dataset\": \"nba\", \"d\": {}, \"m\": {}, \"d_hat\": {}, \"m_hat\": {}, \"tau\": {TAU}, \"keep_top\": {KEEP_TOP}}},\n",
        params.d, params.m, params.d_hat, params.m_hat
    ));
    json.push_str("  \"ingest\": [\n");
    for (i, l) in ingest_legs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"sync\": \"{}\", \"rows\": {}, \"seconds\": {:.6}, \"rows_per_sec\": {:.0}, \"overhead\": {:.3}}}{}\n",
            l.mode,
            l.sync,
            l.rows,
            l.seconds,
            l.rows_per_sec,
            l.seconds / unlogged_seconds.max(1e-12),
            if i + 1 < ingest_legs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"recovery\": [\n");
    for (i, l) in recovery_legs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"snapshot_every\": {}, \"log_bytes\": {}, \"snapshot_rows\": {}, \"replayed_rows\": {}, \"recovery_seconds\": {:.6}, \"rows_per_sec\": {:.0}}}{}\n",
            l.snapshot_every,
            l.log_bytes,
            l.snapshot_rows,
            l.replayed_rows,
            l.recovery_seconds,
            l.rows_per_sec,
            if i + 1 < recovery_legs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");
    std::fs::write(&out, json).expect("write results file");
    eprintln!("wrote {out}");
}
