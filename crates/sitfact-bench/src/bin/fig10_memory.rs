//! Figure 10: memory consumption (a) and number of stored skyline tuples (b)
//! of C-CSC, BottomUp, TopDown, SBottomUp and STopDown on the NBA dataset,
//! varying n, d=5, m=7.
//!
//! Usage: `fig10_memory [--n 10000] [--seed S]`

use sitfact_algos::AlgorithmKind;
use sitfact_bench::params::arg_value;
use sitfact_bench::{
    generate_rows, print_series_csv, print_table, run_stream, DatasetKind, ExperimentParams, Series,
};
use sitfact_core::DiscoveryConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_value(&args, "--n", 10_000);
    let seed: u64 = arg_value(&args, "--seed", 20_140_331);

    let params = ExperimentParams {
        seed,
        ..ExperimentParams::paper_default(n)
    };
    let (schema, rows) = generate_rows(DatasetKind::Nba, &params);
    let discovery = DiscoveryConfig::capped(params.d_hat, params.m_hat);
    let algos = [
        AlgorithmKind::CCsc,
        AlgorithmKind::BottomUp,
        AlgorithmKind::TopDown,
        AlgorithmKind::SBottomUp,
        AlgorithmKind::STopDown,
    ];

    let mut bytes_series = Vec::new();
    let mut entries_series = Vec::new();
    for kind in algos {
        let outcome = run_stream(kind, &schema, &rows, discovery, params.sample_points, None);
        bytes_series.push(Series::new(
            kind.name(),
            outcome
                .points
                .iter()
                .map(|p| {
                    (
                        p.tuple_id as f64,
                        p.store.approx_bytes as f64 / (1024.0 * 1024.0),
                    )
                })
                .collect(),
        ));
        entries_series.push(Series::new(
            kind.name(),
            outcome
                .points
                .iter()
                .map(|p| (p.tuple_id as f64, p.store.stored_entries as f64))
                .collect(),
        ));
        eprintln!("  {} done", kind.name());
    }
    print_table(
        "Fig 10a: size of consumed skyline-store memory, NBA, d=5 m=7",
        "tuple id",
        "MiB (approx)",
        &bytes_series,
    );
    print_series_csv("fig10a", &bytes_series);
    print_table(
        "Fig 10b: number of skyline tuples stored, NBA, d=5 m=7",
        "tuple id",
        "stored entries",
        &entries_series,
    );
    print_series_csv("fig10b", &entries_series);
}
