//! Figure 11: cumulative work done by BottomUp, TopDown, SBottomUp and
//! STopDown on the NBA dataset — (a) number of tuple comparisons, (b) number
//! of traversed constraints — varying n, d=5, m=7.
//!
//! Usage: `fig11_work [--n 10000] [--seed S]`

use sitfact_algos::AlgorithmKind;
use sitfact_bench::params::arg_value;
use sitfact_bench::{
    generate_rows, print_series_csv, print_table, run_stream, DatasetKind, ExperimentParams, Series,
};
use sitfact_core::DiscoveryConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_value(&args, "--n", 10_000);
    let seed: u64 = arg_value(&args, "--seed", 20_140_331);

    let params = ExperimentParams {
        seed,
        ..ExperimentParams::paper_default(n)
    };
    let (schema, rows) = generate_rows(DatasetKind::Nba, &params);
    let discovery = DiscoveryConfig::capped(params.d_hat, params.m_hat);
    let algos = [
        AlgorithmKind::BottomUp,
        AlgorithmKind::TopDown,
        AlgorithmKind::SBottomUp,
        AlgorithmKind::STopDown,
    ];

    let mut comparisons = Vec::new();
    let mut traversed = Vec::new();
    for kind in algos {
        let outcome = run_stream(kind, &schema, &rows, discovery, params.sample_points, None);
        comparisons.push(Series::new(
            kind.name(),
            outcome
                .points
                .iter()
                .map(|p| (p.tuple_id as f64, p.work.comparisons as f64))
                .collect(),
        ));
        traversed.push(Series::new(
            kind.name(),
            outcome
                .points
                .iter()
                .map(|p| (p.tuple_id as f64, p.work.traversed_constraints as f64))
                .collect(),
        ));
        eprintln!("  {} done", kind.name());
    }
    print_table(
        "Fig 11a: cumulative number of tuple comparisons, NBA, d=5 m=7",
        "tuple id",
        "comparisons",
        &comparisons,
    );
    print_series_csv("fig11a", &comparisons);
    print_table(
        "Fig 11b: cumulative number of traversed constraints, NBA, d=5 m=7",
        "tuple id",
        "constraints",
        &traversed,
    );
    print_series_csv("fig11b", &traversed);
}
