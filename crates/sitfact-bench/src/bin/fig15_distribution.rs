//! Figure 15: distribution of prominent facts (a) by the number of bound
//! dimension attributes in the constraint and (b) by the dimensionality of
//! the measure subspace, for several values of τ (NBA, d=5, m=7, d̂=3, m̂=3).
//!
//! Usage: `fig15_distribution [--n 15000] [--tau-lo 10] [--tau-mid 50] [--tau-hi 250]`

use sitfact_bench::params::arg_value;
use sitfact_bench::{
    print_series_csv, print_table, run_prominence_study, ExperimentParams, Series,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_value(&args, "--n", 15_000);
    let tau_lo: f64 = arg_value(&args, "--tau-lo", 10.0);
    let tau_mid: f64 = arg_value(&args, "--tau-mid", 50.0);
    let tau_hi: f64 = arg_value(&args, "--tau-hi", 250.0);
    let seed: u64 = arg_value(&args, "--seed", 20_140_331);

    let params = ExperimentParams {
        seed,
        ..ExperimentParams::case_study(n)
    };
    let taus = [tau_lo, tau_mid, tau_hi];
    let study = run_prominence_study(params, &taus, 1_000, 0);

    let bound_series: Vec<Series> = taus
        .iter()
        .enumerate()
        .map(|(i, tau)| {
            Series::new(
                format!("tau={tau}"),
                study.by_bound[i]
                    .iter()
                    .enumerate()
                    .map(|(bound, &count)| (bound as f64, count as f64))
                    .collect(),
            )
        })
        .collect();
    print_table(
        "Fig 15a: prominent facts by number of bound dimension attributes",
        "bound(C)",
        "prominent facts",
        &bound_series,
    );
    print_series_csv("fig15a", &bound_series);

    let dims_series: Vec<Series> = taus
        .iter()
        .enumerate()
        .map(|(i, tau)| {
            Series::new(
                format!("tau={tau}"),
                study.by_measure_dims[i]
                    .iter()
                    .enumerate()
                    .skip(1)
                    .map(|(dims, &count)| (dims as f64, count as f64))
                    .collect(),
            )
        })
        .collect();
    print_table(
        "Fig 15b: prominent facts by dimensionality of the measure subspace",
        "|M|",
        "prominent facts",
        &dims_series,
    );
    print_series_csv("fig15b", &dims_series);
}
