//! Section VII case study: stream a synthetic NBA dataset with the paper's
//! case-study parameters (d=5, m=7, d̂=3, m̂=3, τ=500 scaled to the stream
//! length) and print narrated prominent facts.
//!
//! Usage: `case_study [--n 15000] [--tau 100] [--examples 12]`

use sitfact_bench::params::arg_value;
use sitfact_bench::{run_prominence_study, ExperimentParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_value(&args, "--n", 15_000);
    let tau: f64 = arg_value(&args, "--tau", 100.0);
    let examples: usize = arg_value(&args, "--examples", 12);
    let seed: u64 = arg_value(&args, "--seed", 20_140_331);

    let params = ExperimentParams {
        seed,
        ..ExperimentParams::case_study(n)
    };
    println!(
        "Case study: {n} synthetic box scores, d=5 m=7 d̂=3 m̂=3, τ={tau} (paper: τ=500 at n=317K)\n"
    );
    let study = run_prominence_study(params, &[tau], 1_000, examples);
    let total: u64 = study.per_window.iter().sum();
    println!("prominent facts discovered: {total}");
    println!("per 1K-tuple window:        {:?}", study.per_window);
    println!("by bound(C):                {:?}", study.by_bound[0]);
    println!(
        "by |M|:                     {:?}\n",
        study.by_measure_dims[0]
    );
    println!("Narrated prominent facts (cf. the paper's Lamar Odom / Allen Iverson / Damon Stoudamire examples):");
    for example in &study.examples {
        println!("  • {example}");
    }
}
