//! Compressed-postings experiment: raw vs compressed context-index footprint
//! and scan vs merge vs galloping σ_C(R) retrieval, on NBA-shaped data and a
//! zipf-skewed high-cardinality workload. Results go to `BENCH_postings.json`
//! (schema documented in `crates/sitfact-bench/README.md`).
//!
//! Usage: `fig_postings [--n 20000] [--queries 400] [--batch 8192] [--reps 5]
//! [--seed S] [--out BENCH_postings.json]`
//!
//! Before any timing, the binary asserts the compressed index is *exactly*
//! equivalent to the uncompressed model: every posting list decodes to the
//! plain `Vec<TupleId>` built from the raw columns, and every benchmark query
//! returns identical ids through the full scan, the PR 2-style merge
//! intersection over raw lists, and the galloping compressed intersection —
//! so a CI smoke run doubles as an end-to-end equivalence test.

use sitfact_bench::params::arg_value;
use sitfact_bench::{generate_rows, DatasetKind, ExperimentParams};
use sitfact_core::{
    BoundMask, Constraint, DimValueId, FxHashMap, Schema, Tuple, TupleId, TupleRef,
};
use sitfact_storage::{CompressedPostings, Table};
use std::time::Instant;

/// Uncompressed ground-truth index: the PR 2 layout (`DimValueId →
/// Vec<TupleId>` per attribute), rebuilt from the raw rows.
type RawIndex = Vec<FxHashMap<DimValueId, Vec<TupleId>>>;

/// One measured retrieval leg.
struct Leg {
    op: &'static str,
    queries: usize,
    seconds: f64,
}

/// Runs `run` `reps` times and keeps the best wall-clock time; the closure
/// returns a checksum so the work cannot be optimised away.
fn measure(reps: usize, mut run: impl FnMut() -> u64) -> f64 {
    let mut best = f64::INFINITY;
    let mut checksum = 0u64;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        checksum = checksum.wrapping_add(run());
        best = best.min(start.elapsed().as_secs_f64());
    }
    std::hint::black_box(checksum);
    best
}

fn encode(schema: &mut Schema, rows: &[sitfact_datagen::Row]) -> Vec<Tuple> {
    rows.iter()
        .map(|row| {
            let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
            let ids = schema.intern_dims(&dims).expect("row matches schema");
            Tuple::new(ids, row.measures.clone())
        })
        .collect()
}

/// Per-match checksum contribution. Every leg delivers the matching *row*,
/// not just its id — retrieval in the discovery algorithms always reads the
/// tuple — so the checksum folds in a measure read to keep the three legs
/// doing identical per-match work.
fn match_term(id: TupleId, row: TupleRef<'_>) -> u64 {
    u64::from(id).wrapping_add(row.measure(0) as u64)
}

/// The PR 2 merge intersection, verbatim: shortest list drives, the other
/// slices shrink from the front via binary-search catch-up, each match
/// fetches its row from `table` (the old `ContextIter` yielded
/// `(TupleId, TupleRef)` pairs too). Returns the checksum all legs agree on.
fn merge_intersect(mut lists: Vec<&[TupleId]>, table: &Table) -> u64 {
    lists.sort_unstable_by_key(|l| l.len());
    let mut checksum = 0u64;
    'candidates: loop {
        let Some((first, rest)) = lists.split_first_mut() else {
            return checksum;
        };
        let Some((&candidate, remainder)) = first.split_first() else {
            return checksum;
        };
        *first = remainder;
        for list in rest.iter_mut() {
            let skip = list.partition_point(|&id| id < candidate);
            *list = &list[skip..];
            match list.first() {
                Some(&id) if id == candidate => {}
                Some(_) => continue 'candidates,
                None => return checksum,
            }
        }
        checksum = checksum.wrapping_add(match_term(candidate, table.tuple(candidate)));
    }
}

/// Gathers the raw posting slices of a constraint's bound values, or `None`
/// when a bound value was never observed (empty context).
fn raw_lists<'a>(index: &'a RawIndex, constraint: &Constraint) -> Option<Vec<&'a [TupleId]>> {
    let mut lists = Vec::new();
    for (attr, &value) in constraint.values().iter().enumerate() {
        if value == sitfact_core::UNBOUND {
            continue;
        }
        lists.push(index[attr].get(&value)?.as_slice());
    }
    Some(lists)
}

/// Deterministic query workload: rows sampled round-robin along the table,
/// each binding a rotating subset of attributes (1–3 bound values), so the
/// mix covers streaming, easy and selective intersections.
fn build_queries(table: &Table, queries: usize) -> Vec<Constraint> {
    let masks = [vec![0usize], vec![3], vec![0, 3], vec![2, 3], vec![1, 2, 3]];
    let step = (table.len() / queries.max(1)).max(1);
    (0..queries)
        .map(|q| {
            let probe = table.tuple(((q * step) % table.len()) as TupleId);
            let mask = BoundMask::from_indices(masks[q % masks.len()].iter().copied());
            Constraint::from_tuple_mask(probe, mask)
        })
        .collect()
}

struct Workload {
    dataset: &'static str,
    rows: usize,
    stats: sitfact_storage::PostingIndexStats,
    raw_index_bytes: usize,
    compressed_index_bytes: usize,
    legs: Vec<Leg>,
    blocks_decoded: usize,
    blocks_total: usize,
}

fn run_workload(
    kind: DatasetKind,
    n: usize,
    queries: usize,
    batch: usize,
    reps: usize,
    seed: u64,
) -> Workload {
    let params = ExperimentParams {
        d: 5,
        m: 4,
        d_hat: 3,
        m_hat: 3,
        n,
        sample_points: 1,
        seed,
    };
    let (mut schema, rows) = generate_rows(kind, &params);
    let tuples = encode(&mut schema, &rows);

    // Build the compressed table through the batched path, then seal the
    // tails — the bulk-load recipe the memory numbers are about.
    let mut table = Table::with_capacity(schema.clone(), tuples.len());
    for window in tuples.chunks(batch) {
        table.append_batch_slice(window).expect("rows match schema");
    }
    table.compact_postings();

    // Uncompressed ground truth straight from the raw rows.
    let mut raw: RawIndex = vec![FxHashMap::default(); schema.num_dimensions()];
    for (id, tuple) in tuples.iter().enumerate() {
        for (attr, &value) in tuple.dims().iter().enumerate() {
            raw[attr].entry(value).or_default().push(id as TupleId);
        }
    }

    // --- Equivalence: compressed ≡ uncompressed, asserted before timing ---
    let mut lists = 0usize;
    for (attr, map) in raw.iter().enumerate() {
        for (&value, expected) in map {
            let list = table
                .posting_list(attr, value)
                .unwrap_or_else(|| panic!("attr {attr} value {value} missing"));
            assert_eq!(
                &list.to_vec(),
                expected,
                "attr {attr} value {value}: compressed list drifted from raw"
            );
            lists += 1;
        }
    }
    let constraints = build_queries(&table, queries);
    for c in &constraints {
        let gallop: Vec<TupleId> = table.context(c).map(|(id, _)| id).collect();
        let scan: Vec<TupleId> = table.context_scan(c).map(|(id, _)| id).collect();
        assert_eq!(gallop, scan, "constraint {c:?}: gallop drifted from scan");
        let merged: u64 = raw_lists(&raw, c).map_or(0, |lists| merge_intersect(lists, &table));
        assert_eq!(
            table
                .context(c)
                .map(|(id, row)| match_term(id, row))
                .fold(0u64, u64::wrapping_add),
            merged,
            "constraint {c:?}: merge drifted"
        );
    }
    eprintln!(
        "  {}: equivalence check passed ({lists} lists, {} queries)",
        kind.name(),
        constraints.len()
    );

    // --- Memory accounting ------------------------------------------------
    let stats = table.posting_index_stats();
    assert_eq!(stats.lists, lists);
    use std::mem::size_of;
    let raw_index_bytes =
        stats.uncompressed_bytes + lists * (size_of::<DimValueId>() + size_of::<Vec<TupleId>>());
    let compressed_index_bytes = stats.compressed_bytes
        + lists * (size_of::<DimValueId>() + size_of::<CompressedPostings>());

    // --- Retrieval legs ---------------------------------------------------
    let mut legs = Vec::new();
    legs.push(Leg {
        op: "scan",
        queries: constraints.len(),
        seconds: measure(reps.clamp(1, 3), || {
            let mut sum = 0u64;
            for c in &constraints {
                sum = table
                    .context_scan(c)
                    .map(|(id, row)| match_term(id, row))
                    .fold(sum, u64::wrapping_add);
            }
            sum
        }),
    });
    legs.push(Leg {
        op: "merge",
        queries: constraints.len(),
        seconds: measure(reps, || {
            let mut sum = 0u64;
            for c in &constraints {
                sum = sum.wrapping_add(
                    raw_lists(&raw, c).map_or(0, |lists| merge_intersect(lists, &table)),
                );
            }
            sum
        }),
    });
    legs.push(Leg {
        op: "gallop",
        queries: constraints.len(),
        seconds: measure(reps, || {
            let mut sum = 0u64;
            for c in &constraints {
                sum = table
                    .context(c)
                    .map(|(id, row)| match_term(id, row))
                    .fold(sum, u64::wrapping_add);
            }
            sum
        }),
    });

    // Decoded-block accounting for the sub-linearity story: how many sealed
    // blocks the whole query mix decompressed vs how many the index holds.
    let mut blocks_decoded = 0usize;
    for c in &constraints {
        let mut it = table.context(c);
        for _ in it.by_ref() {}
        blocks_decoded += it.blocks_decoded();
    }

    Workload {
        dataset: kind.name(),
        rows: n,
        stats,
        raw_index_bytes,
        compressed_index_bytes,
        legs,
        blocks_decoded,
        blocks_total: stats.sealed_blocks,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_value(&args, "--n", 20_000);
    let queries: usize = arg_value(&args, "--queries", 400);
    let batch: usize = arg_value(&args, "--batch", 8_192).max(1);
    let reps: usize = arg_value(&args, "--reps", 5);
    let seed: u64 = arg_value(&args, "--seed", 42);
    let out: String = arg_value(&args, "--out", "BENCH_postings.json".to_string());
    eprintln!("fig_postings: n={n}, queries={queries}, batch={batch}, reps={reps}");

    let workloads: Vec<Workload> = [DatasetKind::Nba, DatasetKind::Zipf]
        .into_iter()
        .map(|kind| run_workload(kind, n, queries, batch, reps, seed))
        .collect();

    println!("\n=== Compressed postings: footprint and retrieval (n={n}) ===");
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"compressed_postings\",\n");
    json.push_str(&format!(
        "  \"params\": {{\"n\": {n}, \"queries\": {queries}, \"batch\": {batch}, \"reps\": {reps}, \"seed\": {seed}, \"d\": 5, \"m\": 4, \"block\": 128}},\n"
    ));
    json.push_str("  \"workloads\": [\n");
    for (w_idx, w) in workloads.iter().enumerate() {
        let s = &w.stats;
        let list_compression = s.uncompressed_bytes as f64 / s.compressed_bytes.max(1) as f64;
        let index_compression = w.raw_index_bytes as f64 / w.compressed_index_bytes.max(1) as f64;
        let seconds_of = |op: &str| {
            w.legs
                .iter()
                .find(|l| l.op == op)
                .map_or(f64::INFINITY, |l| l.seconds)
        };
        let gallop_vs_merge = seconds_of("merge") / seconds_of("gallop").max(1e-12);
        let gallop_vs_scan = seconds_of("scan") / seconds_of("gallop").max(1e-12);
        let decoded_fraction =
            w.blocks_decoded as f64 / (w.blocks_total.max(1) * queries.max(1)) as f64;

        println!(
            "{:>8}: lists {:>6}, ids {:>8}, raw {:>9} B, compressed {:>9} B ({:.2}x lists, {:.2}x index)",
            w.dataset, s.lists, s.ids, s.uncompressed_bytes, s.compressed_bytes,
            list_compression, index_compression
        );
        for l in &w.legs {
            let us = l.seconds / l.queries.max(1) as f64 * 1e6;
            println!(
                "{:>8}  {:>7}: {:>10.6} s ({us:>9.2} µs/query)",
                "", l.op, l.seconds
            );
            println!("csv,fig_postings,{}_{},{},{us}", w.dataset, l.op, l.queries);
        }
        println!(
            "{:>8}  gallop vs merge {gallop_vs_merge:.2}x, vs scan {gallop_vs_scan:.2}x, decoded {:.4} of blocks/query",
            "", decoded_fraction
        );

        json.push_str("    {\n");
        json.push_str(&format!("      \"dataset\": \"{}\",\n", w.dataset));
        json.push_str(&format!(
            "      \"rows\": {}, \"lists\": {}, \"ids\": {}, \"sealed_blocks\": {}, \"tail_ids\": {},\n",
            w.rows, s.lists, s.ids, s.sealed_blocks, s.tail_ids
        ));
        json.push_str(&format!(
            "      \"raw_list_bytes\": {}, \"compressed_list_bytes\": {}, \"list_compression\": {list_compression:.2},\n",
            s.uncompressed_bytes, s.compressed_bytes
        ));
        json.push_str(&format!(
            "      \"raw_index_bytes\": {}, \"compressed_index_bytes\": {}, \"index_compression\": {index_compression:.2},\n",
            w.raw_index_bytes, w.compressed_index_bytes
        ));
        json.push_str("      \"legs\": [\n");
        for (i, l) in w.legs.iter().enumerate() {
            json.push_str(&format!(
                "        {{\"op\": \"{}\", \"queries\": {}, \"seconds\": {:.6}, \"us_per_query\": {:.3}}}{}\n",
                l.op,
                l.queries,
                l.seconds,
                l.seconds / l.queries.max(1) as f64 * 1e6,
                if i + 1 < w.legs.len() { "," } else { "" }
            ));
        }
        json.push_str("      ],\n");
        json.push_str(&format!(
            "      \"gallop_vs_merge\": {gallop_vs_merge:.2}, \"gallop_vs_scan\": {gallop_vs_scan:.2},\n"
        ));
        json.push_str(&format!(
            "      \"blocks_decoded\": {}, \"blocks_total\": {}, \"decoded_block_fraction\": {decoded_fraction:.4}\n",
            w.blocks_decoded, w.blocks_total
        ));
        json.push_str(&format!(
            "    }}{}\n",
            if w_idx + 1 < workloads.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");
    std::fs::write(&out, json).expect("write results file");
    eprintln!("wrote {out}");
}
