//! Figure 9: per-tuple execution time on the (synthetic) weather dataset,
//! varying n, d=5, m=7 — C-CSC, BottomUp, TopDown, SBottomUp, STopDown.
//!
//! Usage: `fig09_weather [--n 15000] [--seed S]`

use sitfact_algos::AlgorithmKind;
use sitfact_bench::params::arg_value;
use sitfact_bench::{
    generate_rows, print_series_csv, print_table, run_stream, DatasetKind, ExperimentParams, Series,
};
use sitfact_core::DiscoveryConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_value(&args, "--n", 15_000);
    let seed: u64 = arg_value(&args, "--seed", 2_012);

    let params = ExperimentParams {
        seed,
        ..ExperimentParams::paper_default(n)
    };
    let (schema, rows) = generate_rows(DatasetKind::Weather, &params);
    let discovery = DiscoveryConfig::capped(params.d_hat, params.m_hat);
    let algos = [
        AlgorithmKind::CCsc,
        AlgorithmKind::BottomUp,
        AlgorithmKind::TopDown,
        AlgorithmKind::SBottomUp,
        AlgorithmKind::STopDown,
    ];
    let mut series = Vec::new();
    for kind in algos {
        let outcome = run_stream(kind, &schema, &rows, discovery, params.sample_points, None);
        eprintln!(
            "  {} done in {:.1}s of discovery time",
            kind.name(),
            outcome.total_seconds
        );
        series.push(Series::from_outcome(&outcome));
    }
    print_table(
        "Fig 9: execution time per tuple, weather, d=5 m=7, varying n",
        "tuple id",
        "µs per tuple",
        &series,
    );
    print_series_csv("fig9", &series);
}
