//! Figure 14: number of prominent facts per window of 1,000 tuples on the NBA
//! dataset (d=5, m=7, d̂=3, m̂=3).
//!
//! The paper uses τ = 10³ over a 317 K-tuple stream; at laptop-scale stream
//! lengths the threshold is scaled down proportionally (override with
//! `--tau`).
//!
//! Usage: `fig14_prominent_rate [--n 15000] [--tau 50] [--window 1000]`

use sitfact_bench::params::arg_value;
use sitfact_bench::{
    print_series_csv, print_table, run_prominence_study, ExperimentParams, Series,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_value(&args, "--n", 15_000);
    let tau: f64 = arg_value(&args, "--tau", 50.0);
    let window: usize = arg_value(&args, "--window", 1_000);
    let seed: u64 = arg_value(&args, "--seed", 20_140_331);

    let params = ExperimentParams {
        seed,
        ..ExperimentParams::case_study(n)
    };
    let study = run_prominence_study(params, &[tau], window, 6);
    let series = vec![Series::new(
        format!("tau={tau}"),
        study
            .per_window
            .iter()
            .enumerate()
            .map(|(i, &count)| (((i + 1) * window) as f64, count as f64))
            .collect(),
    )];
    print_table(
        &format!("Fig 14: prominent facts per {window}-tuple window, NBA, d̂=3 m̂=3, τ={tau}"),
        "tuples seen",
        "prominent facts in window",
        &series,
    );
    print_series_csv("fig14", &series);

    println!("\nExample prominent facts (cf. the Section VII bullet list):");
    for example in &study.examples {
        println!("  • {example}");
    }
}
