//! Runs every figure binary in sequence with quick default parameters.
//!
//! Usage: `run_all [--quick]` — `--quick` shrinks stream lengths further so
//! the whole suite finishes in a couple of minutes.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("bin dir")
        .to_path_buf();

    let runs: Vec<(&str, Vec<String>)> = vec![
        (
            "fig07_baselines",
            if quick {
                vec!["--n", "2000", "--sweep-n", "800"]
            } else {
                vec![]
            }
            .into_iter()
            .map(String::from)
            .collect(),
        ),
        (
            "fig08_sharing",
            if quick {
                vec!["--n", "2000", "--sweep-n", "800"]
            } else {
                vec![]
            }
            .into_iter()
            .map(String::from)
            .collect(),
        ),
        (
            "fig09_weather",
            if quick { vec!["--n", "3000"] } else { vec![] }
                .into_iter()
                .map(String::from)
                .collect(),
        ),
        (
            "fig10_memory",
            if quick { vec!["--n", "2000"] } else { vec![] }
                .into_iter()
                .map(String::from)
                .collect(),
        ),
        (
            "fig11_work",
            if quick { vec!["--n", "2000"] } else { vec![] }
                .into_iter()
                .map(String::from)
                .collect(),
        ),
        (
            "fig12_filebased",
            if quick {
                vec!["--n", "500", "--sweep-n", "300"]
            } else {
                vec![]
            }
            .into_iter()
            .map(String::from)
            .collect(),
        ),
        (
            "fig13_filebased_weather",
            if quick { vec!["--n", "600"] } else { vec![] }
                .into_iter()
                .map(String::from)
                .collect(),
        ),
        (
            "fig14_prominent_rate",
            if quick {
                vec!["--n", "4000", "--tau", "20"]
            } else {
                vec![]
            }
            .into_iter()
            .map(String::from)
            .collect(),
        ),
        (
            "fig15_distribution",
            if quick { vec!["--n", "4000"] } else { vec![] }
                .into_iter()
                .map(String::from)
                .collect(),
        ),
        (
            "case_study",
            if quick {
                vec!["--n", "4000", "--tau", "30"]
            } else {
                vec![]
            }
            .into_iter()
            .map(String::from)
            .collect(),
        ),
    ];

    for (bin, extra) in runs {
        println!("\n################ {bin} ################");
        let status = Command::new(exe_dir.join(bin))
            .args(&extra)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
        }
    }
}
