//! Ingest-throughput experiment: per-row vs batched ingest at NBA scale,
//! layer by layer (`Table`, `ContextCounter`, `FactMonitor`), with
//! machine-readable results written to `BENCH_ingest.json` (schema documented
//! in `crates/sitfact-bench/README.md`).
//!
//! Usage: `fig_ingest [--n 20000] [--monitor-n 4000] [--batch 8192]
//! [--reps 5] [--seed S] [--out BENCH_ingest.json]`
//!
//! The batched monitor leg is additionally checked against the sequential
//! leg's reports (identical output is part of the batch path's contract), so
//! a CI smoke run of this binary doubles as an end-to-end equivalence test.

use sitfact_bench::params::arg_value;
use sitfact_bench::{generate_rows, DatasetKind, ExperimentParams};
use sitfact_core::{DiscoveryConfig, Schema, Tuple};
use sitfact_prominence::{FactMonitor, MonitorConfig, StreamMonitor};
use sitfact_storage::{ContextCounter, Table};
use std::time::Instant;

/// One measured leg: the best-of-`reps` wall-clock seconds and the derived
/// throughput.
struct Leg {
    layer: &'static str,
    mode: &'static str,
    rows: usize,
    seconds: f64,
    rows_per_sec: f64,
}

/// Runs `run` `reps` times and keeps the best wall-clock time; the closure
/// returns a checksum so the work cannot be optimised away.
fn measure(reps: usize, mut run: impl FnMut() -> usize) -> f64 {
    let mut best = f64::INFINITY;
    let mut checksum = 0usize;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        checksum = checksum.wrapping_add(run());
        best = best.min(start.elapsed().as_secs_f64());
    }
    std::hint::black_box(checksum);
    best
}

fn leg(
    layer: &'static str,
    mode: &'static str,
    rows: usize,
    reps: usize,
    run: impl FnMut() -> usize,
) -> Leg {
    let seconds = measure(reps, run);
    Leg {
        layer,
        mode,
        rows,
        seconds,
        rows_per_sec: rows as f64 / seconds.max(1e-12),
    }
}

fn encode(schema: &mut Schema, rows: &[sitfact_datagen::Row]) -> Vec<Tuple> {
    rows.iter()
        .map(|row| {
            let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
            let ids = schema.intern_dims(&dims).expect("row matches schema");
            Tuple::new(ids, row.measures.clone())
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_value(&args, "--n", 20_000);
    let monitor_n: usize = arg_value(&args, "--monitor-n", 4_000).min(n);
    let batch: usize = arg_value(&args, "--batch", 8_192).max(1);
    let reps: usize = arg_value(&args, "--reps", 5);
    let seed: u64 = arg_value(&args, "--seed", 42);
    let out: String = arg_value(&args, "--out", "BENCH_ingest.json".to_string());

    let params = ExperimentParams {
        d: 5,
        m: 4,
        d_hat: 3,
        m_hat: 3,
        n,
        sample_points: 1,
        seed,
    };
    let (mut schema, rows) = generate_rows(DatasetKind::Nba, &params);
    let tuples = encode(&mut schema, &rows);
    eprintln!("fig_ingest: n={n}, monitor_n={monitor_n}, batch={batch}, reps={reps}");

    let mut legs: Vec<Leg> = Vec::new();

    // --- Table layer -----------------------------------------------------
    legs.push(leg("table", "per_row", n, reps, || {
        let mut table = Table::with_capacity(schema.clone(), tuples.len());
        for t in &tuples {
            table.append(t.clone()).unwrap();
        }
        table.len()
    }));
    legs.push(leg("table", "batched", n, reps, || {
        let mut table = Table::with_capacity(schema.clone(), tuples.len());
        for window in tuples.chunks(batch) {
            table.append_batch_slice(window).unwrap();
        }
        table.len()
    }));

    // --- ContextCounter layer --------------------------------------------
    let n_dims = schema.num_dimensions();
    legs.push(leg("counter", "per_row", n, reps, || {
        let mut counter = ContextCounter::new(n_dims, params.d_hat);
        for t in &tuples {
            counter.observe(t);
        }
        counter.tracked_constraints()
    }));
    legs.push(leg("counter", "batched", n, reps, || {
        let mut counter = ContextCounter::new(n_dims, params.d_hat);
        counter.observe_batch(tuples.iter());
        counter.tracked_constraints()
    }));

    // --- FactMonitor layer (smaller window: discovery dominates) ---------
    let monitor_tuples = &tuples[..monitor_n];
    let discovery = DiscoveryConfig::capped(params.d_hat, params.m_hat);
    let config = MonitorConfig::default()
        .with_discovery(discovery)
        .with_tau(100.0)
        .with_keep_top(8);
    let monitor_reps = reps.clamp(1, 3);
    // Equivalence guard: batched reports must equal the sequential ones.
    {
        let algo = sitfact_algos::STopDown::new(&schema, discovery);
        let mut sequential = FactMonitor::new(schema.clone(), algo, config);
        let expected = sequential.ingest_all(monitor_tuples.to_vec()).unwrap();
        let algo = sitfact_algos::STopDown::new(&schema, discovery);
        let mut batched = FactMonitor::new(schema.clone(), algo, config);
        let mut actual = Vec::new();
        for window in monitor_tuples.chunks(batch) {
            actual.extend(batched.ingest_batch_slice(window).unwrap());
        }
        assert_eq!(actual, expected, "batched ingest drifted from sequential");
        eprintln!("  equivalence check passed ({} reports)", expected.len());
    }
    legs.push(leg("monitor", "per_row", monitor_n, monitor_reps, || {
        let algo = sitfact_algos::STopDown::new(&schema, discovery);
        let mut monitor = FactMonitor::new(schema.clone(), algo, config);
        monitor.ingest_all(monitor_tuples.to_vec()).unwrap().len()
    }));
    legs.push(leg("monitor", "batched", monitor_n, monitor_reps, || {
        let algo = sitfact_algos::STopDown::new(&schema, discovery);
        let mut monitor = FactMonitor::new(schema.clone(), algo, config);
        let mut count = 0;
        for window in monitor_tuples.chunks(batch) {
            count += monitor.ingest_batch_slice(window).unwrap().len();
        }
        count
    }));

    // --- Report ----------------------------------------------------------
    println!("\n=== Ingest throughput: per-row vs batched (NBA, d=5 m=4) ===");
    println!(
        "{:>10} {:>10} {:>10} {:>12} {:>14}",
        "layer", "mode", "rows", "seconds", "rows/sec"
    );
    for l in &legs {
        println!(
            "{:>10} {:>10} {:>10} {:>12.6} {:>14.0}",
            l.layer, l.mode, l.rows, l.seconds, l.rows_per_sec
        );
        println!(
            "csv,fig_ingest,{}_{},{},{}",
            l.layer, l.mode, l.rows, l.rows_per_sec
        );
    }
    let speedup = |layer: &str| -> f64 {
        let per_row = legs
            .iter()
            .find(|l| l.layer == layer && l.mode == "per_row")
            .map_or(0.0, |l| l.seconds);
        let batched = legs
            .iter()
            .find(|l| l.layer == layer && l.mode == "batched")
            .map_or(1.0, |l| l.seconds);
        per_row / batched.max(1e-12)
    };
    let (table_x, counter_x, monitor_x) =
        (speedup("table"), speedup("counter"), speedup("monitor"));
    println!("speedup: table {table_x:.2}x, counter {counter_x:.2}x, monitor {monitor_x:.2}x");

    // --- Machine-readable results (schema: crates/sitfact-bench/README.md)
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"ingest_throughput\",\n");
    json.push_str(&format!(
        "  \"params\": {{\"n\": {n}, \"monitor_n\": {monitor_n}, \"batch\": {batch}, \"reps\": {reps}, \"seed\": {seed}, \"dataset\": \"nba\", \"d\": {}, \"m\": {}, \"d_hat\": {}, \"m_hat\": {}}},\n",
        params.d, params.m, params.d_hat, params.m_hat
    ));
    json.push_str("  \"legs\": [\n");
    for (i, l) in legs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"layer\": \"{}\", \"mode\": \"{}\", \"rows\": {}, \"seconds\": {:.6}, \"rows_per_sec\": {:.0}}}{}\n",
            l.layer,
            l.mode,
            l.rows,
            l.seconds,
            l.rows_per_sec,
            if i + 1 < legs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup\": {{\"table\": {table_x:.2}, \"counter\": {counter_x:.2}, \"monitor\": {monitor_x:.2}}}\n"
    ));
    json.push_str("}\n");
    std::fs::write(&out, json).expect("write results file");
    eprintln!("wrote {out}");
}
