//! `audit_storm` — randomized deep-audit smoke binary for the CI `analyze`
//! step.
//!
//! Hammers every audited structure with seeded random workloads and runs its
//! deep [`Audit`](sitfact_core::Audit) after every round: `Table` under mixed
//! `append`/`append_batch` sequences (including the sparse posting-list
//! fallback), `CompressedPostings` under push/extend/compact churn against a
//! plain-vector model, `KdTree` under random inserts, both `SkylineStore`
//! implementations under random insert/remove/read churn, and
//! `FactMonitor`/`ShardedMonitor` under windowed ingest. Any violation
//! prints its `explain()` and exits non-zero.
//!
//! The validators only exist under
//! `cfg(any(test, debug_assertions, feature = "deep-audit"))`, so a release
//! build without the feature gets a stub that says so and exits 0 —
//! `ci_steps.sh run analyze` runs the real storm via
//! `--release --features deep-audit`.
//!
//! Usage: `audit_storm [--seed N] [--rounds N]`

#[cfg(any(debug_assertions, feature = "deep-audit"))]
fn main() {
    storm::run();
}

#[cfg(not(any(debug_assertions, feature = "deep-audit")))]
fn main() {
    println!(
        "audit_storm: deep-audit validators are compiled out in this build; \
         rerun with --features deep-audit (or a debug build)"
    );
}

#[cfg(any(debug_assertions, feature = "deep-audit"))]
mod storm {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sitfact_algos::STopDown;
    use sitfact_bench::params::arg_value;
    use sitfact_core::{Audit, Constraint, Direction, Schema, SchemaBuilder, SubspaceMask, Tuple};
    use sitfact_prominence::{FactMonitor, MonitorConfig, ShardedMonitor, StreamMonitor};
    use sitfact_storage::{
        FileSkylineStore, KdTree, MemorySkylineStore, SkylineStore, StoredEntry, Table,
    };

    fn fail(what: &str, violation: sitfact_core::AuditViolation) -> ! {
        eprintln!("audit_storm: {what}: {}", violation.explain());
        std::process::exit(1);
    }

    fn schema(n_dims: usize) -> Schema {
        let mut builder = SchemaBuilder::new("storm");
        for d in 0..n_dims {
            builder = builder.dimension(format!("d{d}"));
        }
        builder
            .measure("m0", Direction::HigherIsBetter)
            .measure("m1", Direction::LowerIsBetter)
            .build()
            .expect("storm schema is valid")
    }

    fn random_tuple(rng: &mut StdRng, n_dims: usize) -> Tuple {
        let dims = (0..n_dims)
            .map(|_| {
                let v: u32 = rng.gen_range(0..1000);
                // Occasional huge ids force the sparse posting-list fallback.
                if v >= 995 {
                    v * 100_000
                } else {
                    v % 5
                }
            })
            .collect();
        let measures = vec![rng.gen_range(0..8) as f64, rng.gen_range(0..8) as f64];
        Tuple::new(dims, measures)
    }

    fn storm_table(rng: &mut StdRng, rounds: usize) {
        let mut table = Table::new(schema(3));
        for _ in 0..rounds {
            let window: Vec<Tuple> = (0..rng.gen_range(0..12))
                .map(|_| random_tuple(rng, 3))
                .collect();
            if rng.gen_range(0..2) == 0 {
                for t in window {
                    table.append(t).expect("schema-valid tuple appends");
                }
            } else {
                table
                    .append_batch(window)
                    .expect("schema-valid batch appends");
            }
            if let Err(v) = table.audit() {
                fail("Table", v);
            }
        }
    }

    fn storm_kdtree(rng: &mut StdRng, rounds: usize) {
        let directions = [Direction::HigherIsBetter, Direction::LowerIsBetter];
        let mut tree = KdTree::new(&directions);
        for round in 0..rounds {
            for i in 0..rng.gen_range(1..10) {
                let t = random_tuple(rng, 1);
                tree.insert((round * 16 + i) as sitfact_core::TupleId, &t);
            }
            if let Err(v) = tree.audit() {
                fail("KdTree", v);
            }
        }
    }

    fn random_cell(rng: &mut StdRng) -> (Constraint, SubspaceMask) {
        let values = (0..2)
            .map(|_| {
                if rng.gen_range(0..3) == 0 {
                    sitfact_core::UNBOUND
                } else {
                    rng.gen_range(0..3)
                }
            })
            .collect();
        let subspace = SubspaceMask((rng.gen_range(0..3) + 1) as u32);
        (Constraint::from_values(values), subspace)
    }

    fn storm_store(
        rng: &mut StdRng,
        rounds: usize,
        store: &mut (impl SkylineStore + Audit),
        what: &str,
    ) {
        let mut next_id: sitfact_core::TupleId = 0;
        let mut live: Vec<(Constraint, SubspaceMask, sitfact_core::TupleId)> = Vec::new();
        for _ in 0..rounds {
            for _ in 0..rng.gen_range(1..12) {
                let (constraint, subspace) = random_cell(rng);
                match rng.gen_range(0..4) {
                    // Insert a fresh entry most of the time.
                    0 | 1 => {
                        let measures = [rng.gen_range(0..8) as f64, rng.gen_range(0..8) as f64];
                        store.insert(&constraint, subspace, StoredEntry::new(next_id, &measures));
                        live.push((constraint, subspace, next_id));
                        next_id += 1;
                    }
                    // Remove a previously inserted entry.
                    2 => {
                        if !live.is_empty() {
                            let at = rng.gen_range(0..live.len() as u32) as usize;
                            let (c, s, id) = live.swap_remove(at);
                            assert!(store.remove(&c, s, id), "{what}: live entry removes");
                        }
                    }
                    // Read back a random cell (exercises caching paths).
                    _ => {
                        let _ = store.read(&constraint, subspace);
                    }
                }
            }
            store.flush();
            if let Err(v) = store.check() {
                fail(what, v);
            }
        }
    }

    /// Random push / extend_from_slice / compact churn against a plain
    /// `Vec<TupleId>` model: the compressed list must audit clean and decode
    /// to exactly the model after every round, from both `iter` and a
    /// seek-walking cursor.
    fn storm_postings(rng: &mut StdRng, rounds: usize) {
        let mut list = sitfact_storage::CompressedPostings::new();
        let mut model: Vec<sitfact_core::TupleId> = Vec::new();
        let mut next: sitfact_core::TupleId = 0;
        for _ in 0..rounds * 4 {
            match rng.gen_range(0..4) {
                0 | 1 => {
                    // Skewed gaps: mostly dense, occasionally a large jump.
                    next += if rng.gen_range(0..10) == 0 {
                        rng.gen_range(1..50_000)
                    } else {
                        rng.gen_range(1..4)
                    };
                    list.push(next);
                    model.push(next);
                }
                2 => {
                    let run: Vec<sitfact_core::TupleId> = (0..rng.gen_range(0..200))
                        .map(|_| {
                            next += rng.gen_range(1..9);
                            next
                        })
                        .collect();
                    list.extend_from_slice(&run);
                    model.extend_from_slice(&run);
                }
                _ => list.compact(),
            }
            if let Err(v) = list.audit() {
                fail("CompressedPostings", v);
            }
            assert!(
                list.iter().eq(model.iter().copied()),
                "CompressedPostings: decoded ids drifted from the model"
            );
            let mut cursor = list.cursor();
            for &id in model.iter().step_by(7) {
                assert_eq!(
                    cursor.seek(id),
                    Some(id),
                    "CompressedPostings: seek missed a stored id"
                );
            }
        }
    }

    fn storm_monitors(rng: &mut StdRng, rounds: usize) {
        let schema = schema(3);
        let config = MonitorConfig::default().with_tau(2.0).with_keep_top(4);
        let mut monitor = FactMonitor::new(
            schema.clone(),
            STopDown::new(&schema, config.discovery),
            config,
        );
        let mut sharded = ShardedMonitor::new(schema.clone(), 0, 3, config, STopDown::new)
            .expect("routing dim 0 of 3 is valid");
        for _ in 0..rounds {
            let window: Vec<Tuple> = (0..rng.gen_range(1..6))
                .map(|_| {
                    // Dense dimension values keep discovery fast.
                    let dims = (0..3).map(|_| rng.gen_range(0..4)).collect();
                    let measures = vec![rng.gen_range(0..6) as f64, rng.gen_range(0..6) as f64];
                    Tuple::new(dims, measures)
                })
                .collect();
            let reports = monitor
                .ingest_batch_slice(&window)
                .expect("schema-valid window ingests");
            for report in &reports {
                if let Err(v) = report.check() {
                    fail("ArrivalReport", v);
                }
            }
            sharded
                .ingest_batch_slice(&window)
                .expect("schema-valid window ingests");
            if let Err(v) = monitor.audit() {
                fail("FactMonitor", v);
            }
            if let Err(v) = sharded.audit() {
                fail("ShardedMonitor", v);
            }
        }
    }

    pub fn run() {
        let args: Vec<String> = std::env::args().collect();
        let seed: u64 = arg_value(&args, "--seed", 7);
        let rounds: usize = arg_value(&args, "--rounds", 12);
        let mut rng = StdRng::seed_from_u64(seed);

        storm_table(&mut rng, rounds);
        storm_postings(&mut rng, rounds);
        storm_kdtree(&mut rng, rounds);
        storm_store(
            &mut rng,
            rounds,
            &mut MemorySkylineStore::new(),
            "MemorySkylineStore",
        );
        let dir = std::env::temp_dir().join(format!("sitfact_audit_storm_{seed}"));
        let _ = std::fs::remove_dir_all(&dir);
        let mut file_store = FileSkylineStore::new(&dir).expect("temp dir for the file store");
        storm_store(&mut rng, rounds, &mut file_store, "FileSkylineStore");
        drop(file_store);
        let _ = std::fs::remove_dir_all(&dir);
        storm_monitors(&mut rng, rounds);

        println!("audit_storm: all deep audits passed (seed {seed}, {rounds} rounds)");
    }
}
