//! The paper's experiment parameters (Section VI-A), with laptop-scale
//! defaults and a `--scale` / CLI override mechanism.

/// Parameters of one experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentParams {
    /// Number of dimension attributes `d` (Table V).
    pub d: usize,
    /// Number of measure attributes `m` (Table VI).
    pub m: usize,
    /// Maximum bound dimension attributes `d̂`.
    pub d_hat: usize,
    /// Maximum measure-subspace dimensionality `m̂`.
    pub m_hat: usize,
    /// Stream length `n`.
    pub n: usize,
    /// Number of measurement points along the stream.
    pub sample_points: usize,
    /// RNG seed for the synthetic dataset.
    pub seed: u64,
}

impl ExperimentParams {
    /// The paper's default configuration (`d = 5`, `m = 7`, `d̂ = 4`,
    /// `m̂ = m`) at a laptop-scale default stream length.
    pub fn paper_default(n: usize) -> Self {
        ExperimentParams {
            d: 5,
            m: 7,
            d_hat: 4,
            m_hat: 7,
            n,
            sample_points: 10,
            seed: 20_140_331,
        }
    }

    /// The case-study configuration of Section VII (`d̂ = 3`, `m̂ = 3`).
    pub fn case_study(n: usize) -> Self {
        ExperimentParams {
            d: 5,
            m: 7,
            d_hat: 3,
            m_hat: 3,
            n,
            sample_points: 10,
            seed: 20_140_331,
        }
    }

    /// Returns a copy with a different number of dimension attributes,
    /// clamping `d̂` as the paper does (`d̂ = 4`).
    pub fn with_d(mut self, d: usize) -> Self {
        self.d = d;
        self.d_hat = self.d_hat.min(d);
        self
    }

    /// Returns a copy with a different number of measure attributes and
    /// `m̂ = m` (the paper's setting).
    pub fn with_m(mut self, m: usize) -> Self {
        self.m = m;
        self.m_hat = m;
        self
    }

    /// Returns a copy with a different stream length.
    pub fn with_n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }
}

/// The `d` values swept in Figs. 7b/8b/12b.
pub const D_SWEEP: [usize; 4] = [4, 5, 6, 7];

/// The `m` values swept in Figs. 7c/8c/12c.
pub const M_SWEEP: [usize; 4] = [4, 5, 6, 7];

/// Parses `--n`, `--d`, `--m`, `--tau`, `--seed` style overrides from command
/// line arguments (`--flag value`), returning the overridden value or the
/// default.
pub fn arg_value<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let p = ExperimentParams::paper_default(10_000);
        assert_eq!((p.d, p.m, p.d_hat, p.m_hat), (5, 7, 4, 7));
        let c = ExperimentParams::case_study(10_000);
        assert_eq!((c.d_hat, c.m_hat), (3, 3));
    }

    #[test]
    fn with_setters_adjust_caps() {
        let p = ExperimentParams::paper_default(1_000)
            .with_d(4)
            .with_m(5)
            .with_n(99);
        assert_eq!(p.d, 4);
        assert_eq!(p.d_hat, 4);
        assert_eq!(p.m, 5);
        assert_eq!(p.m_hat, 5);
        assert_eq!(p.n, 99);
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--n", "500", "--tau", "12.5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--n", 10usize), 500);
        assert_eq!(arg_value(&args, "--tau", 1.0f64), 12.5);
        assert_eq!(arg_value(&args, "--missing", 7usize), 7);
        assert_eq!(arg_value(&args, "--tau", 0usize), 0); // unparsable as usize -> default
    }
}
