//! Criterion micro-benchmarks of the substrates: constraint-lattice
//! enumeration, the Proposition-4 partition, k-d-tree dominator queries and
//! skyline-store cell operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use sitfact_core::{
    BoundMask, Constraint, ConstraintLattice, Direction, DominancePartition, SubspaceMask, Tuple,
};
use sitfact_storage::{KdTree, MemorySkylineStore, SkylineStore, StoredEntry};

/// Shared quick-run settings so `cargo bench` stays snappy on small machines.
fn quick(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
}

fn bench_lattice(c: &mut Criterion) {
    let mut group = c.benchmark_group("lattice_enumeration");
    quick(&mut group);
    for d in [5usize, 7, 8] {
        let lattice = ConstraintLattice::new(d, 4);
        group.bench_with_input(BenchmarkId::new("top_down", d), &lattice, |b, l| {
            b.iter(|| l.enumerate_top_down().len())
        });
        group.bench_with_input(BenchmarkId::new("algorithm1", d), &lattice, |b, l| {
            b.iter(|| l.enumerate_algorithm1().len())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("masks");
    quick(&mut group);
    group.bench_function("agreement_submask_pruning", |b| {
        let t1 = Tuple::new(vec![1, 2, 3, 4, 5, 6, 7], vec![1.0]);
        let t2 = Tuple::new(vec![1, 9, 3, 9, 5, 9, 7], vec![1.0]);
        b.iter(|| {
            let agreement = BoundMask::agreement(&t1, &t2);
            agreement.submasks().len()
        })
    });
    group.finish();
}

fn bench_dominance(c: &mut Criterion) {
    let dirs = vec![Direction::HigherIsBetter; 7];
    let mut rng = StdRng::seed_from_u64(3);
    let tuples: Vec<Tuple> = (0..256)
        .map(|_| {
            Tuple::new(
                vec![0],
                (0..7).map(|_| rng.gen_range(0..50) as f64).collect(),
            )
        })
        .collect();
    let mut group = c.benchmark_group("dominance");
    quick(&mut group);
    group.bench_function("dominance_partition_7_measures", |b| {
        b.iter(|| {
            let mut dominated = 0usize;
            for pair in tuples.windows(2) {
                let p = DominancePartition::compute(&pair[0], &pair[1], &dirs);
                if p.left_dominated_in(SubspaceMask::full(7)) {
                    dominated += 1;
                }
            }
            dominated
        })
    });
    group.finish();
}

fn bench_kdtree(c: &mut Criterion) {
    let dirs = vec![Direction::HigherIsBetter; 7];
    let mut rng = StdRng::seed_from_u64(5);
    let mut tree = KdTree::new(&dirs);
    for i in 0..20_000u32 {
        let t = Tuple::new(
            vec![0],
            (0..7).map(|_| rng.gen_range(0..60) as f64).collect(),
        );
        tree.insert(i, &t);
    }
    let probe = Tuple::new(vec![0], vec![45.0; 7]);
    let mut group = c.benchmark_group("kdtree");
    quick(&mut group);
    group.bench_function("kdtree_dominator_query_20k_points", |b| {
        b.iter(|| {
            tree.candidates_at_least(&probe, SubspaceMask::full(7))
                .len()
        })
    });
    group.finish();
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    quick(&mut group);
    group.bench_function("memory_store_insert_read_remove", |b| {
        b.iter(|| {
            let mut store = MemorySkylineStore::new();
            let subspace = SubspaceMask::full(4);
            for i in 0..200u32 {
                let constraint = Constraint::from_values(vec![i % 8, u32::MAX, i % 3]);
                store.insert(
                    &constraint,
                    subspace,
                    StoredEntry::new(i, &[1.0, 2.0, 3.0, 4.0]),
                );
            }
            let mut total = 0usize;
            for i in 0..200u32 {
                let constraint = Constraint::from_values(vec![i % 8, u32::MAX, i % 3]);
                total += store.read(&constraint, subspace).len();
                store.remove(&constraint, subspace, i);
            }
            total
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lattice,
    bench_dominance,
    bench_kdtree,
    bench_store
);
criterion_main!(benches);
