//! Criterion micro-benchmark of context retrieval: the naive predicate scan
//! (`Table::context_scan`) against the inverted posting-list intersection
//! (`Table::context`), on the synthetic NBA workload.
//!
//! The indexed path is what every `table.context(...)` call in the discovery
//! algorithms now takes; the scan leg is kept as the before/after baseline so
//! a regression in the index shows up as the two legs converging.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sitfact_bench::{generate_rows, DatasetKind, ExperimentParams};
use sitfact_core::{Constraint, Tuple};
use sitfact_storage::Table;

const ROWS: usize = 20_000;

/// NBA-scale table plus a mix of constraints drawn from real rows: one bound
/// attribute (player), two bound attributes (player ∧ team) and the top
/// constraint.
fn fixture() -> (Table, Vec<(&'static str, Constraint)>) {
    let params = ExperimentParams {
        d: 5,
        m: 4,
        d_hat: 3,
        m_hat: 3,
        n: ROWS,
        sample_points: 1,
        seed: 42,
    };
    let (schema, rows) = generate_rows(DatasetKind::Nba, &params);
    let mut table = Table::with_capacity(schema, ROWS);
    for row in &rows {
        let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
        let ids = table.schema_mut().intern_dims(&dims).unwrap();
        table.append(Tuple::new(ids, row.measures.clone())).unwrap();
    }
    let probe = table.tuple((ROWS / 2) as u32);
    let n_dims = probe.num_dims();
    let one = Constraint::from_tuple_mask(probe, sitfact_core::BoundMask::from_indices([0]));
    let two = Constraint::from_tuple_mask(probe, sitfact_core::BoundMask::from_indices([0, 3]));
    let constraints = vec![
        ("player", one),
        ("player_and_team", two),
        ("top", Constraint::top(n_dims)),
    ];
    (table, constraints)
}

fn bench_context(c: &mut Criterion) {
    let (table, constraints) = fixture();
    let mut group = c.benchmark_group("context_retrieval");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, constraint) in &constraints {
        group.bench_with_input(
            BenchmarkId::new("context_scan", name),
            constraint,
            |b, c| b.iter(|| black_box(table.context_scan(c).count())),
        );
        group.bench_with_input(
            BenchmarkId::new("context_indexed", name),
            constraint,
            |b, c| b.iter(|| black_box(table.context(c).count())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_context);
criterion_main!(benches);
