//! Criterion micro-benchmarks: per-tuple discovery latency of each algorithm
//! against a warm history, on the synthetic NBA workload (d=5, m=4, d̂=4).
//!
//! These complement the figure binaries: Criterion gives statistically robust
//! per-call timings for the steady state, while the binaries chart growth
//! along the stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sitfact_algos::{
    AlgorithmKind, BaselineIdx, BaselineSeq, BottomUp, CCsc, Discovery, SBottomUp, STopDown,
    TopDown,
};
use sitfact_bench::{build_algorithm, generate_rows, DatasetKind, ExperimentParams};
use sitfact_core::{DiscoveryConfig, Schema, Tuple};
use sitfact_datagen::Row;
use sitfact_storage::Table;

const HISTORY: usize = 2_000;
const PROBES: usize = 32;

struct Fixture {
    schema: Schema,
    table: Table,
    probes: Vec<Tuple>,
    discovery: DiscoveryConfig,
}

fn fixture() -> Fixture {
    let params = ExperimentParams {
        d: 5,
        m: 4,
        d_hat: 4,
        m_hat: 4,
        n: HISTORY + PROBES,
        sample_points: 1,
        seed: 7,
    };
    let (schema, rows) = generate_rows(DatasetKind::Nba, &params);
    let mut table = Table::with_capacity(schema.clone(), HISTORY);
    let encode = |table: &mut Table, row: &Row| {
        let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
        let ids = table.schema_mut().intern_dims(&dims).unwrap();
        Tuple::new(ids, row.measures.clone())
    };
    for row in &rows[..HISTORY] {
        let t = encode(&mut table, row);
        table.append(t).unwrap();
    }
    let probes = rows[HISTORY..]
        .iter()
        .map(|row| encode(&mut table, row))
        .collect();
    Fixture {
        schema,
        table,
        probes,
        discovery: DiscoveryConfig::unrestricted(),
    }
}

/// Warms an incremental algorithm by replaying the history through it.
fn warm(algo: &mut dyn Discovery, table: &Table) {
    let mut warm_table = Table::new(table.schema().clone());
    for (_, t) in table.iter() {
        let t = t.to_tuple();
        let _ = algo.discover(&warm_table, &t);
        warm_table.append(t).unwrap();
    }
}

fn bench_discover(c: &mut Criterion) {
    let fixture = fixture();
    let mut group = c.benchmark_group("discover_per_tuple");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    let kinds = [
        AlgorithmKind::BaselineSeq,
        AlgorithmKind::BaselineIdx,
        AlgorithmKind::CCsc,
        AlgorithmKind::BottomUp,
        AlgorithmKind::TopDown,
        AlgorithmKind::SBottomUp,
        AlgorithmKind::STopDown,
    ];
    for kind in kinds {
        let mut algo = build_algorithm(kind, &fixture.schema, fixture.discovery, None);
        if kind.is_incremental() {
            warm(algo.as_mut(), &fixture.table);
        }
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let mut facts = 0usize;
                for probe in &fixture.probes {
                    facts += algo.discover(&fixture.table, probe).len();
                }
                facts
            })
        });
    }
    group.finish();
}

fn bench_construction(c: &mut Criterion) {
    let fixture = fixture();
    let schema = &fixture.schema;
    let config = fixture.discovery;
    let mut c = c.benchmark_group("construction");
    c.warm_up_time(std::time::Duration::from_millis(500));
    c.measurement_time(std::time::Duration::from_secs(2));
    c.bench_function("construct_all_algorithms", |b| {
        b.iter(|| {
            let algos: Vec<Box<dyn Discovery>> = vec![
                Box::new(BaselineSeq::new(schema, config)),
                Box::new(BaselineIdx::new(schema, config)),
                Box::new(CCsc::new(schema, config)),
                Box::new(BottomUp::new(schema, config)),
                Box::new(TopDown::new(schema, config)),
                Box::new(SBottomUp::new(schema, config)),
                Box::new(STopDown::new(schema, config)),
            ];
            algos.len()
        })
    });
    c.finish();
}

criterion_group!(benches, bench_discover, bench_construction);
criterion_main!(benches);
