//! Criterion micro-benchmark of sharded window ingest: a
//! [`ShardedMonitor`] routed by team at 1/2/4 shards against the unsharded
//! [`FactMonitor`] running the same anchored constraint space, for both the
//! flagship incremental algorithm (`STopDown`) and the scan baseline
//! (`BaselineSeq`, whose per-arrival cost tracks table size and therefore
//! shows the partitioning effect even on a single core).
//!
//! The figure binary `fig_shard` runs the same comparison end-to-end (plus
//! the sharded ≡ unsharded equivalence assertion) and emits machine-readable
//! results to `BENCH_shard.json`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sitfact_bench::{generate_rows, DatasetKind, ExperimentParams};
use sitfact_core::{DiscoveryConfig, Schema, Tuple};
use sitfact_prominence::{FactMonitor, MonitorConfig, ShardedMonitor, StreamMonitor};

const ROWS: usize = 800;
const BATCH: usize = 256;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// NBA-scale schema plus the window pre-encoded as tuples (interning is
/// common to both paths and stays outside the timed region).
fn fixture(n: usize) -> (Schema, Vec<Tuple>, usize) {
    let params = ExperimentParams {
        d: 5,
        m: 4,
        d_hat: 3,
        m_hat: 3,
        n,
        sample_points: 1,
        seed: 42,
    };
    let (mut schema, rows) = generate_rows(DatasetKind::Nba, &params);
    let tuples = rows
        .iter()
        .map(|row| {
            let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
            let ids = schema.intern_dims(&dims).unwrap();
            Tuple::new(ids, row.measures.clone())
        })
        .collect();
    let routing_dim = schema.dimension_index("team").unwrap();
    (schema, tuples, routing_dim)
}

fn bench_shards<A, F>(c: &mut Criterion, group_name: &str, make: F)
where
    A: sitfact_algos::Discovery + Send + 'static,
    F: Fn(&Schema, DiscoveryConfig) -> A + Copy,
{
    let (schema, tuples, routing_dim) = fixture(ROWS);
    let discovery = DiscoveryConfig::capped(3, 3).with_anchor(routing_dim);
    let config = MonitorConfig::default()
        .with_discovery(discovery)
        .with_tau(100.0);

    let mut group = c.benchmark_group(group_name);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_with_input(BenchmarkId::new("unsharded", ROWS), &tuples, |b, tuples| {
        b.iter(|| {
            let mut monitor = FactMonitor::new(schema.clone(), make(&schema, discovery), config);
            let mut n = 0usize;
            for window in tuples.chunks(BATCH) {
                n += monitor.ingest_batch_slice(window).unwrap().len();
            }
            black_box(n)
        })
    });
    for shards in SHARD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new(format!("sharded_{shards}"), ROWS),
            &tuples,
            |b, tuples| {
                b.iter(|| {
                    let mut monitor =
                        ShardedMonitor::new(schema.clone(), routing_dim, shards, config, make)
                            .unwrap();
                    let mut n = 0usize;
                    for window in tuples.chunks(BATCH) {
                        n += monitor.ingest_batch_slice(window).unwrap().len();
                    }
                    black_box(n)
                })
            },
        );
    }
    group.finish();
}

fn bench_shard_scaling(c: &mut Criterion) {
    bench_shards(c, "shard_scaling_stopdown", sitfact_algos::STopDown::new);
    bench_shards(
        c,
        "shard_scaling_baseline_seq",
        sitfact_algos::BaselineSeq::new,
    );
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
