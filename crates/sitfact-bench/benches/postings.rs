//! Criterion micro-benchmark of the compressed posting-list primitives: block
//! packing (`extend_from_slice` + `compact`), full-list decode through a cursor,
//! and two-list intersection — galloping cursors over compressed blocks vs
//! the PR 2 merge over raw `Vec<TupleId>` slices.
//!
//! The lists mimic the two shapes the context index actually holds: a dense
//! head-value list (every 3rd id — small deltas, narrow blocks) and a sparse
//! driver list (every 97th id — the shortest-list side of a gallop).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sitfact_core::TupleId;
use sitfact_storage::CompressedPostings;

const UNIVERSE: TupleId = 200_000;

fn strided(stride: TupleId) -> Vec<TupleId> {
    (0..UNIVERSE).step_by(stride as usize).collect()
}

fn compress(ids: &[TupleId]) -> CompressedPostings {
    let mut list = CompressedPostings::with_capacity(ids.len());
    list.extend_from_slice(ids);
    list.compact();
    list
}

/// The PR 2 baseline: shortest raw slice drives, the other catches up by
/// binary search.
fn merge_intersect(short: &[TupleId], long: &[TupleId]) -> u64 {
    let mut rest = long;
    let mut hits = 0u64;
    for &candidate in short {
        let skip = rest.partition_point(|&id| id < candidate);
        rest = &rest[skip..];
        match rest.first() {
            Some(&id) if id == candidate => hits += 1,
            Some(_) => {}
            None => break,
        }
    }
    hits
}

fn gallop_intersect(short: &CompressedPostings, long: &CompressedPostings) -> u64 {
    let driver = short.cursor();
    let mut other = long.cursor();
    let mut hits = 0u64;
    for candidate in driver {
        match other.seek(candidate) {
            Some(id) if id == candidate => hits += 1,
            Some(_) => {}
            None => break,
        }
    }
    hits
}

fn bench_postings(c: &mut Criterion) {
    let dense_ids = strided(3);
    let sparse_ids = strided(97);
    let dense = compress(&dense_ids);
    let sparse = compress(&sparse_ids);
    assert_eq!(
        merge_intersect(&sparse_ids, &dense_ids),
        gallop_intersect(&sparse, &dense),
        "intersection legs disagree"
    );

    let mut group = c.benchmark_group("postings");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_with_input(
        BenchmarkId::new("pack", dense_ids.len()),
        &dense_ids,
        |b, ids| b.iter(|| black_box(compress(ids).approx_heap_bytes())),
    );
    group.bench_with_input(
        BenchmarkId::new("decode", dense.len()),
        &dense,
        |b, list| b.iter(|| black_box(list.iter().map(u64::from).sum::<u64>())),
    );
    group.bench_with_input(
        BenchmarkId::new("intersect_merge", sparse_ids.len()),
        &(&sparse_ids, &dense_ids),
        |b, (s, d)| b.iter(|| black_box(merge_intersect(s, d))),
    );
    group.bench_with_input(
        BenchmarkId::new("intersect_gallop", sparse.len()),
        &(&sparse, &dense),
        |b, (s, d)| b.iter(|| black_box(gallop_intersect(s, d))),
    );
    group.finish();
}

criterion_group!(benches, bench_postings);
criterion_main!(benches);
