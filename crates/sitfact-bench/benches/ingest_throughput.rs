//! Criterion micro-benchmark of the batched ingest fast path against the
//! per-row loop, layer by layer, on the synthetic NBA workload:
//!
//! * `table_*` — [`Table::append`] loop vs [`Table::append_batch`] on a
//!   20k-row window (the `table_clone_only` leg isolates the cost of
//!   materialising one owned tuple per row, which the per-row API requires
//!   and the batch API structurally avoids);
//! * `counter_*` — [`ContextCounter::observe`] loop vs
//!   [`ContextCounter::observe_batch`];
//! * `monitor_*` — a [`FactMonitor`] ingesting a smaller window per-row vs
//!   through [`FactMonitor::ingest_batch`] (discovery dominates here, so the
//!   gap is narrower than at the table layer).
//!
//! The figure binary `fig_ingest` runs the same comparison end-to-end and
//! emits machine-readable results to `BENCH_ingest.json`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sitfact_bench::{generate_rows, DatasetKind, ExperimentParams};
use sitfact_core::{DiscoveryConfig, Schema, Tuple};
use sitfact_prominence::{FactMonitor, MonitorConfig, StreamMonitor};
use sitfact_storage::{ContextCounter, Table};

const ROWS: usize = 20_000;
const MONITOR_ROWS: usize = 800;
const BATCH: usize = 8_192;

/// NBA-scale schema plus the window pre-encoded as tuples (interning is
/// common to both ingest paths and stays outside the timed region).
fn fixture(n: usize) -> (Schema, Vec<Tuple>) {
    let params = ExperimentParams {
        d: 5,
        m: 4,
        d_hat: 3,
        m_hat: 3,
        n,
        sample_points: 1,
        seed: 42,
    };
    let (mut schema, rows) = generate_rows(DatasetKind::Nba, &params);
    let tuples = rows
        .iter()
        .map(|row| {
            let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
            let ids = schema.intern_dims(&dims).unwrap();
            Tuple::new(ids, row.measures.clone())
        })
        .collect();
    (schema, tuples)
}

fn bench_ingest(c: &mut Criterion) {
    let (schema, tuples) = fixture(ROWS);
    let mut group = c.benchmark_group("ingest_throughput");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_with_input(
        BenchmarkId::new("table_per_row", ROWS),
        &tuples,
        |b, tuples| {
            b.iter(|| {
                let mut table = Table::with_capacity(schema.clone(), tuples.len());
                for t in tuples {
                    table.append(t.clone()).unwrap();
                }
                black_box(table.len())
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("table_batched", ROWS),
        &tuples,
        |b, tuples| {
            b.iter(|| {
                let mut table = Table::with_capacity(schema.clone(), tuples.len());
                for window in tuples.chunks(BATCH) {
                    table.append_batch_slice(window).unwrap();
                }
                black_box(table.len())
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("table_clone_only", ROWS),
        &tuples,
        |b, tuples| {
            b.iter(|| {
                let mut n = 0usize;
                for t in tuples {
                    n += black_box(t.clone()).num_dims();
                }
                black_box(n)
            })
        },
    );

    let n_dims = schema.num_dimensions();
    group.bench_with_input(
        BenchmarkId::new("counter_per_row", ROWS),
        &tuples,
        |b, tuples| {
            b.iter(|| {
                let mut counter = ContextCounter::new(n_dims, 3);
                for t in tuples {
                    counter.observe(t);
                }
                black_box(counter.tracked_constraints())
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("counter_batched", ROWS),
        &tuples,
        |b, tuples| {
            b.iter(|| {
                let mut counter = ContextCounter::new(n_dims, 3);
                counter.observe_batch(tuples.iter());
                black_box(counter.tracked_constraints())
            })
        },
    );
    group.finish();

    let (schema, tuples) = fixture(MONITOR_ROWS);
    let discovery = DiscoveryConfig::capped(3, 3);
    let config = MonitorConfig::default()
        .with_discovery(discovery)
        .with_tau(100.0)
        .with_keep_top(8);
    let mut group = c.benchmark_group("ingest_throughput_monitor");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_with_input(
        BenchmarkId::new("monitor_per_row", MONITOR_ROWS),
        &tuples,
        |b, tuples| {
            b.iter(|| {
                let algo = sitfact_algos::STopDown::new(&schema, discovery);
                let mut monitor = FactMonitor::new(schema.clone(), algo, config);
                let reports = monitor.ingest_all(tuples.clone()).unwrap();
                black_box(reports.len())
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("monitor_batched", MONITOR_ROWS),
        &tuples,
        |b, tuples| {
            b.iter(|| {
                let algo = sitfact_algos::STopDown::new(&schema, discovery);
                let mut monitor = FactMonitor::new(schema.clone(), algo, config);
                let mut n = 0usize;
                for window in tuples.chunks(BATCH) {
                    n += monitor.ingest_batch_slice(window).unwrap().len();
                }
                black_box(n)
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
