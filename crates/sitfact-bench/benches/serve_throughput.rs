//! Criterion micro-benchmark of the TCP service front-end against the
//! in-process monitor on the same synthetic NBA stream: what does crossing
//! the framed loopback socket cost, per arrival and per batched window?
//!
//! Four legs, all starting from the same raw string rows (interning happens
//! inside the timed region on both sides, mirroring what a news feed pays):
//!
//! * `in_process_per_row` / `in_process_batched` — a fresh [`FactMonitor`]
//!   fed directly through the `StreamMonitor` trait;
//! * `served_per_row` / `served_batched` — the same monitor config behind a
//!   fresh [`FactServer`] on an ephemeral loopback port, fed through the
//!   blocking [`Client`] (`INGEST` vs `INGEST_BATCH` verbs). Server
//!   start-up/shutdown is inside the loop, so treat the numbers as the cost
//!   of a short-lived session; the steady-state gap is per-row vs batched.
//! * `served_batched_owned` / `served_batched_mutex` — the same batched
//!   session against each tenant engine explicitly (the default served legs
//!   run the owned engine), streaming into a named tenant via `OPEN`/`USE`,
//!   so the verb overhead and both dispatch paths stay on the scoreboard.
//!   The deeper contrast (snapshot reads vs mutex-blocked `TOPK`) is the
//!   `fig_serve` experiment's job.
//!
//! Headline numbers are recorded in `crates/sitfact-bench/README.md`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sitfact_algos::STopDown;
use sitfact_bench::{generate_rows, DatasetKind, ExperimentParams};
use sitfact_core::{Direction, DiscoveryConfig};
use sitfact_datagen::Row;
use sitfact_prominence::{FactMonitor, MonitorConfig, StreamMonitor};
use sitfact_serve::{Client, FactServer, RawRow, ServeMode, TenantSpec};

const ROWS: usize = 400;
const BATCH: usize = 50;

fn fixture() -> (sitfact_core::Schema, Vec<Row>) {
    let params = ExperimentParams {
        d: 5,
        m: 4,
        d_hat: 3,
        m_hat: 3,
        n: ROWS,
        sample_points: 1,
        seed: 42,
    };
    generate_rows(DatasetKind::Nba, &params)
}

fn monitor_config() -> MonitorConfig {
    MonitorConfig::default()
        .with_discovery(DiscoveryConfig::capped(3, 3))
        .with_tau(100.0)
        .with_keep_top(8)
}

fn fresh_monitor(schema: &sitfact_core::Schema) -> FactMonitor<STopDown> {
    let config = monitor_config();
    FactMonitor::new(
        schema.clone(),
        STopDown::new(schema, config.discovery),
        config,
    )
}

/// Feeds raw rows straight into a monitor; returns total facts as checksum.
fn in_process(schema: &sitfact_core::Schema, rows: &[Row], batch: usize) -> usize {
    let mut monitor = fresh_monitor(schema);
    let mut facts = 0;
    for window in rows.chunks(batch) {
        let tuples: Vec<_> = window
            .iter()
            .map(|row| {
                let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
                monitor.encode_raw(&dims, row.measures.clone()).unwrap()
            })
            .collect();
        facts += monitor
            .ingest_batch(tuples)
            .unwrap()
            .iter()
            .map(|r| r.facts.len())
            .sum::<usize>();
    }
    facts
}

/// Feeds the same raw rows through a fresh server + client round trip.
fn served(schema: &sitfact_core::Schema, rows: &[Row], batch: usize) -> usize {
    let monitor: Box<dyn StreamMonitor + Send> = Box::new(fresh_monitor(schema));
    let server = FactServer::bind("127.0.0.1:0", monitor).expect("bind");
    let addr = server.local_addr();
    let join = std::thread::spawn(move || server.run().expect("clean exit"));
    let mut client = Client::connect(addr).expect("connect");
    let mut facts = 0;
    if batch <= 1 {
        for row in rows {
            let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
            facts += client.ingest(&dims, &row.measures).unwrap().facts.len();
        }
    } else {
        for window in rows.chunks(batch) {
            let window: Vec<RawRow> = window
                .iter()
                .map(|row| {
                    let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
                    RawRow::new(&dims, &row.measures)
                })
                .collect();
            facts += client
                .ingest_batch(window)
                .unwrap()
                .iter()
                .map(|r| r.facts.len())
                .sum::<usize>();
        }
    }
    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
    facts
}

/// The same batched session against an explicit tenant engine: `OPEN` a named
/// tenant matching the monitor config, `USE` it, then stream windows.
fn served_mode(
    schema: &sitfact_core::Schema,
    rows: &[Row],
    batch: usize,
    mode: ServeMode,
) -> usize {
    let monitor: Box<dyn StreamMonitor + Send> = Box::new(fresh_monitor(schema));
    let server = FactServer::builder()
        .with_mode(mode)
        .bind("127.0.0.1:0", monitor)
        .expect("bind");
    let addr = server.local_addr();
    let join = std::thread::spawn(move || server.run().expect("clean exit"));
    let mut client = Client::connect(addr).expect("connect");
    let dims: Vec<&str> = schema
        .dimension_names()
        .iter()
        .map(String::as_str)
        .collect();
    let measures: Vec<(&str, Direction)> = schema
        .measures()
        .iter()
        .map(|m| (m.name.as_str(), m.direction))
        .collect();
    let mut spec = TenantSpec::new("bench", &dims, &measures, 100.0);
    spec.keep_top = Some(8);
    spec.d_hat = Some(3);
    spec.m_hat = Some(3);
    client.open(&spec).expect("open tenant");
    client.use_tenant("bench").expect("use tenant");
    let mut facts = 0;
    for window in rows.chunks(batch) {
        let window: Vec<RawRow> = window
            .iter()
            .map(|row| {
                let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
                RawRow::new(&dims, &row.measures)
            })
            .collect();
        facts += client
            .ingest_batch(window)
            .unwrap()
            .iter()
            .map(|r| r.facts.len())
            .sum::<usize>();
    }
    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
    facts
}

fn bench_serve(c: &mut Criterion) {
    let (schema, rows) = fixture();
    // Both paths must report the same facts — equality is asserted before
    // anything is timed, so the bench doubles as a wire-fidelity check.
    assert_eq!(
        in_process(&schema, &rows, BATCH),
        served(&schema, &rows, BATCH)
    );
    assert_eq!(in_process(&schema, &rows, 1), served(&schema, &rows, 1));
    // The tenant engines must agree with each other and with the in-process
    // monitor — same windows, same facts, both dispatch paths.
    assert_eq!(
        in_process(&schema, &rows, BATCH),
        served_mode(&schema, &rows, BATCH, ServeMode::Owned)
    );
    assert_eq!(
        in_process(&schema, &rows, BATCH),
        served_mode(&schema, &rows, BATCH, ServeMode::GlobalMutex)
    );

    let mut group = c.benchmark_group("serve_throughput");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_with_input(
        BenchmarkId::new("in_process_per_row", ROWS),
        &rows,
        |b, rows| b.iter(|| black_box(in_process(&schema, rows, 1))),
    );
    group.bench_with_input(
        BenchmarkId::new("in_process_batched", ROWS),
        &rows,
        |b, rows| b.iter(|| black_box(in_process(&schema, rows, BATCH))),
    );
    group.bench_with_input(
        BenchmarkId::new("served_per_row", ROWS),
        &rows,
        |b, rows| b.iter(|| black_box(served(&schema, rows, 1))),
    );
    group.bench_with_input(
        BenchmarkId::new("served_batched", ROWS),
        &rows,
        |b, rows| b.iter(|| black_box(served(&schema, rows, BATCH))),
    );
    group.bench_with_input(
        BenchmarkId::new("served_batched_owned", ROWS),
        &rows,
        |b, rows| b.iter(|| black_box(served_mode(&schema, rows, BATCH, ServeMode::Owned))),
    );
    group.bench_with_input(
        BenchmarkId::new("served_batched_mutex", ROWS),
        &rows,
        |b, rows| b.iter(|| black_box(served_mode(&schema, rows, BATCH, ServeMode::GlobalMutex))),
    );
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
