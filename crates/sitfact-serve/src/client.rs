//! The blocking client: a typed veneer over the wire protocol.

use crate::error::ServeError;
use crate::protocol::{
    read_frame, write_frame, RawRow, Request, Response, ServerStats, TenantSpec,
};
use sitfact_prominence::ArrivalReport;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking connection to a [`FactServer`](crate::FactServer).
///
/// One request is in flight at a time; every method writes a frame and blocks
/// for the matching response frame. Reports come back **byte-identical** to
/// what the server-side monitor produced (the e2e test pins this with `==`
/// against an in-process monitor).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// One request → response round trip.
    fn roundtrip(&mut self, request: &Request) -> Result<Response, ServeError> {
        write_frame(&mut self.writer, &request.encode()?)?;
        self.writer.flush()?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            ServeError::Protocol("server closed the connection mid-request".into())
        })?;
        match Response::decode(&payload)? {
            Response::Error { kind, message } => Err(ServeError::Remote { kind, message }),
            response => Ok(response),
        }
    }

    fn unexpected(what: &str, got: &Response) -> ServeError {
        ServeError::Protocol(format!("expected {what}, got {got:?}"))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(Self::unexpected("PONG", &other)),
        }
    }

    /// Creates a named tenant monitor on the server from an inline schema +
    /// config. Does **not** switch this connection to it — call
    /// [`Client::use_tenant`] after.
    pub fn open(&mut self, spec: &TenantSpec) -> Result<(), ServeError> {
        match self.roundtrip(&Request::Open(spec.clone()))? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected("OK", &other)),
        }
    }

    /// Switches this connection's current tenant; subsequent ingests and
    /// reads address the named tenant's monitor.
    pub fn use_tenant(&mut self, name: &str) -> Result<(), ServeError> {
        match self.roundtrip(&Request::Use(name.to_string()))? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected("OK", &other)),
        }
    }

    /// Evicts the named tenant's monitor from server memory (a typed
    /// `Tenant` error if the name is unknown). On a durable server the
    /// tenant's on-disk state survives: a later [`Client::open`] of the same
    /// name recovers it.
    pub fn close(&mut self, name: &str) -> Result<(), ServeError> {
        match self.roundtrip(&Request::Close(name.to_string()))? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected("OK", &other)),
        }
    }

    /// Current tenant's monitor statistics.
    pub fn stats(&mut self) -> Result<ServerStats, ServeError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(Self::unexpected("STATS", &other)),
        }
    }

    /// Ingests one row and returns its ranked-fact report.
    pub fn ingest(&mut self, dims: &[&str], measures: &[f64]) -> Result<ArrivalReport, ServeError> {
        match self.roundtrip(&Request::Ingest(RawRow::new(dims, measures)))? {
            Response::Report(report) => Ok(report),
            other => Err(Self::unexpected("REPORT", &other)),
        }
    }

    /// Ingests a window of rows through the server's batched fast path,
    /// returning one report per row in submission order.
    pub fn ingest_batch(&mut self, rows: Vec<RawRow>) -> Result<Vec<ArrivalReport>, ServeError> {
        let expected = rows.len();
        match self.roundtrip(&Request::IngestBatch(rows))? {
            Response::Reports(reports) if reports.len() == expected => Ok(reports),
            Response::Reports(reports) => Err(ServeError::Protocol(format!(
                "sent {expected} rows but received {} reports",
                reports.len()
            ))),
            other => Err(Self::unexpected("REPORTS", &other)),
        }
    }

    /// The top-`k` prefix of the most recent arrival's report.
    pub fn top_k(&mut self, k: usize) -> Result<ArrivalReport, ServeError> {
        match self.roundtrip(&Request::TopK(k))? {
            Response::Report(report) => Ok(report),
            other => Err(Self::unexpected("REPORT", &other)),
        }
    }

    /// Asks the server to exit its accept loop; the connection closes after
    /// the acknowledgement.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(Self::unexpected("BYE", &other)),
        }
    }
}
