//! Tenant registry and request engines: worker-owned monitors vs. the
//! retained single-mutex comparison leg.
//!
//! A server hosts many named **tenants**, each an independent monitor with
//! its own schema and config ([`crate::protocol::TenantSpec`]). This module
//! owns the mapping from tenant name to monitor and executes every
//! monitor-touching request. Two engines implement that contract:
//!
//! * [`OwnedEngine`] — the shared-nothing architecture. Each worker of an
//!   [`ActorPool`](sitfact_core::ActorPool) *owns* the monitors hashed to it
//!   outright (an ownership transfer at `OPEN` time — no `Mutex` around a
//!   monitor, no `unsafe`). Ingest requests are routed to the owning worker's
//!   mailbox and answered over a per-request channel; `STATS`/`TOPK` reads
//!   are served from a lock-free [`SnapshotCell`] the owner republishes after
//!   every ingest, so read-mostly clients never queue behind the ingest path.
//! * [`LockedEngine`] — the previous architecture, kept as the measured
//!   baseline: every tenant behind one global `Mutex`, reads and writes
//!   alike. The `fig_serve` bench drives both to produce the saturation
//!   curve.
//!
//! Both engines answer byte-identical responses for identical request
//! streams (pinned by the e2e suite): reports are pure functions of the
//! ingested fact sets, and the owned engine publishes each new snapshot
//! *before* replying to the ingest that produced it, so a client that
//! ingests and then reads its own tenant always observes its own write.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use sitfact_core::{ActorPool, FxBuildHasher, SitFactError, SnapshotCell};
use sitfact_prominence::{ArrivalReport, DurableMonitor, StreamMonitor, WalOptions};

use crate::error::error_kind;
use crate::protocol::{RawRow, Request, Response, ServerStats, TenantSpec};

/// The name of the tenant every connection starts on: the monitor the server
/// was bound with. The wire grammar rejects empty tenant names, so this name
/// can never collide with an `OPEN`ed tenant or be `USE`d explicitly — it is
/// reachable only as a connection's initial current tenant.
pub(crate) const DEFAULT_TENANT: &str = "";

/// The boxed monitor type both engines own.
pub(crate) type BoxedMonitor = Box<dyn StreamMonitor + Send>;

const POISONED_MSG: &str = "monitor poisoned by a panic in an earlier request";

/// The read-side payload an owning worker republishes after every ingest:
/// everything `STATS` and `TOPK` need, as plain owned values.
#[derive(Clone)]
pub(crate) struct TenantSnapshot {
    /// The most recent arrival's report, if any tuple was ingested yet.
    pub(crate) report: Option<ArrivalReport>,
    /// Wire-ready statistics of the tenant's monitor.
    pub(crate) stats: ServerStats,
    /// Set when a panicking ingest left the monitor unusable; readers relay
    /// a typed `State` error instead of stale data.
    pub(crate) poisoned: bool,
}

/// Converts a monitor's exported snapshot into the wire statistics record.
pub(crate) fn stats_of(monitor: &dyn StreamMonitor) -> ServerStats {
    let snapshot = monitor.export_snapshot();
    ServerStats {
        len: snapshot.len as u64,
        tau: snapshot.tau,
        keep_top: snapshot.keep_top.map(|k| k as u64),
        anchor_dim: snapshot.anchor_dim.map(|d| d as u64),
        sealed_blocks: snapshot.postings.sealed_blocks as u64,
        tail_ids: snapshot.postings.tail_ids as u64,
        compressed_bytes: snapshot.postings.compressed_bytes as u64,
        uncompressed_bytes: snapshot.postings.uncompressed_bytes as u64,
        wal_segments: snapshot.wal.segments,
        wal_bytes: snapshot.wal.bytes,
        wal_synced: snapshot.wal.durable_rows,
        wal_retired: snapshot.wal.retired_segments,
        live_rows: snapshot.live_rows as u64,
        tombstones: snapshot.tombstones as u64,
        evicted: snapshot.evicted as u64,
        schema: snapshot.schema_name,
    }
}

/// Where and how the server persists tenant monitors (`--data-dir`): each
/// tenant gets its own write-ahead-log directory under `root`, and every
/// tenant shares the same sync/snapshot policy.
#[derive(Debug, Clone)]
pub(crate) struct Durability {
    /// Root data directory.
    pub(crate) root: PathBuf,
    /// WAL sync/snapshot policy applied to every tenant.
    pub(crate) wal: WalOptions,
}

/// Maps a tenant name to its directory under the data root. The default
/// tenant (the empty name, unreachable over the wire) gets `_default`; a
/// named tenant gets `t-<name>` with every byte outside `[A-Za-z0-9._-]`
/// percent-encoded, so distinct names never collide and nothing in a name
/// can traverse out of the root.
pub(crate) fn tenant_dir_name(name: &str) -> String {
    use std::fmt::Write as _;
    if name == DEFAULT_TENANT {
        return "_default".to_string();
    }
    let mut out = String::with_capacity(name.len() + 2);
    out.push_str("t-");
    for byte in name.bytes() {
        match byte {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'.' | b'_' | b'-' => out.push(byte as char),
            other => {
                let _ = write!(out, "%{other:02X}");
            }
        }
    }
    out
}

/// Wraps a freshly built tenant monitor in the durability layer, recovering
/// whatever state a previous process left under the tenant's directory.
/// Returns the wrapped monitor plus the recovered last arrival report, so
/// `TOPK` answers survive a restart.
fn wrap_durable(
    monitor: BoxedMonitor,
    durability: &Durability,
    tenant: &str,
) -> Result<(BoxedMonitor, Option<ArrivalReport>), SitFactError> {
    let dir = durability.root.join(tenant_dir_name(tenant));
    let (durable, _recovery) = DurableMonitor::open(dir, monitor, durability.wal)?;
    let last_report = durable.last_report().cloned();
    Ok((Box::new(durable), last_report))
}

/// Builds an independent monitor from a wire [`TenantSpec`].
///
/// Validation failures (duplicate attribute names, non-finite `τ`, zero
/// caps) come back as typed [`SitFactError`]s for the `ERR` relay; nothing
/// in here panics on bad wire input.
pub(crate) fn build_monitor(spec: &TenantSpec) -> Result<BoxedMonitor, SitFactError> {
    use sitfact_algos::STopDown;
    use sitfact_core::{DiscoveryConfig, SchemaBuilder};
    use sitfact_prominence::{FactMonitor, MonitorConfig, WindowPolicy, WindowedMonitor};

    let mut builder = SchemaBuilder::new(&spec.name);
    for dim in &spec.dims {
        builder = builder.dimension(dim);
    }
    for (measure, direction) in &spec.measures {
        builder = builder.measure(measure, *direction);
    }
    let schema = builder.build()?;
    let discovery = if spec.d_hat.is_none() && spec.m_hat.is_none() {
        DiscoveryConfig::unrestricted()
    } else {
        DiscoveryConfig::capped(
            spec.d_hat.map_or(spec.dims.len(), |d| d as usize),
            spec.m_hat.map_or(spec.measures.len(), |m| m as usize),
        )
    };
    let config = MonitorConfig {
        discovery,
        tau: spec.tau,
        keep_top: spec.keep_top.map(|k| k as usize),
    };
    // `FactMonitor::new` panics on an invalid config (its builders validate
    // up front); wire specs are untrusted, so validate here and relay.
    config.validate()?;
    discovery.validate(&schema)?;
    let algorithm = STopDown::new(&schema, discovery);
    let monitor = FactMonitor::new(schema, algorithm, config);
    // A windowed tenant wraps its monitor *inside* the durability layer
    // (`wrap_durable` is applied by the caller, outermost), so WAL replay
    // re-feeds the logged batches through the window wrapper and the same
    // evictions are re-applied — the log never records eviction events.
    match spec.window {
        None => Ok(Box::new(monitor)),
        Some(_) => {
            let policy = WindowPolicy::from_limit(spec.window)?;
            Ok(Box::new(WindowedMonitor::new(monitor, policy)))
        }
    }
}

fn err(kind: &str, message: impl Into<String>) -> Response {
    Response::Error {
        kind: kind.into(),
        message: message.into(),
    }
}

fn relay(error: &SitFactError) -> Response {
    err(error_kind(error), error.to_string())
}

fn unknown_tenant(name: &str) -> Response {
    err("Tenant", format!("unknown tenant {name:?} (OPEN it first)"))
}

/// Executes an `INGEST` / `INGEST_BATCH` against a monitor, updating the
/// retained last report. One definition, shared by both engines, so their
/// responses are byte-identical by construction.
fn run_ingest(
    monitor: &mut BoxedMonitor,
    last_report: &mut Option<ArrivalReport>,
    request: &Request,
) -> Response {
    match request {
        Request::Ingest(row) => match ingest_one(monitor, row) {
            Ok(report) => {
                *last_report = Some(report.clone());
                Response::Report(report)
            }
            Err(error) => relay(&error),
        },
        Request::IngestBatch(rows) => match ingest_window(monitor, rows) {
            Ok(reports) => {
                if let Some(last) = reports.last() {
                    *last_report = Some(last.clone());
                }
                Response::Reports(reports)
            }
            Err(error) => relay(&error),
        },
        _ => unreachable!("run_ingest is only dispatched ingest requests"),
    }
}

fn ingest_one(monitor: &mut BoxedMonitor, row: &RawRow) -> Result<ArrivalReport, SitFactError> {
    let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
    monitor.ingest_raw(&dims, row.measures.clone())
}

fn ingest_window(
    monitor: &mut BoxedMonitor,
    rows: &[RawRow],
) -> Result<Vec<ArrivalReport>, SitFactError> {
    // Encode the whole window first so validation failures are all-or-nothing
    // at the monitor level, exactly like an in-process `ingest_batch` caller.
    let mut window = Vec::with_capacity(rows.len());
    for row in rows {
        let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
        window.push(monitor.encode_raw(&dims, row.measures.clone())?);
    }
    monitor.ingest_batch(window)
}

/// Answers `STATS` / `TOPK` from retained read-side state. Shared by the
/// snapshot path and the locked engine so truncation semantics stay
/// identical.
fn read_response(
    request: &Request,
    report: Option<&ArrivalReport>,
    stats: &ServerStats,
) -> Response {
    match request {
        Request::Stats => Response::Stats(stats.clone()),
        Request::TopK(k) => match report {
            None => err("State", "TOPK before any arrival was ingested"),
            Some(report) => {
                let mut top = report.clone();
                top.facts.truncate(*k);
                top.prominent_count = top.prominent_count.min(*k);
                Response::Report(top)
            }
        },
        _ => unreachable!("read_response is only dispatched read requests"),
    }
}

// ---------------------------------------------------------------------------
// Owned engine
// ---------------------------------------------------------------------------

/// One tenant as its owning worker sees it. Lives inside the worker's state
/// map — nothing outside the worker ever touches the monitor.
pub(crate) struct OwnedTenant {
    monitor: BoxedMonitor,
    last_report: Option<ArrivalReport>,
    snapshot: Arc<SnapshotCell<TenantSnapshot>>,
    poisoned: bool,
}

/// The read-side handle the registry hands out: which worker owns the
/// tenant, plus the snapshot cell its reads are served from.
#[derive(Clone)]
struct TenantHandle {
    worker: usize,
    snapshot: Arc<SnapshotCell<TenantSnapshot>>,
}

/// Worker state: the tenants this worker owns, by name.
type OwnerState = HashMap<String, OwnedTenant>;

/// Shared-nothing engine: monitors are owned by [`ActorPool`] workers,
/// ingest requests travel through the owner's mailbox, reads come from
/// lock-free snapshots.
pub(crate) struct OwnedEngine {
    pool: ActorPool<OwnerState>,
    registry: Mutex<HashMap<String, TenantHandle>>,
    owners: usize,
}

impl OwnedEngine {
    fn new(monitor: BoxedMonitor, last_report: Option<ArrivalReport>, owners: usize) -> Self {
        let owners = owners.max(1);
        let engine = OwnedEngine {
            pool: ActorPool::new((0..owners).map(|_| OwnerState::new()).collect()),
            registry: Mutex::new(HashMap::new()),
            owners,
        };
        engine.install(DEFAULT_TENANT.to_string(), monitor, last_report);
        engine
    }

    fn worker_of(&self, name: &str) -> usize {
        use std::hash::BuildHasher;
        (FxBuildHasher::default().hash_one(name) % self.owners as u64) as usize
    }

    /// Transfers `monitor` into the owning worker and registers the tenant.
    /// `last_report` seeds the tenant's `TOPK` state (non-`None` when a
    /// durable monitor recovered it from disk). Returns the `OPEN` response.
    fn install(
        &self,
        name: String,
        monitor: BoxedMonitor,
        last_report: Option<ArrivalReport>,
    ) -> Response {
        let worker = self.worker_of(&name);
        let snapshot = Arc::new(SnapshotCell::new(Arc::new(TenantSnapshot {
            report: last_report.clone(),
            stats: stats_of(monitor.as_ref()),
            poisoned: false,
        })));
        let mut registry = self
            .registry
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        if registry.contains_key(&name) {
            return err("Tenant", format!("tenant {name:?} already exists"));
        }
        // Enqueue the ownership transfer *before* publishing the registry
        // entry, while still holding the registry lock: mailbox enqueues are
        // real-time FIFO, so any ingest routed via the new entry lands in the
        // mailbox strictly after this insert.
        let handle = TenantHandle {
            worker,
            snapshot: Arc::clone(&snapshot),
        };
        let tenant_name = name.clone();
        let sent = self.pool.send(worker, move |owned: &mut OwnerState| {
            owned.insert(
                tenant_name,
                OwnedTenant {
                    monitor,
                    last_report,
                    snapshot,
                    poisoned: false,
                },
            );
        });
        if !sent {
            return err("State", "server is shutting down");
        }
        registry.insert(name, handle);
        Response::Ok
    }

    fn handle_of(&self, name: &str) -> Option<TenantHandle> {
        self.registry
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .get(name)
            .cloned()
    }

    /// Evicts a tenant: unregisters it, then drops its monitor on the owning
    /// worker. Blocks until the drop ran, so by the time `OK` reaches the
    /// client every previously enqueued ingest has completed and the
    /// monitor's resources (WAL file handles included) are released — a
    /// subsequent `OPEN` of the same name can safely reclaim the directory.
    fn close(&self, name: &str) -> Response {
        let handle = {
            let mut registry = self
                .registry
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            match registry.remove(name) {
                Some(handle) => handle,
                None => return unknown_tenant(name),
            }
        };
        let (reply_tx, reply_rx) = mpsc::channel();
        let tenant_name = name.to_string();
        let sent = self
            .pool
            .send(handle.worker, move |owned: &mut OwnerState| {
                owned.remove(&tenant_name);
                let _ = reply_tx.send(());
            });
        if !sent {
            return err("State", "server is shutting down");
        }
        match reply_rx.recv() {
            Ok(()) => Response::Ok,
            Err(_) => err("State", "server is shutting down"),
        }
    }

    fn dispatch(&self, tenant: &str, request: Request) -> Response {
        let Some(handle) = self.handle_of(tenant) else {
            return unknown_tenant(tenant);
        };
        match request {
            Request::Stats | Request::TopK(_) => {
                // Lock-free read: never touches the owning worker, so a
                // read-mostly client cannot queue behind an in-flight batch.
                let snapshot = handle.snapshot.load();
                if snapshot.poisoned {
                    return err("State", POISONED_MSG);
                }
                read_response(&request, snapshot.report.as_ref(), &snapshot.stats)
            }
            Request::Ingest(_) | Request::IngestBatch(_) => {
                let (reply_tx, reply_rx) = mpsc::channel();
                let name = tenant.to_string();
                let sent = self
                    .pool
                    .send(handle.worker, move |owned: &mut OwnerState| {
                        let response = ingest_on_owner(owned, &name, &request);
                        let _ = reply_tx.send(response);
                    });
                if !sent {
                    return err("State", "server is shutting down");
                }
                match reply_rx.recv() {
                    Ok(response) => response,
                    // The worker died mid-request (the job itself catches
                    // monitor panics, so this is pool teardown).
                    Err(_) => err("State", "server is shutting down"),
                }
            }
            _ => unreachable!("connection-level requests never reach the engine"),
        }
    }
}

/// Runs one ingest request on the owning worker, republishing the tenant's
/// snapshot before the reply is sent (read-your-writes for snapshot
/// readers). A panicking monitor poisons the tenant — not the worker, not
/// the process — and the poison is visible on both the mailbox path and the
/// lock-free read path.
fn ingest_on_owner(owned: &mut OwnerState, name: &str, request: &Request) -> Response {
    let Some(tenant) = owned.get_mut(name) else {
        return unknown_tenant(name);
    };
    if tenant.poisoned {
        return err("State", POISONED_MSG);
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        run_ingest(&mut tenant.monitor, &mut tenant.last_report, request)
    }));
    match outcome {
        Ok(response) => {
            tenant.snapshot.publish(Arc::new(TenantSnapshot {
                report: tenant.last_report.clone(),
                stats: stats_of(tenant.monitor.as_ref()),
                poisoned: false,
            }));
            response
        }
        Err(_) => {
            tenant.poisoned = true;
            let mut snapshot = (*tenant.snapshot.load()).clone();
            snapshot.poisoned = true;
            tenant.snapshot.publish(Arc::new(snapshot));
            err("State", POISONED_MSG)
        }
    }
}

// ---------------------------------------------------------------------------
// Locked engine (comparison leg)
// ---------------------------------------------------------------------------

pub(crate) struct LockedTenant {
    monitor: BoxedMonitor,
    last_report: Option<ArrivalReport>,
}

/// The pre-ownership architecture, retained as the bench baseline: every
/// tenant behind one global mutex, reads and writes alike.
pub(crate) struct LockedEngine {
    pub(crate) state: Mutex<HashMap<String, LockedTenant>>,
}

impl LockedEngine {
    fn new(monitor: BoxedMonitor, last_report: Option<ArrivalReport>) -> Self {
        let mut tenants = HashMap::new();
        tenants.insert(
            DEFAULT_TENANT.to_string(),
            LockedTenant {
                monitor,
                last_report,
            },
        );
        LockedEngine {
            state: Mutex::new(tenants),
        }
    }

    fn install(
        &self,
        name: String,
        monitor: BoxedMonitor,
        last_report: Option<ArrivalReport>,
    ) -> Response {
        let Ok(mut tenants) = self.state.lock() else {
            return err("State", POISONED_MSG);
        };
        if tenants.contains_key(&name) {
            return err("Tenant", format!("tenant {name:?} already exists"));
        }
        tenants.insert(
            name,
            LockedTenant {
                monitor,
                last_report,
            },
        );
        Response::Ok
    }

    /// Evicts a tenant under the global lock; the monitor drops before the
    /// response is produced, mirroring [`OwnedEngine::close`].
    fn close(&self, name: &str) -> Response {
        let Ok(mut tenants) = self.state.lock() else {
            return err("State", POISONED_MSG);
        };
        if tenants.remove(name).is_none() {
            return unknown_tenant(name);
        }
        Response::Ok
    }

    fn knows(&self, name: &str) -> Option<bool> {
        self.state
            .lock()
            .ok()
            .map(|tenants| tenants.contains_key(name))
    }

    fn dispatch(&self, tenant: &str, request: Request) -> Response {
        // Deliberate lock-poisoning semantics: a panicking ingest poisons the
        // whole engine, and every later request relays a typed `State` error
        // (the owned engine scopes the same failure to one tenant).
        let Ok(mut tenants) = self.state.lock() else {
            return err("State", POISONED_MSG);
        };
        let Some(entry) = tenants.get_mut(tenant) else {
            return unknown_tenant(tenant);
        };
        match request {
            Request::Stats => Response::Stats(stats_of(entry.monitor.as_ref())),
            Request::TopK(_) => {
                let stats = stats_of(entry.monitor.as_ref());
                read_response(&request, entry.last_report.as_ref(), &stats)
            }
            Request::Ingest(_) | Request::IngestBatch(_) => {
                run_ingest(&mut entry.monitor, &mut entry.last_report, &request)
            }
            _ => unreachable!("connection-level requests never reach the engine"),
        }
    }
}

// ---------------------------------------------------------------------------
// Engine facade
// ---------------------------------------------------------------------------

/// The monitor-touching half of the server, behind one request-in,
/// response-out surface so `server.rs` stays architecture-agnostic. The
/// engine owns the optional durability policy: when set, every tenant
/// monitor (the default one included) is wrapped in a
/// [`DurableMonitor`] before installation, and `OPEN` of a name whose
/// directory already exists recovers its state from disk.
pub(crate) struct Engine {
    /// Which architecture executes requests.
    pub(crate) kind: EngineKind,
    durability: Option<Durability>,
}

/// The two request-execution architectures.
pub(crate) enum EngineKind {
    /// Shared-nothing: worker-owned monitors, lock-free reads.
    Owned(OwnedEngine),
    /// Global mutex (the measured baseline).
    Locked(LockedEngine),
}

impl Engine {
    /// Builds the engine around the server's initial (default-tenant)
    /// monitor, recovering the default tenant from `durability`'s data
    /// directory when one is configured. Fails only on a durable-recovery
    /// error (corrupt directory, I/O failure, non-empty initial monitor).
    pub(crate) fn new(
        monitor: BoxedMonitor,
        mode: crate::server::ServeMode,
        owners: usize,
        durability: Option<Durability>,
    ) -> Result<Self, SitFactError> {
        let (monitor, last_report) = match &durability {
            Some(policy) => wrap_durable(monitor, policy, DEFAULT_TENANT)?,
            None => (monitor, None),
        };
        let kind = match mode {
            crate::server::ServeMode::Owned => {
                EngineKind::Owned(OwnedEngine::new(monitor, last_report, owners))
            }
            crate::server::ServeMode::GlobalMutex => {
                EngineKind::Locked(LockedEngine::new(monitor, last_report))
            }
        };
        Ok(Engine { kind, durability })
    }

    /// Handles `OPEN`: builds a monitor from the spec and installs it under
    /// its name. Duplicate names are a typed `Tenant` error; the existing
    /// tenant is untouched. With durability configured, the fresh monitor is
    /// wrapped in a [`DurableMonitor`] first — if the tenant's directory
    /// already holds a log (from a previous process, or a `CLOSE`d tenant),
    /// its state is recovered before the tenant goes live.
    pub(crate) fn open(&self, spec: &TenantSpec) -> Response {
        if self.durability.is_some() {
            // Refuse duplicates *before* touching the durable directory, so
            // an `OPEN` race can never attach a second log writer to a live
            // tenant's directory. (The registry re-checks under its lock;
            // the losing racer's wrapper is dropped without ever writing.)
            let exists = match &self.kind {
                EngineKind::Owned(engine) => engine.handle_of(&spec.name).is_some(),
                EngineKind::Locked(engine) => engine.knows(&spec.name).unwrap_or(false),
            };
            if exists {
                return err("Tenant", format!("tenant {:?} already exists", spec.name));
            }
        }
        let monitor = match build_monitor(spec) {
            Ok(monitor) => monitor,
            Err(error) => return relay(&error),
        };
        let (monitor, last_report) = match &self.durability {
            Some(policy) => match wrap_durable(monitor, policy, &spec.name) {
                Ok(wrapped) => wrapped,
                Err(error) => return relay(&error),
            },
            None => (monitor, None),
        };
        match &self.kind {
            EngineKind::Owned(engine) => engine.install(spec.name.clone(), monitor, last_report),
            EngineKind::Locked(engine) => engine.install(spec.name.clone(), monitor, last_report),
        }
    }

    /// Handles `USE`: validates that the tenant exists (the connection layer
    /// records the switch). Unknown names are a typed `Tenant` error.
    pub(crate) fn use_tenant(&self, name: &str) -> Response {
        let known = match &self.kind {
            EngineKind::Owned(engine) => Some(engine.handle_of(name).is_some()),
            EngineKind::Locked(engine) => engine.knows(name),
        };
        match known {
            None => err("State", POISONED_MSG),
            Some(false) => unknown_tenant(name),
            Some(true) => Response::Ok,
        }
    }

    /// Handles `CLOSE`: evicts the named tenant's monitor from memory.
    /// Unknown names are a typed `Tenant` error. Durable on-disk state is
    /// untouched — a later `OPEN` of the same name recovers it.
    pub(crate) fn close(&self, name: &str) -> Response {
        match &self.kind {
            EngineKind::Owned(engine) => engine.close(name),
            EngineKind::Locked(engine) => engine.close(name),
        }
    }

    /// Executes a monitor-touching request (`STATS` / `TOPK` / `INGEST` /
    /// `INGEST_BATCH`) against the named tenant.
    pub(crate) fn dispatch(&self, tenant: &str, request: Request) -> Response {
        match &self.kind {
            EngineKind::Owned(engine) => engine.dispatch(tenant, request),
            EngineKind::Locked(engine) => engine.dispatch(tenant, request),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeMode;
    use sitfact_core::Direction;

    fn spec(name: &str) -> TenantSpec {
        TenantSpec::new(
            name,
            &["player", "team"],
            &[("points", Direction::HigherIsBetter)],
            1.0,
        )
    }

    fn default_monitor() -> BoxedMonitor {
        build_monitor(&spec("seed")).expect("valid spec")
    }

    fn row(player: &str, team: &str, points: f64) -> RawRow {
        RawRow::new(&[player, team], &[points])
    }

    fn engines() -> Vec<Engine> {
        vec![
            Engine::new(default_monitor(), ServeMode::Owned, 2, None).expect("no durability"),
            Engine::new(default_monitor(), ServeMode::GlobalMutex, 0, None).expect("no durability"),
        ]
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sitfact-tenant-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn build_monitor_relays_bad_specs_as_typed_errors() {
        let mut bad_tau = spec("t");
        bad_tau.tau = f64::NAN;
        assert!(matches!(
            build_monitor(&bad_tau),
            Err(SitFactError::InvalidConfig(_))
        ));
        let mut dup = spec("t");
        dup.dims = vec!["player".into(), "player".into()];
        assert!(build_monitor(&dup).is_err());
        let mut zero_cap = spec("t");
        zero_cap.d_hat = Some(0);
        assert!(matches!(
            build_monitor(&zero_cap),
            Err(SitFactError::InvalidConfig(_))
        ));
    }

    #[test]
    fn engines_agree_on_the_full_tenant_lifecycle() {
        for engine in engines() {
            // The default tenant answers immediately.
            let stats = engine.dispatch(DEFAULT_TENANT, Request::Stats);
            assert!(matches!(stats, Response::Stats(ref s) if s.len == 0));

            // OPEN + USE a named tenant, ingest into it.
            assert_eq!(engine.open(&spec("east")), Response::Ok);
            assert_eq!(engine.use_tenant("east"), Response::Ok);
            let report = engine.dispatch("east", Request::Ingest(row("Wes", "BOS", 31.0)));
            assert!(matches!(report, Response::Report(_)));
            let stats = engine.dispatch("east", Request::Stats);
            assert!(matches!(stats, Response::Stats(ref s) if s.len == 1));
            // The default tenant is isolated from the named one.
            let stats = engine.dispatch(DEFAULT_TENANT, Request::Stats);
            assert!(matches!(stats, Response::Stats(ref s) if s.len == 0));

            // Duplicate OPEN and unknown USE are typed Tenant errors.
            assert!(matches!(
                engine.open(&spec("east")),
                Response::Error { ref kind, .. } if kind == "Tenant"
            ));
            assert!(matches!(
                engine.use_tenant("west"),
                Response::Error { ref kind, .. } if kind == "Tenant"
            ));
            assert!(matches!(
                engine.dispatch("west", Request::Stats),
                Response::Error { ref kind, .. } if kind == "Tenant"
            ));

            // TOPK before any arrival is a typed State error; after, a report.
            assert!(matches!(
                engine.dispatch(DEFAULT_TENANT, Request::TopK(3)),
                Response::Error { ref kind, .. } if kind == "State"
            ));
            let batch = Request::IngestBatch(vec![row("Amy", "NYK", 12.0), row("Sam", "BOS", 9.0)]);
            assert!(matches!(
                engine.dispatch("east", batch),
                Response::Reports(ref r) if r.len() == 2
            ));
            assert!(matches!(
                engine.dispatch("east", Request::TopK(1)),
                Response::Report(ref r) if r.facts.len() <= 1 && r.prominent_count <= 1
            ));
        }
    }

    #[test]
    fn engines_produce_byte_identical_responses() {
        let rows = vec![
            row("Wes", "BOS", 31.0),
            row("Amy", "NYK", 12.0),
            row("Wes", "BOS", 7.0),
            row("Sam", "NYK", 44.0),
        ];
        let mut transcripts: Vec<Vec<String>> = Vec::new();
        for engine in engines() {
            assert_eq!(engine.open(&spec("league")), Response::Ok);
            let mut transcript = Vec::new();
            for row in &rows {
                let response = engine.dispatch("league", Request::Ingest(row.clone()));
                transcript.push(response.encode());
            }
            transcript.push(engine.dispatch("league", Request::TopK(2)).encode());
            transcript.push(engine.dispatch("league", Request::Stats).encode());
            transcripts.push(transcript);
        }
        assert_eq!(transcripts[0], transcripts[1]);
    }

    #[test]
    fn engines_agree_on_close_semantics() {
        for engine in engines() {
            // Unknown CLOSE is a typed Tenant error.
            assert!(matches!(
                engine.close("ghost"),
                Response::Error { ref kind, .. } if kind == "Tenant"
            ));
            // OPEN, ingest, CLOSE: the tenant is gone from every surface.
            assert_eq!(engine.open(&spec("east")), Response::Ok);
            assert!(matches!(
                engine.dispatch("east", Request::Ingest(row("Wes", "BOS", 31.0))),
                Response::Report(_)
            ));
            assert_eq!(engine.close("east"), Response::Ok);
            assert!(matches!(
                engine.dispatch("east", Request::Stats),
                Response::Error { ref kind, .. } if kind == "Tenant"
            ));
            assert!(matches!(
                engine.use_tenant("east"),
                Response::Error { ref kind, .. } if kind == "Tenant"
            ));
            // Double CLOSE is the same typed error.
            assert!(matches!(
                engine.close("east"),
                Response::Error { ref kind, .. } if kind == "Tenant"
            ));
            // The name is reusable: a fresh OPEN starts from zero (no
            // durability configured, so nothing survives the eviction).
            assert_eq!(engine.open(&spec("east")), Response::Ok);
            assert!(matches!(
                engine.dispatch("east", Request::Stats),
                Response::Stats(ref s) if s.len == 0
            ));
        }
    }

    #[test]
    fn windowed_tenants_retract_old_arrivals_and_report_the_breakdown() {
        for engine in engines() {
            let mut windowed = spec("tail");
            windowed.window = Some(3);
            assert_eq!(engine.open(&windowed), Response::Ok);
            for i in 0..7 {
                assert!(matches!(
                    engine.dispatch("tail", Request::Ingest(row("Wes", "BOS", f64::from(i)))),
                    Response::Report(_)
                ));
            }
            let Response::Stats(stats) = engine.dispatch("tail", Request::Stats) else {
                panic!("STATS should answer on a windowed tenant");
            };
            assert_eq!(stats.len, 7);
            assert_eq!(stats.live_rows, 3);
            // Every expired arrival is either tombstoned or already compacted
            // away; the breakdown always reconciles with `len`.
            assert_eq!(stats.live_rows + stats.tombstones + stats.evicted, 7);

            // A degenerate window (zero rows) is refused at OPEN time with a
            // typed config error, not accepted and ignored.
            let mut degenerate = spec("zero");
            degenerate.window = Some(0);
            assert!(matches!(
                engine.open(&degenerate),
                Response::Error { ref kind, .. } if kind == "InvalidConfig"
            ));
        }
    }

    #[test]
    fn durable_windowed_tenants_recover_with_their_window_reapplied() {
        for (mode, owners, tag) in [
            (ServeMode::Owned, 2, "owned-window"),
            (ServeMode::GlobalMutex, 0, "locked-window"),
        ] {
            let root = temp_root(tag);
            let durability = Durability {
                root: root.clone(),
                wal: WalOptions::default(),
            };
            let mut windowed = spec("tail");
            windowed.window = Some(2);
            let pre_kill;
            {
                let engine = Engine::new(default_monitor(), mode, owners, Some(durability.clone()))
                    .expect("fresh data dir");
                assert_eq!(engine.open(&windowed), Response::Ok);
                for r in [
                    row("Wes", "BOS", 31.0),
                    row("Amy", "NYK", 12.0),
                    row("Wes", "BOS", 7.0),
                    row("Sam", "NYK", 44.0),
                ] {
                    assert!(matches!(
                        engine.dispatch("tail", Request::Ingest(r)),
                        Response::Report(_)
                    ));
                }
                pre_kill = (
                    engine.dispatch("tail", Request::TopK(8)).encode(),
                    engine.dispatch("tail", Request::Stats).encode(),
                );
                // Crash without an orderly handoff.
            }
            let engine = Engine::new(default_monitor(), mode, owners, Some(durability))
                .expect("recover data dir");
            // Re-OPEN with the same windowed spec: replay re-feeds the logged
            // batches through the window wrapper, so the retraction state
            // (live/tombstone/evicted breakdown included) is reproduced
            // exactly, not just the surviving tuples.
            assert_eq!(engine.open(&windowed), Response::Ok);
            assert_eq!(
                engine.dispatch("tail", Request::TopK(8)).encode(),
                pre_kill.0
            );
            assert_eq!(engine.dispatch("tail", Request::Stats).encode(), pre_kill.1);
            let _ = std::fs::remove_dir_all(&root);
        }
    }

    #[test]
    fn tenant_dir_names_are_safe_and_injective() {
        assert_eq!(tenant_dir_name(DEFAULT_TENANT), "_default");
        assert_eq!(tenant_dir_name("east-2.b"), "t-east-2.b");
        assert_eq!(tenant_dir_name("../evil"), "t-..%2Fevil");
        assert_eq!(tenant_dir_name("a/b"), "t-a%2Fb");
        assert_ne!(tenant_dir_name("a/b"), tenant_dir_name("a%2Fb"));
        // Percent itself is escaped, so encoded forms cannot collide.
        assert_eq!(tenant_dir_name("a%2Fb"), "t-a%252Fb");
    }

    #[test]
    fn durable_engines_recover_tenants_across_restarts() {
        for (mode, owners, tag) in [
            (ServeMode::Owned, 2, "owned"),
            (ServeMode::GlobalMutex, 0, "locked"),
        ] {
            let root = temp_root(tag);
            let durability = Durability {
                root: root.clone(),
                wal: WalOptions::default(),
            };
            let pre_kill;
            {
                let engine = Engine::new(default_monitor(), mode, owners, Some(durability.clone()))
                    .expect("fresh data dir");
                assert_eq!(engine.open(&spec("east")), Response::Ok);
                for r in [
                    row("Wes", "BOS", 31.0),
                    row("Amy", "NYK", 12.0),
                    row("Wes", "BOS", 7.0),
                ] {
                    assert!(matches!(
                        engine.dispatch("east", Request::Ingest(r)),
                        Response::Report(_)
                    ));
                }
                pre_kill = (
                    engine.dispatch("east", Request::TopK(8)).encode(),
                    engine.dispatch("east", Request::Stats).encode(),
                );
                // Crash: the engine is dropped without any orderly handoff
                // (per-append sync makes the log already durable).
            }
            let engine = Engine::new(default_monitor(), mode, owners, Some(durability))
                .expect("recover data dir");
            // Re-OPEN with the same spec recovers the tenant's state.
            assert_eq!(engine.open(&spec("east")), Response::Ok);
            assert_eq!(
                engine.dispatch("east", Request::TopK(8)).encode(),
                pre_kill.0
            );
            assert_eq!(engine.dispatch("east", Request::Stats).encode(), pre_kill.1);
            // CLOSE then re-OPEN also round-trips through disk.
            assert_eq!(engine.close("east"), Response::Ok);
            assert_eq!(engine.open(&spec("east")), Response::Ok);
            assert_eq!(
                engine.dispatch("east", Request::TopK(8)).encode(),
                pre_kill.0
            );
            let _ = std::fs::remove_dir_all(&root);
        }
    }

    #[test]
    fn owned_ingest_errors_keep_the_window_all_or_nothing() {
        let engine =
            Engine::new(default_monitor(), ServeMode::Owned, 3, None).expect("no durability");
        let bad = Request::IngestBatch(vec![
            row("Wes", "BOS", 31.0),
            RawRow::new(&["only-one-dim"], &[1.0]),
        ]);
        assert!(matches!(
            engine.dispatch(DEFAULT_TENANT, bad),
            Response::Error { ref kind, .. } if kind == "InvalidTuple"
        ));
        let stats = engine.dispatch(DEFAULT_TENANT, Request::Stats);
        assert!(matches!(stats, Response::Stats(ref s) if s.len == 0));
    }
}
