//! The wire protocol: length-prefixed frames carrying a small line-oriented
//! text grammar.
//!
//! ## Framing
//!
//! Every message (request or response) is one **frame**: a `u32` little-endian
//! payload length followed by that many bytes of UTF-8 text. Frames are
//! self-delimiting, so a connection can pipeline messages back to back; the
//! length prefix is capped at [`MAX_FRAME_LEN`] to bound a malicious or
//! corrupt peer's allocation.
//!
//! ## Grammar
//!
//! Inside a frame, fields are TAB-separated and records are LF-separated
//! (which is why raw dimension strings may not contain TAB, LF or CR):
//!
//! ```text
//! request  := "PING" | "STATS" | "SHUTDOWN"
//!           | "TOPK" TAB k
//!           | "INGEST" TAB row
//!           | "INGEST_BATCH" TAB count (LF row)*
//!           | "OPEN" TAB tenant TAB tau TAB keep_top TAB d_hat TAB m_hat
//!             [TAB window] LF dim (TAB dim)* LF mdef (TAB mdef)*
//!           | "USE" TAB tenant
//!           | "CLOSE" TAB tenant
//! row      := ndims TAB nmeasures TAB dim* TAB measure*
//! mdef     := measure_name ":" ("max" | "min")
//!
//! response := "PONG" | "BYE" | "OK"
//!           | "STATS" TAB len TAB tau TAB keep_top TAB anchor
//!             TAB sealed_blocks TAB tail_ids TAB comp_bytes TAB raw_bytes
//!             TAB wal_segments TAB wal_bytes TAB wal_synced TAB wal_retired
//!             TAB live_rows TAB tombstones TAB evicted TAB schema
//!           | "REPORT" LF report
//!           | "REPORTS" TAB count (LF report)*
//!           | "ERR" TAB kind TAB message
//! report   := "R" TAB tuple_id TAB prominent_count TAB nfacts (LF fact)*
//! fact     := "F" TAB context TAB skyline TAB subspace_bits TAB values
//! values   := value ("," value)*          ; constraint values, "_" = unbound
//! ```
//!
//! `OPEN` creates a named tenant monitor from an inline schema + config (the
//! server owns one independent monitor per tenant); `USE` switches the
//! connection's current tenant; `CLOSE` evicts a named tenant from memory
//! (its durable state, if the server runs with a data directory, survives —
//! a later `OPEN` of the same name recovers it). Tenant and attribute names
//! may not contain TAB, LF or CR (and measure names may not contain `:`).
//! Optional numeric fields (`keep_top`, `d_hat`, `m_hat`, `anchor`,
//! `window`) render as `_` when unset. `OPEN`'s trailing `window` field is a
//! sliding-window row limit — the tenant's monitor retracts everything older
//! than the latest `window` arrivals at batch boundaries; `_` (or omitting
//! the field, which older clients do) keeps the monitor unbounded. The
//! `wal_*` STATS fields are the tenant's write-ahead-log counters (all zero
//! when the server runs without a data directory): live segment files, total
//! logged bytes, rows durably synced to the log, and segment files retired
//! by snapshot coverage. `live_rows` / `tombstones` / `evicted` break `len`
//! down under retraction: rows still answering queries, retracted rows
//! awaiting compaction, and rows physically dropped.
//!
//! Measures travel as Rust's shortest-round-trip `f64` rendering, so a report
//! decoded by the client is **byte-identical** to the [`ArrivalReport`] the
//! server-side monitor produced — the end-to-end equivalence test in this
//! crate asserts exactly that with `==`.

use crate::error::ServeError;
use bytes::{Buf, BufMut, BytesMut};
use sitfact_core::{Constraint, Direction, SkylinePair, SubspaceMask, UNBOUND};
use sitfact_prominence::{ArrivalReport, RankedFact};
use std::io::{ErrorKind, Read, Write};

/// Upper bound on a frame's payload length (64 MiB): far above any real
/// window, low enough that a corrupt length prefix cannot trigger a giant
/// allocation.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Cap on what a declared wire count (batch rows, report facts) may
/// *pre-allocate*. Counts are untrusted until the records are actually
/// parsed — a 25-byte frame declaring a billion rows must not reserve
/// gigabytes (a failed allocation aborts the process, which no
/// `catch_unwind` can stop). Larger payloads still decode fine; the vector
/// just grows normally past this reservation.
const MAX_PREALLOC: usize = 4096;

/// Writes one frame: `u32` LE payload length, then the payload bytes.
///
/// Payloads over [`MAX_FRAME_LEN`] are rejected with `InvalidInput` before
/// anything hits the wire: the receiver would refuse the frame anyway, and
/// past `u32::MAX` the length prefix would silently wrap and desynchronise
/// the stream.
pub fn write_frame(writer: &mut impl Write, payload: &str) -> std::io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            ErrorKind::InvalidInput,
            format!(
                "frame payload of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap",
                bytes.len()
            ),
        ));
    }
    let mut frame = BytesMut::with_capacity(4 + bytes.len());
    frame.put_u32_le(bytes.len() as u32);
    frame.put_slice(bytes);
    // One write_all for the whole frame, so a concurrent peer never observes
    // a header without its payload mid-buffer.
    writer.write_all(&frame)
}

/// Reads one frame's payload. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed the connection).
pub fn read_frame(reader: &mut impl Read) -> Result<Option<String>, ServeError> {
    let mut header = [0u8; 4];
    match reader.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = (&header[..]).get_u32_le() as usize;
    if len > MAX_FRAME_LEN {
        return Err(ServeError::Protocol(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|e| ServeError::Protocol(format!("frame payload is not UTF-8: {e}")))
}

/// Every request verb of the grammar, exactly as it travels on the wire.
///
/// This is the machine-readable form of the grammar documented above and in
/// ROADMAP.md — the `sitfact-audit` drift check compares the two, and unit
/// tests in this module tie the list to what `encode`/`decode` actually
/// produce and accept.
pub const REQUEST_VERBS: [&str; 9] = [
    "PING",
    "STATS",
    "SHUTDOWN",
    "TOPK",
    "INGEST",
    "INGEST_BATCH",
    "OPEN",
    "USE",
    "CLOSE",
];

/// Every response verb of the grammar, exactly as it travels on the wire.
/// See [`REQUEST_VERBS`] for why this list exists.
pub const RESPONSE_VERBS: [&str; 7] = ["PONG", "BYE", "OK", "STATS", "REPORT", "REPORTS", "ERR"];

/// One raw row as the client submits it: dimension strings plus measures,
/// interned and validated by the server against its schema.
#[derive(Debug, Clone, PartialEq)]
pub struct RawRow {
    /// Raw dimension values (must not contain TAB, LF or CR — see the module
    /// grammar).
    pub dims: Vec<String>,
    /// Measure values.
    pub measures: Vec<f64>,
}

impl RawRow {
    /// Builds a row from borrowed dimension strings and measures.
    pub fn new(dims: &[&str], measures: &[f64]) -> Self {
        RawRow {
            dims: dims.iter().map(|d| d.to_string()).collect(),
            measures: measures.to_vec(),
        }
    }
}

/// The schema + config a client supplies when opening a named tenant
/// monitor over the wire ([`Request::Open`]).
///
/// The server builds an independent monitor from this spec and routes it to
/// an owning worker; names are unique per server. Tenant, dimension and
/// measure names may not contain TAB, LF or CR (measure names additionally
/// may not contain `:` — the wire renders a measure as `name:max` /
/// `name:min`).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Unique tenant name.
    pub name: String,
    /// Prominence threshold `τ` for the tenant's monitor.
    pub tau: f64,
    /// Per-arrival fact retention cap, if any.
    pub keep_top: Option<u64>,
    /// Discovery cap `d̂` (max bound dimensions), `None` = unrestricted.
    pub d_hat: Option<u64>,
    /// Discovery cap `m̂` (max subspace size), `None` = unrestricted.
    pub m_hat: Option<u64>,
    /// Sliding-window row limit: the tenant's monitor keeps only the most
    /// recent `window` arrivals, retracting the rest at batch boundaries.
    /// `None` = unbounded (the append-only monitors of the paper).
    pub window: Option<u64>,
    /// Dimension attribute names, in schema order (at least one).
    pub dims: Vec<String>,
    /// Measure attributes as `(name, direction)`, in schema order (at least
    /// one).
    pub measures: Vec<(String, Direction)>,
}

impl TenantSpec {
    /// A spec with the given name, schema attributes and threshold `τ`, no
    /// retention cap and unrestricted discovery.
    pub fn new(name: &str, dims: &[&str], measures: &[(&str, Direction)], tau: f64) -> Self {
        TenantSpec {
            name: name.to_string(),
            tau,
            keep_top: None,
            d_hat: None,
            m_hat: None,
            window: None,
            dims: dims.iter().map(|d| d.to_string()).collect(),
            measures: measures
                .iter()
                .map(|(m, dir)| (m.to_string(), *dir))
                .collect(),
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Current tenant's monitor statistics; answered with
    /// [`Response::Stats`].
    Stats,
    /// The top-`k` prefix of the current tenant's most recent arrival
    /// report; answered with [`Response::Report`].
    TopK(usize),
    /// Ingest one row into the current tenant; answered with
    /// [`Response::Report`].
    Ingest(RawRow),
    /// Ingest a window of rows through the batched fast path; answered with
    /// [`Response::Reports`], one report per row in submission order.
    IngestBatch(Vec<RawRow>),
    /// Create a named tenant monitor from an inline schema + config;
    /// answered with [`Response::Ok`] (or a typed `Tenant` error if the name
    /// is taken).
    Open(TenantSpec),
    /// Switch this connection's current tenant; answered with
    /// [`Response::Ok`] (or a typed `Tenant` error if the name is unknown).
    Use(String),
    /// Evict a named tenant monitor from memory; answered with
    /// [`Response::Ok`] (or a typed `Tenant` error if the name is unknown).
    /// Durable on-disk state, if any, is kept — a later [`Request::Open`] of
    /// the same name recovers it.
    Close(String),
    /// Ask the server to stop accepting connections and exit its accept
    /// loop; answered with [`Response::Bye`], then the connection closes.
    Shutdown,
}

/// Server statistics reported by [`Request::Stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Number of tuples ingested so far.
    pub len: u64,
    /// The monitor's prominence threshold `τ`.
    pub tau: f64,
    /// The monitor's per-arrival fact retention cap, if any.
    pub keep_top: Option<u64>,
    /// The discovery config's anchored dimension, if any (set for sharded
    /// deployments).
    pub anchor_dim: Option<u64>,
    /// Sealed compressed posting-list blocks in the monitor's inverted index
    /// (monitors compact at batch-window boundaries; sharded monitors sum
    /// over shards).
    pub sealed_blocks: u64,
    /// Posting ids still sitting in uncompressed tails.
    pub tail_ids: u64,
    /// Compressed posting-list heap bytes (arena words plus skip entries).
    pub compressed_bytes: u64,
    /// Bytes the same posting ids would occupy uncompressed.
    pub uncompressed_bytes: u64,
    /// Live write-ahead-log segment files for this tenant (zero when the
    /// server runs without a data directory).
    pub wal_segments: u64,
    /// Total bytes across the tenant's write-ahead-log segments.
    pub wal_bytes: u64,
    /// Rows durably synced to the tenant's write-ahead log. The id of the
    /// last synced arrival is `wal_synced - 1` (ids are assigned in arrival
    /// order from zero).
    pub wal_synced: u64,
    /// Write-ahead-log segment files retired (deleted) because a snapshot
    /// fully covers their windows.
    pub wal_retired: u64,
    /// Tuples still answering queries (`len` minus everything retracted by
    /// the tenant's window policy).
    pub live_rows: u64,
    /// Retracted tuples still physically present, awaiting compaction.
    pub tombstones: u64,
    /// Retracted tuples physically dropped by compaction.
    pub evicted: u64,
    /// Name of the schema the server ingests against.
    pub schema: String,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Acknowledgement of [`Request::Shutdown`].
    Bye,
    /// Success acknowledgement for requests that return no data
    /// ([`Request::Open`], [`Request::Use`]).
    Ok,
    /// Answer to [`Request::Stats`].
    Stats(ServerStats),
    /// One arrival's report.
    Report(ArrivalReport),
    /// One report per row of a batched window, in submission order.
    Reports(Vec<ArrivalReport>),
    /// The request failed; `kind` names the error class (a
    /// `SitFactError` variant for monitor errors, `Protocol` / `State` for
    /// server-side ones) and `message` is human-readable detail.
    Error {
        /// Error class name.
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

fn check_dim(dim: &str) -> Result<(), ServeError> {
    if dim.contains(['\t', '\n', '\r']) {
        return Err(ServeError::Protocol(format!(
            "dimension value {dim:?} contains a TAB/LF/CR, which the line grammar reserves"
        )));
    }
    Ok(())
}

fn check_name(what: &str, name: &str) -> Result<(), ServeError> {
    if name.is_empty() {
        return Err(ServeError::Protocol(format!("{what} name is empty")));
    }
    if name.contains(['\t', '\n', '\r']) {
        return Err(ServeError::Protocol(format!(
            "{what} name {name:?} contains a TAB/LF/CR, which the line grammar reserves"
        )));
    }
    Ok(())
}

fn encode_opt_u64(value: Option<u64>, out: &mut String) {
    use std::fmt::Write as _;
    match value {
        Some(v) => {
            let _ = write!(out, "{v}");
        }
        None => out.push('_'),
    }
}

fn decode_opt_u64(field: &str, what: &str) -> Result<Option<u64>, ServeError> {
    if field == "_" {
        Ok(None)
    } else {
        field
            .parse()
            .map(Some)
            .map_err(|_| ServeError::Protocol(format!("bad {what}")))
    }
}

fn encode_open_into(spec: &TenantSpec, out: &mut String) -> Result<(), ServeError> {
    use std::fmt::Write as _;
    check_name("tenant", &spec.name)?;
    if spec.dims.is_empty() || spec.measures.is_empty() {
        return Err(ServeError::Protocol(
            "OPEN needs at least one dimension and one measure".into(),
        ));
    }
    let _ = write!(out, "OPEN\t{}\t{}\t", spec.name, spec.tau);
    encode_opt_u64(spec.keep_top, out);
    out.push('\t');
    encode_opt_u64(spec.d_hat, out);
    out.push('\t');
    encode_opt_u64(spec.m_hat, out);
    out.push('\t');
    encode_opt_u64(spec.window, out);
    out.push('\n');
    for (i, dim) in spec.dims.iter().enumerate() {
        check_name("dimension", dim)?;
        if i > 0 {
            out.push('\t');
        }
        out.push_str(dim);
    }
    out.push('\n');
    for (i, (measure, direction)) in spec.measures.iter().enumerate() {
        check_name("measure", measure)?;
        if measure.contains(':') {
            return Err(ServeError::Protocol(format!(
                "measure name {measure:?} contains ':', which the mdef grammar reserves"
            )));
        }
        if i > 0 {
            out.push('\t');
        }
        let dir = match direction {
            Direction::HigherIsBetter => "max",
            Direction::LowerIsBetter => "min",
        };
        let _ = write!(out, "{measure}:{dir}");
    }
    Ok(())
}

fn decode_open(head: &[&str], mut lines: std::str::Split<'_, char>) -> Result<Request, ServeError> {
    let bad = |why: &str| ServeError::Protocol(format!("malformed OPEN: {why}"));
    // The window clause arrived with the sliding-window engine; clients
    // predating it send the five-field head, which decodes as unbounded.
    if head.len() != 5 && head.len() != 6 {
        return Err(bad(
            "head must be `OPEN name tau keep_top d_hat m_hat [window]`",
        ));
    }
    let name = head[0].to_string();
    check_name("tenant", &name)?;
    let tau = head[1].parse().map_err(|_| bad("tau is not a number"))?;
    let keep_top = decode_opt_u64(head[2], "OPEN keep_top")?;
    let d_hat = decode_opt_u64(head[3], "OPEN d_hat")?;
    let m_hat = decode_opt_u64(head[4], "OPEN m_hat")?;
    let window = match head.get(5) {
        Some(field) => decode_opt_u64(field, "OPEN window")?,
        None => None,
    };
    let dims_line = lines.next().ok_or_else(|| bad("missing dimension line"))?;
    let measures_line = lines.next().ok_or_else(|| bad("missing measure line"))?;
    if lines.next().is_some() {
        return Err(bad("carried trailing lines"));
    }
    let dims: Vec<String> = dims_line.split('\t').map(|d| d.to_string()).collect();
    if dims.iter().any(|d| d.is_empty()) {
        return Err(bad("empty dimension name"));
    }
    let measures = measures_line
        .split('\t')
        .map(|mdef| {
            let (name, dir) = mdef
                .rsplit_once(':')
                .ok_or_else(|| bad("mdef must be `name:max` or `name:min`"))?;
            if name.is_empty() {
                return Err(bad("empty measure name"));
            }
            let direction = match dir {
                "max" => Direction::HigherIsBetter,
                "min" => Direction::LowerIsBetter,
                _ => return Err(bad("measure direction must be `max` or `min`")),
            };
            Ok((name.to_string(), direction))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Request::Open(TenantSpec {
        name,
        tau,
        keep_top,
        d_hat,
        m_hat,
        window,
        dims,
        measures,
    }))
}

fn encode_row_into(row: &RawRow, out: &mut String) -> Result<(), ServeError> {
    use std::fmt::Write as _;
    let _ = write!(out, "{}\t{}", row.dims.len(), row.measures.len());
    for dim in &row.dims {
        check_dim(dim)?;
        out.push('\t');
        out.push_str(dim);
    }
    for measure in &row.measures {
        let _ = write!(out, "\t{measure}");
    }
    Ok(())
}

fn decode_row(fields: &[&str]) -> Result<RawRow, ServeError> {
    let bad = |why: &str| ServeError::Protocol(format!("malformed row: {why}"));
    if fields.len() < 2 {
        return Err(bad("missing the ndims/nmeasures header"));
    }
    let ndims: usize = fields[0].parse().map_err(|_| bad("ndims is not a count"))?;
    let nmeasures: usize = fields[1]
        .parse()
        .map_err(|_| bad("nmeasures is not a count"))?;
    if fields.len() != 2 + ndims + nmeasures {
        return Err(bad(&format!(
            "expected {} fields after the header, got {}",
            ndims + nmeasures,
            fields.len() - 2
        )));
    }
    let dims = fields[2..2 + ndims].iter().map(|s| s.to_string()).collect();
    let measures = fields[2 + ndims..]
        .iter()
        .map(|s| s.parse::<f64>().map_err(|_| bad("unparseable measure")))
        .collect::<Result<_, _>>()?;
    Ok(RawRow { dims, measures })
}

impl Request {
    /// Renders the request as a frame payload.
    pub fn encode(&self) -> Result<String, ServeError> {
        use std::fmt::Write as _;
        let mut out = String::new();
        match self {
            Request::Ping => out.push_str("PING"),
            Request::Stats => out.push_str("STATS"),
            Request::Shutdown => out.push_str("SHUTDOWN"),
            Request::TopK(k) => {
                let _ = write!(out, "TOPK\t{k}");
            }
            Request::Ingest(row) => {
                out.push_str("INGEST\t");
                encode_row_into(row, &mut out)?;
            }
            Request::IngestBatch(rows) => {
                let _ = write!(out, "INGEST_BATCH\t{}", rows.len());
                for row in rows {
                    out.push('\n');
                    encode_row_into(row, &mut out)?;
                }
            }
            Request::Open(spec) => encode_open_into(spec, &mut out)?,
            Request::Use(name) => {
                check_name("tenant", name)?;
                let _ = write!(out, "USE\t{name}");
            }
            Request::Close(name) => {
                check_name("tenant", name)?;
                let _ = write!(out, "CLOSE\t{name}");
            }
        }
        Ok(out)
    }

    /// Parses a frame payload into a request.
    pub fn decode(payload: &str) -> Result<Request, ServeError> {
        let bad = |why: String| ServeError::Protocol(why);
        let mut lines = payload.split('\n');
        let head = lines.next().unwrap_or("");
        let fields: Vec<&str> = head.split('\t').collect();
        let extra_lines_forbidden = |kind: &str| -> Result<(), ServeError> {
            if payload.contains('\n') {
                return Err(bad(format!("{kind} must be a single line")));
            }
            Ok(())
        };
        let bare = |kind: &str| -> Result<(), ServeError> {
            extra_lines_forbidden(kind)?;
            if fields.len() != 1 {
                return Err(bad(format!("{kind} takes no fields")));
            }
            Ok(())
        };
        match fields[0] {
            "PING" => {
                bare("PING")?;
                Ok(Request::Ping)
            }
            "STATS" => {
                bare("STATS")?;
                Ok(Request::Stats)
            }
            "SHUTDOWN" => {
                bare("SHUTDOWN")?;
                Ok(Request::Shutdown)
            }
            "TOPK" => {
                extra_lines_forbidden("TOPK")?;
                if fields.len() != 2 {
                    return Err(bad("TOPK takes exactly one field".into()));
                }
                let k = fields[1]
                    .parse()
                    .map_err(|_| bad("TOPK count is not a number".into()))?;
                Ok(Request::TopK(k))
            }
            "INGEST" => {
                extra_lines_forbidden("INGEST")?;
                Ok(Request::Ingest(decode_row(&fields[1..])?))
            }
            "INGEST_BATCH" => {
                if fields.len() != 2 {
                    return Err(bad("INGEST_BATCH header takes exactly one field".into()));
                }
                let count: usize = fields[1]
                    .parse()
                    .map_err(|_| bad("INGEST_BATCH count is not a number".into()))?;
                let mut rows = Vec::with_capacity(count.min(MAX_PREALLOC));
                for line in lines {
                    // Bail the moment the declared count is exceeded — the
                    // request is already known-invalid, so the remaining
                    // (possibly megabytes of) rows are never parsed.
                    if rows.len() == count {
                        return Err(bad(format!(
                            "INGEST_BATCH declared {count} rows but carried more"
                        )));
                    }
                    let fields: Vec<&str> = line.split('\t').collect();
                    rows.push(decode_row(&fields)?);
                }
                if rows.len() != count {
                    return Err(bad(format!(
                        "INGEST_BATCH declared {count} rows but carried {}",
                        rows.len()
                    )));
                }
                Ok(Request::IngestBatch(rows))
            }
            "OPEN" => decode_open(&fields[1..], lines),
            "USE" => {
                extra_lines_forbidden("USE")?;
                if fields.len() != 2 {
                    return Err(bad("USE takes exactly one field".into()));
                }
                let name = fields[1].to_string();
                check_name("tenant", &name)?;
                Ok(Request::Use(name))
            }
            "CLOSE" => {
                extra_lines_forbidden("CLOSE")?;
                if fields.len() != 2 {
                    return Err(bad("CLOSE takes exactly one field".into()));
                }
                let name = fields[1].to_string();
                check_name("tenant", &name)?;
                Ok(Request::Close(name))
            }
            verb => Err(bad(format!("unknown request verb {verb:?}"))),
        }
    }
}

fn encode_report_into(report: &ArrivalReport, out: &mut String) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "R\t{}\t{}\t{}",
        report.tuple_id,
        report.prominent_count,
        report.facts.len()
    );
    for fact in &report.facts {
        let _ = write!(
            out,
            "\nF\t{}\t{}\t{}\t",
            fact.context_size, fact.skyline_size, fact.pair.subspace.0
        );
        for (i, &value) in fact.pair.constraint.values().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if value == UNBOUND {
                out.push('_');
            } else {
                let _ = write!(out, "{value}");
            }
        }
    }
}

fn decode_report<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
) -> Result<ArrivalReport, ServeError> {
    let bad = |why: &str| ServeError::Protocol(format!("malformed report: {why}"));
    let head = lines.next().ok_or_else(|| bad("missing R line"))?;
    let fields: Vec<&str> = head.split('\t').collect();
    if fields.len() != 4 || fields[0] != "R" {
        return Err(bad("R line must be `R id prominent nfacts`"));
    }
    let tuple_id = fields[1].parse().map_err(|_| bad("bad tuple id"))?;
    let prominent_count = fields[2].parse().map_err(|_| bad("bad prominent count"))?;
    let nfacts: usize = fields[3].parse().map_err(|_| bad("bad fact count"))?;
    let mut facts = Vec::with_capacity(nfacts.min(MAX_PREALLOC));
    for _ in 0..nfacts {
        let line = lines.next().ok_or_else(|| bad("truncated fact list"))?;
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 5 || fields[0] != "F" {
            return Err(bad("F line must be `F context skyline subspace values`"));
        }
        let context_size = fields[1].parse().map_err(|_| bad("bad context size"))?;
        let skyline_size = fields[2].parse().map_err(|_| bad("bad skyline size"))?;
        let subspace = SubspaceMask(fields[3].parse().map_err(|_| bad("bad subspace mask"))?);
        let values = fields[4]
            .split(',')
            .map(|v| {
                if v == "_" {
                    Ok(UNBOUND)
                } else {
                    v.parse().map_err(|_| bad("bad constraint value"))
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        facts.push(RankedFact {
            pair: SkylinePair::new(Constraint::from_values(values), subspace),
            context_size,
            skyline_size,
        });
    }
    if prominent_count > facts.len() {
        return Err(bad("prominent count exceeds the fact count"));
    }
    Ok(ArrivalReport {
        tuple_id,
        facts,
        prominent_count,
    })
}

impl Response {
    /// Renders the response as a frame payload.
    pub fn encode(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        match self {
            Response::Pong => out.push_str("PONG"),
            Response::Bye => out.push_str("BYE"),
            Response::Ok => out.push_str("OK"),
            Response::Stats(stats) => {
                let _ = write!(out, "STATS\t{}\t{}\t", stats.len, stats.tau);
                encode_opt_u64(stats.keep_top, &mut out);
                out.push('\t');
                encode_opt_u64(stats.anchor_dim, &mut out);
                let _ = write!(
                    out,
                    "\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                    stats.sealed_blocks,
                    stats.tail_ids,
                    stats.compressed_bytes,
                    stats.uncompressed_bytes,
                    stats.wal_segments,
                    stats.wal_bytes,
                    stats.wal_synced,
                    stats.wal_retired,
                    stats.live_rows,
                    stats.tombstones,
                    stats.evicted
                );
                out.push('\t');
                // The schema name is free text under SchemaBuilder; flatten
                // the grammar's reserved characters so a TAB/LF in the name
                // cannot render the STATS line undecodable (names never
                // round-trip byte-exactly the way reports must).
                if stats.schema.contains(['\t', '\n', '\r']) {
                    out.push_str(&stats.schema.replace(['\t', '\n', '\r'], " "));
                } else {
                    out.push_str(&stats.schema);
                }
            }
            Response::Report(report) => {
                out.push_str("REPORT\n");
                encode_report_into(report, &mut out);
            }
            Response::Reports(reports) => {
                let _ = write!(out, "REPORTS\t{}", reports.len());
                for report in reports {
                    out.push('\n');
                    encode_report_into(report, &mut out);
                }
            }
            Response::Error { kind, message } => {
                // The message must stay on one line for the grammar; errors
                // never round-trip byte-identically, unlike reports.
                let one_line = message.replace(['\n', '\r'], " ");
                let _ = write!(out, "ERR\t{kind}\t{one_line}");
            }
        }
        out
    }

    /// Parses a frame payload into a response.
    pub fn decode(payload: &str) -> Result<Response, ServeError> {
        let bad = |why: String| ServeError::Protocol(why);
        let mut lines = payload.split('\n');
        let head = lines.next().unwrap_or("");
        let fields: Vec<&str> = head.split('\t').collect();
        match fields[0] {
            "PONG" => Ok(Response::Pong),
            "BYE" => Ok(Response::Bye),
            "OK" => Ok(Response::Ok),
            "STATS" => {
                if fields.len() != 17 {
                    return Err(bad("STATS must carry 16 fields".into()));
                }
                let parse_u64 = |s: &str, what: &str| -> Result<u64, ServeError> {
                    s.parse()
                        .map_err(|_| ServeError::Protocol(format!("bad {what}")))
                };
                Ok(Response::Stats(ServerStats {
                    len: parse_u64(fields[1], "STATS length")?,
                    tau: fields[2].parse().map_err(|_| bad("bad STATS tau".into()))?,
                    keep_top: decode_opt_u64(fields[3], "STATS keep_top")?,
                    anchor_dim: decode_opt_u64(fields[4], "STATS anchor")?,
                    sealed_blocks: parse_u64(fields[5], "STATS sealed_blocks")?,
                    tail_ids: parse_u64(fields[6], "STATS tail_ids")?,
                    compressed_bytes: parse_u64(fields[7], "STATS compressed_bytes")?,
                    uncompressed_bytes: parse_u64(fields[8], "STATS uncompressed_bytes")?,
                    wal_segments: parse_u64(fields[9], "STATS wal_segments")?,
                    wal_bytes: parse_u64(fields[10], "STATS wal_bytes")?,
                    wal_synced: parse_u64(fields[11], "STATS wal_synced")?,
                    wal_retired: parse_u64(fields[12], "STATS wal_retired")?,
                    live_rows: parse_u64(fields[13], "STATS live_rows")?,
                    tombstones: parse_u64(fields[14], "STATS tombstones")?,
                    evicted: parse_u64(fields[15], "STATS evicted")?,
                    schema: fields[16].to_string(),
                }))
            }
            "REPORT" => Ok(Response::Report(decode_report(&mut lines)?)),
            "REPORTS" => {
                if fields.len() != 2 {
                    return Err(bad("REPORTS header takes exactly one field".into()));
                }
                let count: usize = fields[1]
                    .parse()
                    .map_err(|_| bad("REPORTS count is not a number".into()))?;
                let mut reports = Vec::with_capacity(count.min(MAX_PREALLOC));
                for _ in 0..count {
                    reports.push(decode_report(&mut lines)?);
                }
                if lines.next().is_some() {
                    return Err(bad("REPORTS carried trailing lines".into()));
                }
                Ok(Response::Reports(reports))
            }
            "ERR" => {
                if fields.len() < 3 {
                    return Err(bad("ERR must carry a kind and a message".into()));
                }
                Ok(Response::Error {
                    kind: fields[1].to_string(),
                    // The message may itself contain TABs; rejoin the rest.
                    message: fields[2..].join("\t"),
                })
            }
            verb => Err(bad(format!("unknown response verb {verb:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fact(values: Vec<u32>, subspace: u32, context: u64, skyline: u64) -> RankedFact {
        RankedFact {
            pair: SkylinePair::new(Constraint::from_values(values), SubspaceMask(subspace)),
            context_size: context,
            skyline_size: skyline,
        }
    }

    fn sample_report() -> ArrivalReport {
        ArrivalReport {
            tuple_id: 41,
            facts: vec![
                fact(vec![3, UNBOUND, 7], 0b101, 1200, 2),
                fact(vec![UNBOUND, UNBOUND, 7], 0b001, 9000, 30),
            ],
            prominent_count: 1,
        }
    }

    fn sample_stats() -> ServerStats {
        ServerStats {
            len: 12,
            tau: 2.5,
            keep_top: Some(8),
            anchor_dim: None,
            sealed_blocks: 3,
            tail_ids: 17,
            compressed_bytes: 640,
            uncompressed_bytes: 1920,
            wal_segments: 2,
            wal_bytes: 4096,
            wal_synced: 12,
            wal_retired: 1,
            live_rows: 9,
            tombstones: 1,
            evicted: 2,
            schema: "nba_gamelog".into(),
        }
    }

    fn sample_spec() -> TenantSpec {
        TenantSpec {
            name: "league-east".into(),
            tau: 2.0,
            keep_top: Some(16),
            d_hat: Some(3),
            m_hat: None,
            window: Some(4096),
            dims: vec!["player".into(), "team".into()],
            measures: vec![
                ("points".into(), Direction::HigherIsBetter),
                ("fouls".into(), Direction::LowerIsBetter),
            ],
        }
    }

    #[test]
    fn verb_constants_match_encode_and_decode() {
        // Every request variant's encoding starts with a verb from
        // REQUEST_VERBS, and together they cover the whole list — so the
        // constants (and the ROADMAP grammar audited against them) cannot
        // drift from the codec.
        let requests = [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::TopK(3),
            Request::Ingest(RawRow::new(&["a"], &[1.0])),
            Request::IngestBatch(vec![RawRow::new(&["a"], &[1.0])]),
            Request::Open(sample_spec()),
            Request::Use("league-east".into()),
            Request::Close("league-east".into()),
        ];
        let mut seen: Vec<&str> = Vec::new();
        for request in &requests {
            let payload = request.encode().unwrap();
            let verb = payload
                .split(['\t', '\n'])
                .next()
                .expect("encoded request is non-empty");
            let canonical = REQUEST_VERBS
                .iter()
                .find(|&&v| v == verb)
                .unwrap_or_else(|| panic!("verb {verb:?} missing from REQUEST_VERBS"));
            seen.push(canonical);
            // The codec accepts its own rendering back.
            assert_eq!(&Request::decode(&payload).unwrap(), request);
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), REQUEST_VERBS.len());

        let responses = [
            Response::Pong,
            Response::Bye,
            Response::Ok,
            Response::Stats(sample_stats()),
            Response::Report(sample_report()),
            Response::Reports(vec![sample_report()]),
            Response::Error {
                kind: "State".into(),
                message: "m".into(),
            },
        ];
        let mut seen: Vec<&str> = Vec::new();
        for response in &responses {
            let payload = response.encode();
            let verb = payload
                .split(['\t', '\n'])
                .next()
                .expect("encoded response is non-empty");
            let canonical = RESPONSE_VERBS
                .iter()
                .find(|&&v| v == verb)
                .unwrap_or_else(|| panic!("verb {verb:?} missing from RESPONSE_VERBS"));
            seen.push(canonical);
            assert_eq!(&Response::decode(&payload).unwrap(), response);
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), RESPONSE_VERBS.len());
    }

    #[test]
    fn frames_round_trip_and_eof_is_clean() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "hello\tworld").unwrap();
        write_frame(&mut wire, "").unwrap();
        let mut reader = &wire[..];
        assert_eq!(
            read_frame(&mut reader).unwrap().as_deref(),
            Some("hello\tworld")
        );
        assert_eq!(read_frame(&mut reader).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut reader).unwrap(), None);
    }

    #[test]
    fn oversized_payload_is_rejected_before_writing() {
        let big = "x".repeat(MAX_FRAME_LEN + 1);
        let mut wire = Vec::new();
        let err = write_frame(&mut wire, &big).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidInput);
        // Nothing reached the wire: the stream stays in sync for the next
        // (valid) frame.
        assert!(wire.is_empty());
    }

    #[test]
    fn stats_schema_reserved_characters_are_flattened() {
        let response = Response::Stats(ServerStats {
            schema: "game\tlog\n2026".into(),
            ..sample_stats()
        });
        let Response::Stats(stats) = Response::decode(&response.encode()).unwrap() else {
            panic!("wrong verb");
        };
        assert_eq!(stats.schema, "game log 2026");
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocating() {
        let mut wire = Vec::new();
        wire.put_u32_le(u32::MAX);
        let mut reader = &wire[..];
        assert!(matches!(
            read_frame(&mut reader),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn requests_round_trip() {
        let row = RawRow::new(&["Wesley", "Celtics"], &[12.0, 0.5]);
        let batch = Request::IngestBatch(vec![
            row.clone(),
            RawRow::new(&["Sherman", "Hawks"], &[9.25, 3.0]),
        ]);
        for request in [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::TopK(7),
            Request::Ingest(row),
            batch,
            Request::IngestBatch(Vec::new()),
            Request::Open(sample_spec()),
            Request::Open(TenantSpec {
                window: None,
                ..sample_spec()
            }),
            Request::Open(TenantSpec::new(
                "t",
                &["d"],
                &[("m", Direction::LowerIsBetter)],
                0.5,
            )),
            Request::Use("league-east".into()),
            Request::Close("league-east".into()),
        ] {
            let payload = request.encode().unwrap();
            assert_eq!(Request::decode(&payload).unwrap(), request);
        }
    }

    #[test]
    fn five_field_open_head_from_an_older_client_decodes_as_unbounded() {
        // Clients built before the window clause send the five-field head;
        // the decoder must keep accepting it (window = None).
        let payload = "OPEN\tt\t1.5\t8\t_\t2\nplayer\tteam\npoints:max";
        let Request::Open(spec) = Request::decode(payload).unwrap() else {
            panic!("wrong verb");
        };
        assert_eq!(spec.window, None);
        assert_eq!(spec.keep_top, Some(8));
        assert_eq!(spec.m_hat, Some(2));
    }

    #[test]
    fn open_rejects_reserved_and_degenerate_specs() {
        let reject = |spec: TenantSpec| {
            assert!(
                matches!(Request::Open(spec).encode(), Err(ServeError::Protocol(_))),
                "spec should be rejected on encode"
            );
        };
        reject(TenantSpec {
            name: "a\tb".into(),
            ..sample_spec()
        });
        reject(TenantSpec {
            name: String::new(),
            ..sample_spec()
        });
        reject(TenantSpec {
            dims: Vec::new(),
            ..sample_spec()
        });
        reject(TenantSpec {
            measures: Vec::new(),
            ..sample_spec()
        });
        reject(TenantSpec {
            measures: vec![("points:scored".into(), Direction::HigherIsBetter)],
            ..sample_spec()
        });
        reject(TenantSpec {
            dims: vec!["ok".into(), "bad\ndim".into()],
            ..sample_spec()
        });
        assert!(matches!(
            Request::Use(String::new()).encode(),
            Err(ServeError::Protocol(_))
        ));
        assert!(matches!(
            Request::Close(String::new()).encode(),
            Err(ServeError::Protocol(_))
        ));
        assert!(matches!(
            Request::Close("a\rb".into()).encode(),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn measures_round_trip_exactly() {
        // Shortest-round-trip f64 rendering: awkward values survive the wire.
        let measures = [0.1, 1.0 / 3.0, f64::MAX, 5e-324, -0.0, 123456789.123456];
        let row = RawRow::new(&["x"], &measures);
        let payload = Request::Ingest(row.clone()).encode().unwrap();
        let Request::Ingest(decoded) = Request::decode(&payload).unwrap() else {
            panic!("wrong verb");
        };
        for (sent, got) in row.measures.iter().zip(&decoded.measures) {
            assert_eq!(sent.to_bits(), got.to_bits());
        }
    }

    #[test]
    fn reserved_characters_in_dims_are_rejected() {
        for dim in ["a\tb", "a\nb", "a\rb"] {
            let row = RawRow::new(&[dim], &[1.0]);
            assert!(matches!(
                Request::Ingest(row).encode(),
                Err(ServeError::Protocol(_))
            ));
        }
    }

    #[test]
    fn responses_round_trip() {
        for response in [
            Response::Pong,
            Response::Bye,
            Response::Ok,
            Response::Stats(sample_stats()),
            Response::Stats(ServerStats {
                keep_top: None,
                anchor_dim: Some(1),
                ..sample_stats()
            }),
            Response::Report(sample_report()),
            Response::Reports(vec![sample_report(), sample_report()]),
            Response::Reports(Vec::new()),
            Response::Error {
                kind: "InvalidTuple".into(),
                message: "wrong arity".into(),
            },
        ] {
            let payload = response.encode();
            assert_eq!(Response::decode(&payload).unwrap(), response);
        }
    }

    #[test]
    fn empty_report_round_trips() {
        let report = ArrivalReport {
            tuple_id: 0,
            facts: Vec::new(),
            prominent_count: 0,
        };
        let payload = Response::Report(report.clone()).encode();
        assert_eq!(
            Response::decode(&payload).unwrap(),
            Response::Report(report)
        );
    }

    #[test]
    fn malformed_payloads_are_protocol_errors() {
        for payload in [
            "",
            "NOSUCH",
            "TOPK",
            "TOPK\tx",
            "INGEST\t1",
            "INGEST\t1\t1\ta",                             // field count mismatch
            "INGEST\t1\t1\ta\tnope",                       // unparseable measure
            "INGEST_BATCH\t2\n1\t1\ta\t1.0",               // declared 2, carried 1
            "INGEST_BATCH\t1\n1\t1\ta\t1.0\n1\t1\tb\t2.0", // declared 1, carried 2
            "PING\textra",
            "OPEN\tt\t1.0\t_\t_",                    // missing m_hat head field
            "OPEN\tt\t1.0\t_\t_\t_",                 // missing dim/measure lines
            "OPEN\tt\t1.0\t_\t_\t_\nd",              // missing measure line
            "OPEN\tt\tx\t_\t_\t_\nd\nm:max",         // tau is not a number
            "OPEN\tt\t1.0\t_\t_\t_\nd\nm",           // mdef without direction
            "OPEN\tt\t1.0\t_\t_\t_\nd\nm:up",        // unknown direction
            "OPEN\tt\t1.0\t_\t_\t_\n\nm:max",        // empty dimension name
            "OPEN\tt\t1.0\t_\t_\t_\nd\nm:max\nx",    // trailing line
            "OPEN\tt\t1.0\t_\t_\t_\tx\nd\nm:max",    // window is not a count
            "OPEN\tt\t1.0\t_\t_\t_\t8\t9\nd\nm:max", // over-long head
            "USE",
            "USE\t",
            "USE\ta\tb",
            "USE\tt\nextra",
            "CLOSE",
            "CLOSE\t",
            "CLOSE\ta\tb",
            "CLOSE\tt\nextra",
        ] {
            assert!(
                Request::decode(payload).is_err(),
                "request {payload:?} should be rejected"
            );
        }
        for payload in [
            "",
            "NOSUCH",
            "STATS\t1\t2",
            "REPORT",
            "REPORT\nR\t0\t0\t1",                // truncated fact list
            "REPORT\nR\t0\t2\t1\nF\t1\t1\t1\t0", // prominent > nfacts
            "REPORTS\t1",
            "ERR\tonly-kind",
        ] {
            assert!(
                Response::decode(payload).is_err(),
                "response {payload:?} should be rejected"
            );
        }
    }

    #[test]
    fn error_message_newlines_are_flattened() {
        let response = Response::Error {
            kind: "Io".into(),
            message: "line one\nline two".into(),
        };
        let payload = response.encode();
        assert!(!payload.contains('\n'));
        let Response::Error { message, .. } = Response::decode(&payload).unwrap() else {
            panic!("wrong verb");
        };
        assert_eq!(message, "line one line two");
    }
}
