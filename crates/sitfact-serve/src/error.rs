//! Error type shared by the client, the server and the protocol codec.

use sitfact_core::SitFactError;
use std::fmt;

/// Everything that can go wrong speaking the wire protocol.
#[derive(Debug)]
pub enum ServeError {
    /// A socket or stream failed.
    Io(std::io::Error),
    /// A frame or payload violated the grammar (either side).
    Protocol(String),
    /// The server executed the request and reported an error. For monitor
    /// errors `kind` is the `SitFactError` variant name (`InvalidTuple`, …);
    /// the server also uses `Protocol` (malformed request), `State` (e.g.
    /// `TOPK` before any arrival, or a monitor poisoned by a panic) and
    /// `Tenant` (`OPEN` of a taken name, `USE` of an unknown one).
    Remote {
        /// Error class name as sent on the wire.
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(err) => write!(f, "I/O error: {err}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Remote { kind, message } => {
                write!(f, "server rejected the request ({kind}): {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(err: std::io::Error) -> Self {
        ServeError::Io(err)
    }
}

/// The wire name of a [`SitFactError`] variant — the `kind` field of an `ERR`
/// response, stable across releases so clients can match on it.
pub fn error_kind(err: &SitFactError) -> &'static str {
    match err {
        SitFactError::InvalidSchema(_) => "InvalidSchema",
        SitFactError::InvalidTuple(_) => "InvalidTuple",
        SitFactError::InvalidConstraint(_) => "InvalidConstraint",
        SitFactError::InvalidSubspace(_) => "InvalidSubspace",
        SitFactError::InvalidConfig(_) => "InvalidConfig",
        SitFactError::Io(_) => "Io",
        SitFactError::Parse(_) => "Parse",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_class() {
        let err = ServeError::Protocol("bad frame".into());
        assert!(err.to_string().contains("protocol error"));
        let err = ServeError::Remote {
            kind: "InvalidTuple".into(),
            message: "arity".into(),
        };
        assert!(err.to_string().contains("InvalidTuple"));
        let err: ServeError = std::io::Error::other("boom").into();
        assert!(matches!(err, ServeError::Io(_)));
    }

    #[test]
    fn every_sitfact_variant_has_a_wire_kind() {
        let variants = [
            SitFactError::InvalidSchema(String::new()),
            SitFactError::InvalidTuple(String::new()),
            SitFactError::InvalidConstraint(String::new()),
            SitFactError::InvalidSubspace(String::new()),
            SitFactError::InvalidConfig(String::new()),
            SitFactError::Io(String::new()),
            SitFactError::Parse(String::new()),
        ];
        let kinds: std::collections::HashSet<_> = variants.iter().map(error_kind).collect();
        assert_eq!(kinds.len(), variants.len());
    }
}
