//! Minimal `--flag value` argument parsing shared by the demo binaries
//! (`sitfact_serve`, `sitfact_client`). Deliberately tiny: unknown flags are
//! ignored, a flag given without a value is treated as absent, and an
//! unparsable value panics with the flag name (a smoke-test binary should
//! fail loudly, not fall back to a default silently).

/// Returns the value following `--name`, if present.
pub fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parses the value of `--name`, or returns `default` when the flag is
/// absent.
///
/// # Panics
///
/// Panics if the flag is present but its value does not parse as `T`.
pub fn parsed<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag_value(args, name) {
        None => default,
        Some(raw) => raw
            .parse()
            // audit: allow(no-panic): demo-binary CLI parsing, documented to panic on bad flags
            .unwrap_or_else(|_| panic!("{name}: cannot parse {raw:?}")),
    }
}

/// Whether the bare flag `--name` is present.
pub fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_with_defaults() {
        let argv = args(&["--n", "12", "--verbose", "--name", "x"]);
        assert_eq!(parsed(&argv, "--n", 5usize), 12);
        assert_eq!(parsed(&argv, "--missing", 5usize), 5);
        assert_eq!(flag_value(&argv, "--name"), Some("x"));
        assert_eq!(flag_value(&argv, "--absent"), None);
        assert!(has_flag(&argv, "--verbose"));
        assert!(!has_flag(&argv, "--quiet"));
        // A flag at the end without a value reads as absent.
        assert_eq!(flag_value(&args(&["--n"]), "--n"), None);
    }

    #[test]
    #[should_panic(expected = "--n: cannot parse")]
    fn unparsable_value_panics_with_the_flag_name() {
        let _ = parsed(&args(&["--n", "many"]), "--n", 0usize);
    }
}
