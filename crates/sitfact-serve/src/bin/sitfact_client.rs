//! Demo / smoke-test client: stream synthetic NBA box scores into a running
//! `sitfact_serve` and print what comes back.
//!
//! ```text
//! sitfact_client (--addr HOST:PORT | --port-file PATH) [--wait-secs 30]
//!                [--n 48] [--batch 16] [--dims 5] [--measures 4] [--seed 7]
//!                [--topk 3] [--tenant NAME] [--tau 100]
//!                [--assert-facts] [--state-out PATH] [--state-expect PATH]
//!                [--shutdown]
//! ```
//!
//! With `--port-file` the client polls for the file the server writes after
//! binding (see `sitfact_serve --port-file`), so scripts need no fixed port.
//! With `--tenant NAME` the client first `OPEN`s a private tenant monitor of
//! that name (NBA demo schema at this client's `--dims`/`--measures` arity,
//! threshold `--tau`) and `USE`s it, so several clients can stream into one
//! server without sharing state. `--assert-facts` exits non-zero unless at
//! least one report carried facts — the CI smoke step's success criterion.
//! `--n 0` streams nothing and only queries, for inspecting a server's
//! existing state. `--state-out PATH` writes a fingerprint of the current
//! tenant's `TOPK` + `STATS` after streaming; `--state-expect PATH` exits
//! non-zero unless the live state matches a previously written fingerprint —
//! together they are how the CI `wal-smoke` step asserts a SIGKILLed durable
//! server recovers exactly the state it acknowledged. `--shutdown` asks the
//! server to exit afterwards.

use sitfact_datagen::nba::nba_schema;
use sitfact_datagen::nba::{NbaConfig, NbaGenerator};
use sitfact_datagen::DataGenerator;
use sitfact_serve::cli::{flag_value, has_flag, parsed};
use sitfact_serve::{Client, RawRow, TenantSpec};
use std::time::{Duration, Instant};

/// Resolves the server address: `--addr` directly, or by polling the
/// `--port-file` the server writes once bound.
fn resolve_addr(args: &[String]) -> Result<String, Box<dyn std::error::Error>> {
    if let Some(addr) = flag_value(args, "--addr") {
        return Ok(addr.to_string());
    }
    let path = flag_value(args, "--port-file")
        .ok_or("pass --addr HOST:PORT or --port-file PATH (see --help in the source)")?;
    let wait_secs: u64 = parsed(args, "--wait-secs", 30);
    let deadline = Instant::now() + Duration::from_secs(wait_secs);
    loop {
        match std::fs::read_to_string(path) {
            Ok(addr) if !addr.trim().is_empty() => return Ok(addr.trim().to_string()),
            _ if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            _ => return Err(format!("server never wrote {path} within {wait_secs}s").into()),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = parsed(&args, "--n", 48);
    let batch: usize = parsed(&args, "--batch", 16).max(1);
    let dims: usize = parsed(&args, "--dims", 5);
    let measures: usize = parsed(&args, "--measures", 4);
    let seed: u64 = parsed(&args, "--seed", 7);
    let topk: usize = parsed(&args, "--topk", 3);

    let addr = resolve_addr(&args)?;
    let mut client = Client::connect(addr.as_str())?;
    client.ping()?;
    println!("connected to sitfact-serve at {addr}");

    if let Some(tenant) = flag_value(&args, "--tenant") {
        // A private monitor for this client: the NBA demo schema at our
        // arity, named after the tenant so STATS shows who answered.
        let tau: f64 = parsed(&args, "--tau", 100.0);
        let schema = nba_schema(dims, measures);
        let dim_names: Vec<&str> = schema
            .dimension_names()
            .iter()
            .map(String::as_str)
            .collect();
        let measure_defs: Vec<(&str, _)> = schema
            .measures()
            .iter()
            .map(|m| (m.name.as_str(), m.direction))
            .collect();
        let spec = TenantSpec::new(tenant, &dim_names, &measure_defs, tau);
        client.open(&spec)?;
        client.use_tenant(tenant)?;
        println!("opened and switched to tenant {tenant:?}");
    }

    let mut reports = Vec::with_capacity(n);
    if n > 0 {
        // Rows only need to match the server's schema *arity*; the server
        // interns the strings. Same generator family as the server's demo
        // schema.
        let mut generator = NbaGenerator::new(NbaConfig {
            dimensions: dims,
            measures,
            players: 60,
            teams: 8,
            seasons: 2,
            games_per_season: n,
            seed,
        });
        // First row through the per-arrival path, the rest through batched
        // windows — exercising both wire verbs.
        let first = generator.next_row();
        let first_dims: Vec<&str> = first.dims.iter().map(String::as_str).collect();
        reports.push(client.ingest(&first_dims, &first.measures)?);
        let mut pending: Vec<RawRow> = Vec::with_capacity(batch);
        for _ in 1..n {
            let row = generator.next_row();
            let row_dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
            pending.push(RawRow::new(&row_dims, &row.measures));
            if pending.len() == batch {
                reports.extend(client.ingest_batch(std::mem::take(&mut pending))?);
            }
        }
        if !pending.is_empty() {
            reports.extend(client.ingest_batch(pending)?);
        }
    }

    let total_facts: usize = reports.iter().map(|r| r.facts.len()).sum();
    let prominent_arrivals = reports.iter().filter(|r| r.prominent_count > 0).count();
    let max_prominence = reports
        .iter()
        .filter_map(|r| r.max_prominence())
        .fold(0.0f64, f64::max);
    let stats = client.stats()?;
    println!(
        "streamed {} rows → {} reports, {total_facts} facts, \
         {prominent_arrivals} prominent arrivals, max prominence {max_prominence:.1}",
        n,
        reports.len()
    );
    println!(
        "server stats: len={} schema={} τ={} keep_top={:?} anchor={:?}",
        stats.len, stats.schema, stats.tau, stats.keep_top, stats.anchor_dim
    );
    let top = client.top_k(topk)?;
    println!("top-{topk} of the last arrival: {} facts", top.facts.len());

    if has_flag(&args, "--assert-facts") && total_facts == 0 {
        return Err("smoke assertion failed: no report carried any fact".into());
    }
    if n > 0 && (reports.len() != n || stats.len as usize != n) {
        return Err(format!(
            "smoke assertion failed: sent {n} rows but got {} reports / server len {}",
            reports.len(),
            stats.len
        )
        .into());
    }
    // The fingerprint is the Debug rendering of the top-k report + the full
    // server stats — any drift in recovered state (facts, counters, WAL
    // accounting) changes it.
    let fingerprint = format!("{top:?}\n{stats:?}\n");
    if let Some(path) = flag_value(&args, "--state-out") {
        std::fs::write(path, &fingerprint)?;
        println!("wrote state fingerprint to {path}");
    }
    if let Some(path) = flag_value(&args, "--state-expect") {
        let expected = std::fs::read_to_string(path)?;
        if expected != fingerprint {
            return Err(format!(
                "state drift against {path}:\nexpected: {expected}got:      {fingerprint}"
            )
            .into());
        }
        println!("server state matches the fingerprint in {path}");
    }
    if has_flag(&args, "--shutdown") {
        client.shutdown()?;
        println!("asked the server to shut down");
    }
    Ok(())
}
