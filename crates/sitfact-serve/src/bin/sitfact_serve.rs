//! Demo / smoke-test server: a synthetic-NBA fact monitor behind the framed
//! TCP protocol.
//!
//! ```text
//! sitfact_serve [--addr 127.0.0.1:0] [--port-file PATH] [--shards N]
//!               [--route team] [--tau 100] [--keep-top 16]
//!               [--dims 5] [--measures 4] [--d-hat 3] [--m-hat 3]
//!               [--workers 4] [--owners 4] [--mode owned|mutex]
//!               [--timeout-secs 30] [--data-dir PATH]
//!               [--sync always|os] [--snapshot-every N]
//! ```
//!
//! `--shards 0` (the default) serves an unsharded [`FactMonitor`];
//! `--shards N` serves a [`ShardedMonitor`] routed on `--route`. Both sit
//! behind the same `Box<dyn StreamMonitor>`, which is the whole point: the
//! server code never branches on the deployment shape.
//!
//! `--mode owned` (the default) runs the shared-nothing engine (worker-owned
//! tenant monitors, lock-free snapshot reads); `--mode mutex` retains the
//! single-global-mutex baseline the `fig_serve` bench compares against.
//! `--timeout-secs` sets both socket timeouts (0 = wait forever).
//!
//! `--data-dir PATH` makes every tenant durable: accepted windows are
//! appended to a per-tenant write-ahead log before they are acknowledged,
//! and restarting against the same directory recovers the default tenant's
//! state (the CI `wal-smoke` step SIGKILLs the process and asserts exactly
//! that). `--sync always` (default) fsyncs each append; `--sync os` leaves
//! flushing to the OS. `--snapshot-every N` takes a full-state snapshot
//! every N rows to bound recovery replay (0 = log-only, the default).
//!
//! The bound address is printed to stdout and, with `--port-file`, written
//! atomically to a file a client can poll — that is how the CI smoke step
//! finds the ephemeral port. The process exits when a client sends
//! `SHUTDOWN`.

use sitfact_algos::STopDown;
use sitfact_core::DiscoveryConfig;
use sitfact_datagen::nba::nba_schema;
use sitfact_prominence::{FactMonitor, MonitorConfig, ShardedMonitor, StreamMonitor};
use sitfact_serve::cli::{flag_value, parsed};
use sitfact_serve::{FactServer, ServeMode, SyncPolicy, WalOptions};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = flag_value(&args, "--addr")
        .unwrap_or("127.0.0.1:0")
        .to_string();
    let port_file = flag_value(&args, "--port-file").map(str::to_string);
    let shards: usize = parsed(&args, "--shards", 0);
    let route = flag_value(&args, "--route").unwrap_or("team").to_string();
    let tau: f64 = parsed(&args, "--tau", 100.0);
    let keep_top: usize = parsed(&args, "--keep-top", 16);
    let dims: usize = parsed(&args, "--dims", 5);
    let measures: usize = parsed(&args, "--measures", 4);
    let d_hat: usize = parsed(&args, "--d-hat", 3);
    let m_hat: usize = parsed(&args, "--m-hat", 3);
    let workers: usize = parsed(&args, "--workers", FactServer::DEFAULT_WORKERS);
    let owners: usize = parsed(&args, "--owners", workers);
    let mode = match flag_value(&args, "--mode").unwrap_or("owned") {
        "owned" => ServeMode::Owned,
        "mutex" => ServeMode::GlobalMutex,
        other => return Err(format!("--mode: expected owned|mutex, got {other:?}").into()),
    };
    let timeout_secs: u64 = parsed(&args, "--timeout-secs", 30);
    let timeout = (timeout_secs > 0).then(|| Duration::from_secs(timeout_secs));
    let data_dir = flag_value(&args, "--data-dir").map(str::to_string);
    let sync = match flag_value(&args, "--sync").unwrap_or("always") {
        "always" => SyncPolicy::Always,
        "os" => SyncPolicy::Os,
        other => return Err(format!("--sync: expected always|os, got {other:?}").into()),
    };
    let snapshot_every: u64 = parsed(&args, "--snapshot-every", 0);

    let schema = nba_schema(dims, measures);
    let discovery = DiscoveryConfig::capped(d_hat, m_hat);
    let config = MonitorConfig::default()
        .with_discovery(discovery)
        .with_tau(tau)
        .with_keep_top(keep_top);

    // The one place the deployment shape is decided; everything downstream
    // of this Box is shape-agnostic.
    let monitor: Box<dyn StreamMonitor + Send> = if shards == 0 {
        Box::new(FactMonitor::new(
            schema.clone(),
            STopDown::new(&schema, discovery),
            config,
        ))
    } else {
        Box::new(ShardedMonitor::by_attribute(
            schema,
            &route,
            shards,
            config,
            STopDown::new,
        )?)
    };

    let mut wal = WalOptions::default().with_sync(sync);
    wal = if snapshot_every > 0 {
        wal.with_snapshot_every(snapshot_every)
    } else {
        wal.without_snapshots()
    };
    let mut options = FactServer::builder()
        .with_workers(workers)
        .with_owners(owners)
        .with_mode(mode)
        .with_read_timeout(timeout)
        .with_write_timeout(timeout)
        .with_wal(wal);
    if let Some(root) = &data_dir {
        options = options.with_data_dir(root);
    }
    let server = options.bind(addr.as_str(), monitor)?;
    let bound = server.local_addr();
    let shape = if shards == 0 {
        "unsharded".to_string()
    } else {
        format!("sharded×{shards} by {route}")
    };
    let mode_name = match mode {
        ServeMode::Owned => "owned",
        ServeMode::GlobalMutex => "mutex",
    };
    let durable = match &data_dir {
        Some(root) => format!("wal@{root} sync={}", sync.name()),
        None => "ephemeral".to_string(),
    };
    println!(
        "sitfact-serve listening on {bound} ({shape}, mode={mode_name}, τ={tau}, keep_top={keep_top}, {durable})"
    );
    if let Some(path) = port_file {
        // Write-then-rename so a polling client never reads a torn address.
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, bound.to_string())?;
        std::fs::rename(&tmp, &path)?;
    }
    server.run()?;
    println!("sitfact-serve: shutdown requested, exiting");
    Ok(())
}
