//! # sitfact-serve
//!
//! A TCP service front-end for the fact monitors — the paper's deployment
//! story (a news organisation continuously feeds box scores / forecasts /
//! ticks into the monitor and receives ranked situational facts per arrival)
//! as an actual network service.
//!
//! * [`FactServer`] serves **any** `Box<dyn StreamMonitor + Send>` — sharded
//!   vs unsharded is a construction-time flag of whoever builds the monitor,
//!   never a code path in here. Connections are handled on the vendored
//!   [`ThreadPool`](sitfact_core::pool::ThreadPool); there is no async
//!   runtime in this offline workspace (no tokio), and the monitor is a
//!   single mutable resource anyway, so blocking workers + a mutex is the
//!   honest architecture.
//! * [`Client`] is the matching blocking client; reports it returns are
//!   byte-identical to what the server-side monitor produced.
//! * [`protocol`] defines the wire format: length-prefixed frames around a
//!   small TAB/LF text grammar (`PING` / `STATS` / `TOPK` / `INGEST` /
//!   `INGEST_BATCH` / `SHUTDOWN`) — see the module docs for the full
//!   grammar, also reproduced in the repository's ROADMAP.
//!
//! The crate ships two demo binaries: `sitfact_serve` (stand up a server
//! over a synthetic-NBA monitor) and `sitfact_client` (stream rows into it
//! and print a summary) — together they form the CI smoke test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod client;
pub mod error;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use error::ServeError;
pub use protocol::{RawRow, Request, Response, ServerStats};
pub use server::{FactServer, ServerHandle};
