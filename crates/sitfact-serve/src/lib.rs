//! # sitfact-serve
//!
//! A TCP service front-end for the fact monitors — the paper's deployment
//! story (a news organisation continuously feeds box scores / forecasts /
//! ticks into the monitor and receives ranked situational facts per arrival)
//! as an actual network service.
//!
//! * [`FactServer`] hosts named **tenants** — independent
//!   `Box<dyn StreamMonitor + Send>` monitors clients create over the wire
//!   (`OPEN`) and select per connection (`USE`), plus the default tenant the
//!   server was bound with. Sharded vs unsharded is a construction-time flag
//!   of whoever builds a monitor, never a code path in here. Connections are
//!   framed on the vendored [`ThreadPool`](sitfact_core::pool::ThreadPool)
//!   (no async runtime exists in this offline workspace); past the parser,
//!   [`ServeMode`] picks the architecture: **owned** (default) gives every
//!   monitor to exactly one worker of an
//!   [`ActorPool`](sitfact_core::ActorPool) — ingests travel through the
//!   owner's mailbox, `STATS`/`TOPK` reads come from a lock-free
//!   [`SnapshotCell`](sitfact_core::SnapshotCell) — while **global-mutex**
//!   retains the previous single-lock design as the measured baseline.
//! * [`Client`] is the matching blocking client; reports it returns are
//!   byte-identical to what the server-side monitor produced.
//! * [`protocol`] defines the wire format: length-prefixed frames around a
//!   small TAB/LF text grammar (`PING` / `STATS` / `TOPK` / `INGEST` /
//!   `INGEST_BATCH` / `OPEN` / `USE` / `CLOSE` / `SHUTDOWN`) — see the
//!   module docs for the full grammar, also reproduced in the repository's
//!   ROADMAP.
//! * Durability is opt-in via
//!   [`ServerOptions::with_data_dir`](server::ServerOptions::with_data_dir):
//!   every tenant monitor is wrapped in a
//!   [`DurableMonitor`](sitfact_prominence::DurableMonitor) — each accepted
//!   window is appended to a checksummed write-ahead log *before* it is
//!   acknowledged, binding recovers the default tenant, and `OPEN` of a
//!   tenant whose directory already exists replays it back to life. The
//!   `STATS` verb reports the per-tenant WAL counters.
//!
//! The crate ships two demo binaries: `sitfact_serve` (stand up a server
//! over a synthetic-NBA monitor) and `sitfact_client` (stream rows into it
//! and print a summary) — together they form the CI smoke test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod client;
pub mod error;
pub mod protocol;
pub mod server;
mod tenant;

pub use client::Client;
pub use error::ServeError;
pub use protocol::{RawRow, Request, Response, ServerStats, TenantSpec};
pub use server::{FactServer, ServeMode, ServerHandle, ServerOptions};
// The durability knobs [`ServerOptions::wal`] is made of, re-exported so
// server embedders configure the WAL without naming another crate.
pub use sitfact_prominence::{SyncPolicy, WalOptions};
