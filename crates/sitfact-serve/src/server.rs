//! The blocking TCP server: any [`StreamMonitor`] behind a listener.
//!
//! The server owns exactly one `Box<dyn StreamMonitor + Send>` — whether that
//! monitor is a [`FactMonitor`](sitfact_prominence::FactMonitor), a
//! [`ShardedMonitor`](sitfact_prominence::ShardedMonitor) or anything else is
//! decided where the server is constructed, never inside it. Connections are
//! handled on the vendored
//! [`ThreadPool`] (no async runtime exists in
//! this offline workspace, and none is needed: the monitor is a single
//! mutable resource, so requests serialise on its mutex anyway; worker
//! threads only buy concurrent framing/parsing and keep-alive for many
//! connections).

use crate::error::error_kind;
use crate::protocol::{read_frame, write_frame, RawRow, Request, Response, ServerStats};
use sitfact_core::pool::ThreadPool;
use sitfact_prominence::{ArrivalReport, StreamMonitor};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Everything a connection handler needs, shared across workers.
struct Shared {
    state: Mutex<ServerState>,
    running: AtomicBool,
    addr: SocketAddr,
    /// One registered clone per live connection, keyed by a connection id.
    /// Shutdown half-closes them all, so a worker parked in `read_frame` on
    /// an idle keep-alive peer observes EOF and exits instead of pinning
    /// `run()`'s pool join forever. Handlers deregister on exit.
    connections: Mutex<HashMap<u64, TcpStream>>,
    next_connection_id: AtomicU64,
}

/// The monitor plus the per-server bookkeeping the protocol exposes.
struct ServerState {
    monitor: Box<dyn StreamMonitor + Send>,
    /// Most recent arrival's report, served by `TOPK`.
    last_report: Option<ArrivalReport>,
}

/// A handle for stopping a running [`FactServer`] from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Asks the accept loop to exit. Idempotent; returns once the request is
    /// delivered (the loop itself finishes draining in-flight connections on
    /// its own thread).
    pub fn shutdown(&self) {
        self.shared.initiate_shutdown();
    }
}

impl Shared {
    fn initiate_shutdown(&self) {
        if !self.running.swap(false, Ordering::SeqCst) {
            return; // already shutting down
        }
        // Half-close the *read* side of every live connection: workers parked
        // in `read_frame` on idle peers see EOF and retire, so the pool join
        // in `run()` cannot hang on a keep-alive client. The write side stays
        // open, so a request that is still executing (e.g. a batch holding
        // the monitor mutex) delivers its response before its worker observes
        // the EOF and exits — in-flight work drains, it is not cut off.
        if let Ok(connections) = self.connections.lock() {
            for stream in connections.values() {
                let _ = stream.shutdown(std::net::Shutdown::Read);
            }
        }
        // The accept loop is blocked in `accept()`; poke it with a throwaway
        // connection so it observes the cleared flag. Failure is fine — it
        // means the listener is already gone.
        let _ = TcpStream::connect(self.addr);
    }

    /// Registers a connection for shutdown half-close; returns its id, or
    /// `None` if the stream cannot be cloned (the caller should drop it).
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_connection_id.fetch_add(1, Ordering::Relaxed);
        self.connections.lock().ok()?.insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        if let Ok(mut connections) = self.connections.lock() {
            connections.remove(&id);
        }
    }
}

/// A blocking TCP front-end over one [`StreamMonitor`].
///
/// ```no_run
/// use sitfact_core::{Direction, SchemaBuilder, DiscoveryConfig};
/// use sitfact_algos::STopDown;
/// use sitfact_prominence::{FactMonitor, MonitorConfig, StreamMonitor};
/// use sitfact_serve::FactServer;
///
/// let schema = SchemaBuilder::new("gamelog")
///     .dimension("player")
///     .measure("points", Direction::HigherIsBetter)
///     .build()
///     .unwrap();
/// let config = MonitorConfig::default().with_tau(2.0);
/// let monitor: Box<dyn StreamMonitor + Send> = Box::new(FactMonitor::new(
///     schema.clone(),
///     STopDown::new(&schema, config.discovery),
///     config,
/// ));
/// let server = FactServer::bind("127.0.0.1:0", monitor).unwrap();
/// println!("listening on {}", server.local_addr());
/// server.run().unwrap(); // blocks until a client sends SHUTDOWN
/// ```
pub struct FactServer {
    listener: TcpListener,
    pool: ThreadPool,
    shared: Arc<Shared>,
}

impl FactServer {
    /// Default number of connection-handler workers.
    pub const DEFAULT_WORKERS: usize = 4;

    /// Binds a listener and wraps `monitor` for serving, with
    /// [`FactServer::DEFAULT_WORKERS`] connection handlers.
    pub fn bind(
        addr: impl ToSocketAddrs,
        monitor: Box<dyn StreamMonitor + Send>,
    ) -> std::io::Result<Self> {
        Self::bind_with_workers(addr, monitor, Self::DEFAULT_WORKERS)
    }

    /// [`FactServer::bind`] with an explicit worker count: at most `workers`
    /// connections are serviced concurrently, later ones queue on the pool.
    pub fn bind_with_workers(
        addr: impl ToSocketAddrs,
        monitor: Box<dyn StreamMonitor + Send>,
        workers: usize,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(FactServer {
            listener,
            pool: ThreadPool::new(workers),
            shared: Arc::new(Shared {
                state: Mutex::new(ServerState {
                    monitor,
                    last_report: None,
                }),
                running: AtomicBool::new(true),
                addr,
                connections: Mutex::new(HashMap::new()),
                next_connection_id: AtomicU64::new(0),
            }),
        })
    }

    /// Address the server is listening on (the ephemeral port when bound to
    /// port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A clonable handle that can stop the accept loop from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Accepts and serves connections until a client sends `SHUTDOWN` (or a
    /// [`ServerHandle::shutdown`] fires). In-flight connections finish before
    /// this returns: dropping the pool joins every worker.
    pub fn run(self) -> std::io::Result<()> {
        while self.shared.running.load(Ordering::SeqCst) {
            let (stream, _) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(err) => {
                    if !self.shared.running.load(Ordering::SeqCst) {
                        break;
                    }
                    return Err(err);
                }
            };
            if !self.shared.running.load(Ordering::SeqCst) {
                // The shutdown poke itself, or a client racing it; either
                // way, stop without serving.
                break;
            }
            let shared = Arc::clone(&self.shared);
            self.pool
                .execute(move || handle_connection(stream, &shared));
        }
        // `self.pool` drops here: the job queue drains and every worker
        // joins, so no connection is abandoned mid-request.
        Ok(())
    }
}

/// Serves one connection: registers it for shutdown half-close, then loops
/// request frame → response frame until EOF, an I/O error, or `SHUTDOWN`.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let Some(connection_id) = shared.register(&stream) else {
        return;
    };
    // Re-check after registering: a shutdown that raced the registration has
    // already swept the connection map, so parking on this socket now could
    // never be interrupted.
    if !shared.running.load(Ordering::SeqCst) {
        shared.deregister(connection_id);
        return;
    }
    serve_connection(stream, shared);
    shared.deregister(connection_id);
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // clean EOF
            Err(_) => return,   // torn frame or I/O failure: nothing to answer
        };
        let (response, shutdown) = match Request::decode(&payload) {
            Ok(request) => {
                let shutdown = request == Request::Shutdown;
                (handle_request(request, shared), shutdown)
            }
            Err(err) => (
                Response::Error {
                    kind: "Protocol".into(),
                    message: err.to_string(),
                },
                false,
            ),
        };
        if write_frame(&mut writer, &response.encode()).is_err() {
            return;
        }
        if shutdown {
            shared.initiate_shutdown();
            return;
        }
    }
}

/// Executes one request against the shared monitor state.
fn handle_request(request: Request, shared: &Arc<Shared>) -> Response {
    // Liveness and shutdown take no monitor state and must answer even while
    // another connection holds the mutex for a long batched ingest — a
    // health probe with a short timeout must never see a busy server as
    // dead, and a shutdown must never queue behind a window.
    match request {
        Request::Ping => return Response::Pong,
        Request::Shutdown => return Response::Bye,
        _ => {}
    }
    let mut state = match shared.state.lock() {
        Ok(state) => state,
        Err(_) => {
            return Response::Error {
                kind: "State".into(),
                message: "monitor poisoned by a panic in an earlier request".into(),
            }
        }
    };
    match request {
        Request::Ping | Request::Shutdown => unreachable!("answered above, before the lock"),
        Request::Stats => {
            let monitor = &state.monitor;
            let config = monitor.config();
            Response::Stats(ServerStats {
                len: monitor.len() as u64,
                tau: config.tau,
                keep_top: config.keep_top.map(|k| k as u64),
                anchor_dim: config.discovery.anchor_dim.map(|d| d as u64),
                schema: monitor.schema().name().to_string(),
            })
        }
        Request::TopK(k) => match &state.last_report {
            None => Response::Error {
                kind: "State".into(),
                message: "TOPK before any arrival was ingested".into(),
            },
            Some(report) => {
                let mut top = report.clone();
                top.facts.truncate(k);
                top.prominent_count = top.prominent_count.min(k);
                Response::Report(top)
            }
        },
        Request::Ingest(row) => match ingest_one(&mut state, &row) {
            Ok(report) => Response::Report(report),
            Err(err) => relay(&err),
        },
        Request::IngestBatch(rows) => match ingest_window(&mut state, &rows) {
            Ok(reports) => Response::Reports(reports),
            Err(err) => relay(&err),
        },
    }
}

fn ingest_one(
    state: &mut ServerState,
    row: &RawRow,
) -> Result<ArrivalReport, sitfact_core::SitFactError> {
    let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
    let report = state.monitor.ingest_raw(&dims, row.measures.clone())?;
    state.last_report = Some(report.clone());
    Ok(report)
}

fn ingest_window(
    state: &mut ServerState,
    rows: &[RawRow],
) -> Result<Vec<ArrivalReport>, sitfact_core::SitFactError> {
    // Encode the whole window first so validation failures are all-or-nothing
    // at the monitor level, exactly like an in-process `ingest_batch` caller.
    let mut window = Vec::with_capacity(rows.len());
    for row in rows {
        let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
        window.push(state.monitor.encode_raw(&dims, row.measures.clone())?);
    }
    let reports = state.monitor.ingest_batch(window)?;
    if let Some(last) = reports.last() {
        state.last_report = Some(last.clone());
    }
    Ok(reports)
}

fn relay(err: &sitfact_core::SitFactError) -> Response {
    Response::Error {
        kind: error_kind(err).into(),
        message: err.to_string(),
    }
}

// The end-to-end behaviour (server-mediated reports ≡ in-process reports for
// both monitor types, error relay, shutdown) is pinned by `tests/e2e.rs`,
// which exercises this module over real sockets.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeError;
    use sitfact_algos::STopDown;
    use sitfact_core::{Direction, SchemaBuilder};
    use sitfact_prominence::{FactMonitor, MonitorConfig};

    fn monitor() -> Box<dyn StreamMonitor + Send> {
        let schema = SchemaBuilder::new("t")
            .dimension("player")
            .measure("points", Direction::HigherIsBetter)
            .build()
            .unwrap();
        let config = MonitorConfig::default().with_tau(1.0);
        Box::new(FactMonitor::new(
            schema.clone(),
            STopDown::new(&schema, config.discovery),
            config,
        ))
    }

    #[test]
    fn bind_reports_the_ephemeral_port() {
        let server = FactServer::bind("127.0.0.1:0", monitor()).unwrap();
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);
        assert_eq!(server.handle().addr(), addr);
    }

    #[test]
    fn handle_shutdown_unblocks_run() {
        let server = FactServer::bind("127.0.0.1:0", monitor()).unwrap();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        handle.shutdown();
        handle.shutdown(); // idempotent
        join.join().expect("no panic").expect("clean exit");
    }

    #[test]
    fn poisoned_monitor_relays_typed_err_and_survives_reconnects() {
        let server = FactServer::bind("127.0.0.1:0", monitor()).unwrap();
        let addr = server.local_addr();
        let shared = Arc::clone(&server.shared);
        let join = std::thread::spawn(move || server.run());

        let mut first = crate::client::Client::connect(addr).unwrap();
        first.ingest(&["Wesley"], &[10.0]).unwrap();

        // Poison the monitor mutex the way a buggy request handler would:
        // panic while holding the lock.
        let poisoner = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let _guard = shared.state.lock().unwrap();
                panic!("deliberate poison");
            })
        };
        assert!(poisoner.join().is_err());
        assert!(shared.state.lock().is_err(), "mutex must be poisoned");

        // The already-open connection gets a typed ERR, not a hangup...
        match first.stats() {
            Err(ServeError::Remote { kind, message }) => {
                assert_eq!(kind, "State");
                assert!(message.contains("poisoned"), "{message}");
            }
            other => panic!("expected a State error, got {other:?}"),
        }
        // ...and liveness still answers, because PING never takes the lock.
        first.ping().unwrap();

        // A fresh connection (client reconnect) sees the same typed error
        // instead of a dead server.
        let mut second = crate::client::Client::connect(addr).unwrap();
        match second.ingest(&["Dirk"], &[20.0]) {
            Err(ServeError::Remote { kind, .. }) => assert_eq!(kind, "State"),
            other => panic!("expected a State error, got {other:?}"),
        }
        second.ping().unwrap();

        // Shutdown still works over the wire: it never touches the monitor.
        second.shutdown().unwrap();
        join.join().expect("no panic").expect("clean exit");
    }

    #[test]
    fn topk_truncates_and_stats_reflect_config() {
        let shared = Arc::new(Shared {
            state: Mutex::new(ServerState {
                monitor: monitor(),
                last_report: None,
            }),
            running: AtomicBool::new(true),
            addr: "127.0.0.1:0".parse().unwrap(),
            connections: Mutex::new(HashMap::new()),
            next_connection_id: AtomicU64::new(0),
        });
        // TOPK before any arrival is a state error.
        let response = handle_request(Request::TopK(3), &shared);
        assert!(matches!(response, Response::Error { kind, .. } if kind == "State"));
        // Ingest one row, then TOPK 1 returns a single-fact prefix.
        let row = RawRow::new(&["Wesley"], &[10.0]);
        let Response::Report(full) = handle_request(Request::Ingest(row), &shared) else {
            panic!("ingest failed");
        };
        assert!(full.facts.len() > 1);
        let Response::Report(top) = handle_request(Request::TopK(1), &shared) else {
            panic!("topk failed");
        };
        assert_eq!(top.facts.len(), 1);
        assert_eq!(top.prominent_count, 1);
        assert_eq!(top.facts[0], full.facts[0]);
        let Response::Stats(stats) = handle_request(Request::Stats, &shared) else {
            panic!("stats failed");
        };
        assert_eq!(stats.len, 1);
        assert_eq!(stats.schema, "t");
        assert_eq!(stats.tau, 1.0);
    }
}
