//! The blocking TCP server: multi-tenant monitors behind a listener.
//!
//! The server hosts named **tenants** — independent monitors clients create
//! over the wire (`OPEN`) and select per connection (`USE`) — plus the
//! default tenant it was bound with. Whether a monitor is a
//! [`FactMonitor`](sitfact_prominence::FactMonitor), a
//! [`ShardedMonitor`](sitfact_prominence::ShardedMonitor) or anything else
//! is decided where it is constructed, never inside the server.
//!
//! Connections are framed and parsed on the vendored
//! [`ThreadPool`] (no async runtime exists in this offline workspace).
//! What happens past the parser is the [`ServeMode`]:
//!
//! * [`ServeMode::Owned`] (default) — shared-nothing. Each worker of an
//!   [`ActorPool`](sitfact_core::ActorPool) owns its tenants' monitors
//!   outright; ingests travel through the owner's mailbox, `STATS`/`TOPK`
//!   are answered from a lock-free
//!   [`SnapshotCell`](sitfact_core::SnapshotCell) without ever touching the
//!   ingest path.
//! * [`ServeMode::GlobalMutex`] — the previous single-mutex architecture,
//!   retained as the measured baseline for the `fig_serve` saturation curve.
//!
//! Both modes answer byte-identical responses for identical request streams.
//!
//! Sockets carry read/write timeouts ([`ServerOptions`]) so a peer that
//! stalls mid-frame — or never drains its responses — is dropped instead of
//! pinning a pool worker forever. A peer that is merely *idle between
//! frames* is kept alive indefinitely.

use crate::protocol::{write_frame, Request, Response, MAX_FRAME_LEN};
use crate::tenant::{Durability, Engine, DEFAULT_TENANT};
use sitfact_core::pool::ThreadPool;
use sitfact_prominence::{StreamMonitor, WalOptions};
use std::collections::HashMap;
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How often the accept loop re-checks the shutdown flag while no
/// connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Cap on what a declared frame length may pre-allocate before the payload
/// bytes actually arrive (mirrors the protocol module's guard).
const MAX_PREALLOC: usize = 4096;

/// Which engine executes monitor-touching requests — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Shared-nothing: worker-owned monitors, mailbox ingest, lock-free
    /// snapshot reads. The default.
    Owned,
    /// Every tenant behind one global mutex — the pre-ownership
    /// architecture, retained as the bench baseline.
    GlobalMutex,
}

/// Construction-time knobs for a [`FactServer`], built fluently from
/// [`FactServer::builder`] and finished with [`ServerOptions::bind`]:
///
/// ```no_run
/// # use sitfact_core::{Direction, SchemaBuilder};
/// # use sitfact_algos::STopDown;
/// # use sitfact_prominence::{FactMonitor, MonitorConfig, StreamMonitor};
/// use sitfact_serve::{FactServer, ServeMode};
///
/// # let schema = SchemaBuilder::new("gamelog")
/// #     .dimension("player")
/// #     .measure("points", Direction::HigherIsBetter)
/// #     .build()
/// #     .unwrap();
/// # let config = MonitorConfig::default().with_tau(2.0);
/// # let monitor: Box<dyn StreamMonitor + Send> = Box::new(FactMonitor::new(
/// #     schema.clone(),
/// #     STopDown::new(&schema, config.discovery),
/// #     config,
/// # ));
/// let server = FactServer::builder()
///     .with_workers(8)
///     .with_mode(ServeMode::Owned)
///     .with_data_dir("/var/lib/sitfact")
///     .bind("127.0.0.1:0", monitor)
///     .unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Connection-handler workers: at most this many connections are
    /// serviced concurrently, later ones queue on the pool.
    pub workers: usize,
    /// Monitor-owning workers in [`ServeMode::Owned`] (ignored by
    /// [`ServeMode::GlobalMutex`]); tenants are hashed across them.
    pub owners: usize,
    /// Which engine executes monitor-touching requests.
    pub mode: ServeMode,
    /// Dropped if a peer stalls this long *mid-frame* (idle between frames
    /// is always tolerated). `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// Dropped if a peer leaves a response undelivered this long (e.g. a
    /// full TCP window that never drains). `None` waits forever.
    pub write_timeout: Option<Duration>,
    /// Root directory for per-tenant write-ahead logs. `None` (the default)
    /// serves purely in memory; `Some` makes every tenant durable — each
    /// accepted window is logged before it is acknowledged, and binding (or
    /// `OPEN`ing a tenant whose directory already exists) recovers state
    /// from disk.
    pub data_dir: Option<PathBuf>,
    /// WAL sync/snapshot policy applied to every tenant (ignored without
    /// [`ServerOptions::data_dir`]).
    pub wal: WalOptions,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            workers: FactServer::DEFAULT_WORKERS,
            owners: FactServer::DEFAULT_WORKERS,
            mode: ServeMode::Owned,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            data_dir: None,
            wal: WalOptions::default(),
        }
    }
}

impl ServerOptions {
    /// Sets the number of connection-handler workers.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the number of monitor-owning workers ([`ServeMode::Owned`]).
    pub fn with_owners(mut self, owners: usize) -> Self {
        self.owners = owners;
        self
    }

    /// Selects the request-execution engine.
    pub fn with_mode(mut self, mode: ServeMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the mid-frame read timeout (`None` waits forever).
    pub fn with_read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Sets the response write timeout (`None` waits forever).
    pub fn with_write_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.write_timeout = timeout;
        self
    }

    /// Enables durability: per-tenant write-ahead logs under `root`, crash
    /// recovery at bind / `OPEN` time.
    pub fn with_data_dir(mut self, root: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(root.into());
        self
    }

    /// Sets the WAL sync/snapshot policy used with
    /// [`ServerOptions::with_data_dir`].
    pub fn with_wal(mut self, wal: WalOptions) -> Self {
        self.wal = wal;
        self
    }

    /// Binds a listener with these options — the builder's terminal step,
    /// equivalent to [`FactServer::bind_with_options`].
    pub fn bind(
        self,
        addr: impl ToSocketAddrs,
        monitor: Box<dyn StreamMonitor + Send>,
    ) -> std::io::Result<FactServer> {
        FactServer::bind_with_options(addr, monitor, self)
    }
}

/// Everything a connection handler needs, shared across workers.
pub(crate) struct Shared {
    pub(crate) engine: Engine,
    running: AtomicBool,
    addr: SocketAddr,
    /// One registered clone per live connection, keyed by a connection id.
    /// Shutdown half-closes them all, so a worker parked reading an idle
    /// keep-alive peer observes EOF and exits instead of pinning `run()`'s
    /// pool join forever. Handlers deregister on exit.
    connections: Mutex<HashMap<u64, TcpStream>>,
    next_connection_id: AtomicU64,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
}

/// Per-connection protocol state: which tenant this connection currently
/// addresses (`USE` switches it; connections start on the default tenant).
struct Session {
    tenant: String,
}

impl Default for Session {
    fn default() -> Self {
        Session {
            tenant: DEFAULT_TENANT.to_string(),
        }
    }
}

/// A handle for stopping a running [`FactServer`] from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Asks the accept loop to exit. Idempotent; returns once the request is
    /// delivered (the loop itself finishes draining in-flight connections on
    /// its own thread).
    pub fn shutdown(&self) {
        self.shared.initiate_shutdown();
    }
}

impl Shared {
    fn initiate_shutdown(&self) {
        if !self.running.swap(false, Ordering::SeqCst) {
            return; // already shutting down
        }
        // Half-close the *read* side of every live connection: workers parked
        // reading idle peers see EOF and retire, so the pool join in `run()`
        // cannot hang on a keep-alive client. The write side stays open, so a
        // request that is still executing delivers its response before its
        // worker observes the EOF and exits — in-flight work drains, it is
        // not cut off. The accept loop itself needs no poke: it polls the
        // flag with a nonblocking listener.
        if let Ok(connections) = self.connections.lock() {
            for stream in connections.values() {
                let _ = stream.shutdown(std::net::Shutdown::Read);
            }
        }
    }

    /// Registers a connection for shutdown half-close; returns its id, or
    /// `None` if the stream cannot be cloned (the caller should drop it).
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_connection_id.fetch_add(1, Ordering::Relaxed);
        self.connections.lock().ok()?.insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        if let Ok(mut connections) = self.connections.lock() {
            connections.remove(&id);
        }
    }
}

/// A blocking, multi-tenant TCP front-end over [`StreamMonitor`]s.
///
/// ```no_run
/// use sitfact_core::{Direction, SchemaBuilder, DiscoveryConfig};
/// use sitfact_algos::STopDown;
/// use sitfact_prominence::{FactMonitor, MonitorConfig, StreamMonitor};
/// use sitfact_serve::FactServer;
///
/// let schema = SchemaBuilder::new("gamelog")
///     .dimension("player")
///     .measure("points", Direction::HigherIsBetter)
///     .build()
///     .unwrap();
/// let config = MonitorConfig::default().with_tau(2.0);
/// let monitor: Box<dyn StreamMonitor + Send> = Box::new(FactMonitor::new(
///     schema.clone(),
///     STopDown::new(&schema, config.discovery),
///     config,
/// ));
/// let server = FactServer::bind("127.0.0.1:0", monitor).unwrap();
/// println!("listening on {}", server.local_addr());
/// server.run().unwrap(); // blocks until a client sends SHUTDOWN
/// ```
pub struct FactServer {
    listener: TcpListener,
    pool: ThreadPool,
    shared: Arc<Shared>,
}

impl FactServer {
    /// Default number of connection-handler (and monitor-owning) workers.
    pub const DEFAULT_WORKERS: usize = 4;

    /// Binds a listener and wraps `monitor` as the default tenant, with
    /// [`ServerOptions::default`] (owned mode, 30 s socket timeouts).
    pub fn bind(
        addr: impl ToSocketAddrs,
        monitor: Box<dyn StreamMonitor + Send>,
    ) -> std::io::Result<Self> {
        Self::bind_with_options(addr, monitor, ServerOptions::default())
    }

    /// Starts a fluent options builder; finish with [`ServerOptions::bind`].
    pub fn builder() -> ServerOptions {
        ServerOptions::default()
    }

    /// [`FactServer::bind`] with an explicit worker count (used for both
    /// connection handlers and monitor owners).
    #[deprecated(
        since = "0.1.0",
        note = "use `FactServer::builder().with_workers(n).bind(addr, monitor)`"
    )]
    pub fn bind_with_workers(
        addr: impl ToSocketAddrs,
        monitor: Box<dyn StreamMonitor + Send>,
        workers: usize,
    ) -> std::io::Result<Self> {
        Self::builder()
            .with_workers(workers)
            .with_owners(workers)
            .bind(addr, monitor)
    }

    /// [`FactServer::bind`] with full control over mode, worker counts,
    /// socket timeouts and durability. A configured
    /// [`ServerOptions::data_dir`] makes this recover the default tenant
    /// from disk before the listener goes live; recovery failures (corrupt
    /// directory, I/O errors) surface here as `io::Error`.
    pub fn bind_with_options(
        addr: impl ToSocketAddrs,
        monitor: Box<dyn StreamMonitor + Send>,
        options: ServerOptions,
    ) -> std::io::Result<Self> {
        let durability = options.data_dir.clone().map(|root| Durability {
            root,
            wal: options.wal,
        });
        let engine = Engine::new(monitor, options.mode, options.owners, durability)
            .map_err(|error| std::io::Error::new(ErrorKind::InvalidData, error.to_string()))?;
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(FactServer {
            listener,
            pool: ThreadPool::new(options.workers),
            shared: Arc::new(Shared {
                engine,
                running: AtomicBool::new(true),
                addr,
                connections: Mutex::new(HashMap::new()),
                next_connection_id: AtomicU64::new(0),
                read_timeout: options.read_timeout,
                write_timeout: options.write_timeout,
            }),
        })
    }

    /// Address the server is listening on (the ephemeral port when bound to
    /// port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A clonable handle that can stop the accept loop from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Accepts and serves connections until a client sends `SHUTDOWN` (or a
    /// [`ServerHandle::shutdown`] fires). In-flight connections finish before
    /// this returns: dropping the pool joins every worker.
    pub fn run(self) -> std::io::Result<()> {
        // Nonblocking accept + short flag polls, so shutdown needs no
        // throwaway wake-up connection and a raced `accept` cannot park the
        // loop forever.
        self.listener.set_nonblocking(true)?;
        while self.shared.running.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // Accepted sockets must block (with timeouts): the
                    // nonblocking flag is per-socket and not inherited on
                    // every platform, so set it explicitly.
                    if stream.set_nonblocking(false).is_err() {
                        continue;
                    }
                    let shared = Arc::clone(&self.shared);
                    self.pool
                        .execute(move || handle_connection(stream, &shared));
                }
                Err(err) if err.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(err) if err.kind() == ErrorKind::Interrupted => {}
                Err(err) => {
                    if self.shared.running.load(Ordering::SeqCst) {
                        return Err(err);
                    }
                    break;
                }
            }
        }
        // `self.pool` drops here: the job queue drains and every worker
        // joins, so no connection is abandoned mid-request.
        Ok(())
    }
}

/// What one attempt to read a request frame produced.
enum FrameIn {
    /// A complete payload arrived.
    Payload(String),
    /// Clean EOF between frames: the peer hung up.
    Eof,
    /// The read timeout elapsed with *no* bytes of a new frame — an idle
    /// keep-alive peer, not a dead one. Keep waiting.
    Idle,
    /// The peer stalled mid-frame, sent a torn/oversized frame, or the
    /// socket failed: drop the connection.
    Dead,
}

/// Reads one length-prefixed frame directly off the socket, classifying
/// timeouts by position: a timeout *between* frames is `Idle` (tolerated
/// forever), a timeout *inside* a frame is `Dead` (a stalled peer must not
/// pin a pool worker). Framing matches `protocol::read_frame` byte for byte.
fn read_frame_idle(stream: &mut TcpStream) -> FrameIn {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match stream.read(&mut header[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    FrameIn::Eof
                } else {
                    FrameIn::Dead
                };
            }
            Ok(n) => filled += n,
            Err(err) if err.kind() == ErrorKind::Interrupted => {}
            Err(err) if matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return if filled == 0 {
                    FrameIn::Idle
                } else {
                    FrameIn::Dead
                };
            }
            Err(_) => return FrameIn::Dead,
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return FrameIn::Dead;
    }
    // The declared length is untrusted until the bytes arrive: reserve at
    // most `MAX_PREALLOC` up front and let the vector grow as data lands.
    let mut payload = Vec::with_capacity(len.min(MAX_PREALLOC));
    match Read::take(&mut *stream, len as u64).read_to_end(&mut payload) {
        Ok(read) if read == len => {}
        _ => return FrameIn::Dead,
    }
    match String::from_utf8(payload) {
        Ok(text) => FrameIn::Payload(text),
        Err(_) => FrameIn::Dead,
    }
}

/// Serves one connection: applies the socket timeouts, registers it for
/// shutdown half-close, then loops request frame → response frame until EOF,
/// a dead peer, or `SHUTDOWN`.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    if stream.set_read_timeout(shared.read_timeout).is_err()
        || stream.set_write_timeout(shared.write_timeout).is_err()
    {
        return;
    }
    let Some(connection_id) = shared.register(&stream) else {
        return;
    };
    // Re-check after registering: a shutdown that raced the registration has
    // already swept the connection map, so parking on this socket now could
    // never be interrupted.
    if !shared.running.load(Ordering::SeqCst) {
        shared.deregister(connection_id);
        return;
    }
    serve_connection(stream, shared);
    shared.deregister(connection_id);
}

fn serve_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut session = Session::default();
    loop {
        let payload = match read_frame_idle(&mut stream) {
            FrameIn::Payload(payload) => payload,
            FrameIn::Idle => {
                if !shared.running.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            FrameIn::Eof | FrameIn::Dead => return,
        };
        let (response, shutdown) = match Request::decode(&payload) {
            Ok(request) => {
                let shutdown = request == Request::Shutdown;
                (handle_request(request, shared, &mut session), shutdown)
            }
            Err(err) => (
                Response::Error {
                    kind: "Protocol".into(),
                    message: err.to_string(),
                },
                false,
            ),
        };
        if write_frame(&mut writer, &response.encode()).is_err() {
            return;
        }
        if shutdown {
            shared.initiate_shutdown();
            return;
        }
    }
}

/// Executes one request: liveness, shutdown and tenant selection are
/// connection-level; everything else goes to the engine under the session's
/// current tenant.
fn handle_request(request: Request, shared: &Arc<Shared>, session: &mut Session) -> Response {
    match request {
        // Liveness and shutdown take no monitor state and must answer even
        // while every owner is busy with a long batched ingest — a health
        // probe with a short timeout must never see a busy server as dead,
        // and a shutdown must never queue behind a window.
        Request::Ping => Response::Pong,
        Request::Shutdown => Response::Bye,
        Request::Open(spec) => shared.engine.open(&spec),
        Request::Use(name) => {
            let response = shared.engine.use_tenant(&name);
            if response == Response::Ok {
                session.tenant = name;
            }
            response
        }
        // CLOSE does not reset any session: a connection still pointing at
        // the closed tenant simply gets typed `Tenant` errors on dispatch,
        // exactly as if it had never been opened.
        Request::Close(name) => shared.engine.close(&name),
        other => shared.engine.dispatch(&session.tenant, other),
    }
}

// The end-to-end behaviour (served ≡ in-process reports for both monitor
// types and both serve modes, tenant isolation, error relay, stalled peers,
// shutdown) is pinned by `tests/e2e.rs`, which exercises this module over
// real sockets.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::RawRow;
    use crate::tenant::EngineKind;
    use crate::ServeError;
    use sitfact_algos::STopDown;
    use sitfact_core::{Direction, Result, Schema, SchemaBuilder, Tuple, TupleId, TupleRef};
    use sitfact_prominence::{ArrivalReport, FactMonitor, MonitorConfig};

    fn monitor() -> Box<dyn StreamMonitor + Send> {
        let schema = SchemaBuilder::new("t")
            .dimension("player")
            .measure("points", Direction::HigherIsBetter)
            .build()
            .unwrap();
        let config = MonitorConfig::default().with_tau(1.0);
        Box::new(FactMonitor::new(
            schema.clone(),
            STopDown::new(&schema, config.discovery),
            config,
        ))
    }

    fn bind_mode(mode: ServeMode) -> FactServer {
        FactServer::bind_with_options(
            "127.0.0.1:0",
            monitor(),
            ServerOptions {
                mode,
                ..ServerOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn bind_reports_the_ephemeral_port() {
        let server = FactServer::bind("127.0.0.1:0", monitor()).unwrap();
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);
        assert_eq!(server.handle().addr(), addr);
    }

    #[test]
    fn handle_shutdown_unblocks_run() {
        for mode in [ServeMode::Owned, ServeMode::GlobalMutex] {
            let server = bind_mode(mode);
            let handle = server.handle();
            let join = std::thread::spawn(move || server.run());
            handle.shutdown();
            handle.shutdown(); // idempotent
            join.join().expect("no panic").expect("clean exit");
        }
    }

    #[test]
    fn poisoned_mutex_engine_relays_typed_err_and_survives_reconnects() {
        let server = bind_mode(ServeMode::GlobalMutex);
        let addr = server.local_addr();
        let shared = Arc::clone(&server.shared);
        let join = std::thread::spawn(move || server.run());

        let mut first = crate::client::Client::connect(addr).unwrap();
        first.ingest(&["Wesley"], &[10.0]).unwrap();

        // Poison the engine mutex the way a buggy request handler would:
        // panic while holding the lock.
        let poisoner = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let EngineKind::Locked(ref locked) = shared.engine.kind else {
                    unreachable!("bound in GlobalMutex mode");
                };
                let _guard = locked.state.lock().unwrap();
                panic!("deliberate poison");
            })
        };
        assert!(poisoner.join().is_err());
        {
            let EngineKind::Locked(ref locked) = shared.engine.kind else {
                unreachable!("bound in GlobalMutex mode");
            };
            assert!(locked.state.lock().is_err(), "mutex must be poisoned");
        }

        // The already-open connection gets a typed ERR, not a hangup...
        match first.stats() {
            Err(ServeError::Remote { kind, message }) => {
                assert_eq!(kind, "State");
                assert!(message.contains("poisoned"), "{message}");
            }
            other => panic!("expected a State error, got {other:?}"),
        }
        // ...and liveness still answers, because PING never takes the lock.
        first.ping().unwrap();

        // A fresh connection (client reconnect) sees the same typed error
        // instead of a dead server.
        let mut second = crate::client::Client::connect(addr).unwrap();
        match second.ingest(&["Dirk"], &[20.0]) {
            Err(ServeError::Remote { kind, .. }) => assert_eq!(kind, "State"),
            other => panic!("expected a State error, got {other:?}"),
        }
        second.ping().unwrap();

        // Shutdown still works over the wire: it never touches the monitor.
        second.shutdown().unwrap();
        join.join().expect("no panic").expect("clean exit");
    }

    /// A monitor whose ingest always panics — encode/read surfaces delegate
    /// to a real monitor so the wire paths up to the panic stay realistic.
    struct PanickingMonitor(FactMonitor<STopDown>);

    impl PanickingMonitor {
        fn boxed() -> Box<dyn StreamMonitor + Send> {
            let schema = SchemaBuilder::new("p")
                .dimension("player")
                .measure("points", Direction::HigherIsBetter)
                .build()
                .unwrap();
            let config = MonitorConfig::default().with_tau(1.0);
            Box::new(PanickingMonitor(FactMonitor::new(
                schema.clone(),
                STopDown::new(&schema, config.discovery),
                config,
            )))
        }
    }

    impl StreamMonitor for PanickingMonitor {
        fn schema(&self) -> &Schema {
            StreamMonitor::schema(&self.0)
        }
        fn config(&self) -> &MonitorConfig {
            StreamMonitor::config(&self.0)
        }
        fn len(&self) -> usize {
            StreamMonitor::len(&self.0)
        }
        fn tuple(&self, tuple_id: TupleId) -> Option<TupleRef<'_>> {
            StreamMonitor::tuple(&self.0, tuple_id)
        }
        fn encode_raw(&mut self, dims: &[&str], measures: Vec<f64>) -> Result<Tuple> {
            StreamMonitor::encode_raw(&mut self.0, dims, measures)
        }
        fn ingest(&mut self, _tuple: Tuple) -> Result<ArrivalReport> {
            panic!("deliberate ingest panic")
        }
        fn ingest_batch_slice(&mut self, _tuples: &[Tuple]) -> Result<Vec<ArrivalReport>> {
            panic!("deliberate ingest panic")
        }
    }

    #[test]
    fn owned_mode_scopes_a_panicking_monitor_to_its_tenant() {
        use crate::protocol::TenantSpec;

        let server = FactServer::bind_with_options(
            "127.0.0.1:0",
            PanickingMonitor::boxed(),
            ServerOptions::default(),
        )
        .unwrap();
        let addr = server.local_addr();
        let join = std::thread::spawn(move || server.run());

        let mut client = crate::client::Client::connect(addr).unwrap();
        // The default tenant's monitor panics on ingest: the request relays a
        // typed State error, the worker and the connection both survive.
        match client.ingest(&["Wesley"], &[10.0]) {
            Err(ServeError::Remote { kind, message }) => {
                assert_eq!(kind, "State");
                assert!(message.contains("poisoned"), "{message}");
            }
            other => panic!("expected a State error, got {other:?}"),
        }
        // The poison sticks for the tenant, on the read path too.
        match client.stats() {
            Err(ServeError::Remote { kind, .. }) => assert_eq!(kind, "State"),
            other => panic!("expected a State error, got {other:?}"),
        }
        // ...but it is scoped to the tenant: a freshly OPENed one is healthy.
        let spec = TenantSpec::new(
            "healthy",
            &["player"],
            &[("points", Direction::HigherIsBetter)],
            1.0,
        );
        client.open(&spec).unwrap();
        client.use_tenant("healthy").unwrap();
        client.ingest(&["Wesley"], &[10.0]).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.len, 1);
        assert_eq!(stats.schema, "healthy");

        client.shutdown().unwrap();
        join.join().expect("no panic").expect("clean exit");
    }

    #[test]
    fn topk_truncates_and_stats_reflect_config() {
        for mode in [ServeMode::Owned, ServeMode::GlobalMutex] {
            let server = bind_mode(mode);
            let shared = Arc::clone(&server.shared);
            let mut session = Session::default();
            // TOPK before any arrival is a state error.
            let response = handle_request(Request::TopK(3), &shared, &mut session);
            assert!(matches!(response, Response::Error { kind, .. } if kind == "State"));
            // Ingest one row, then TOPK 1 returns a single-fact prefix.
            let row = RawRow::new(&["Wesley"], &[10.0]);
            let Response::Report(full) =
                handle_request(Request::Ingest(row), &shared, &mut session)
            else {
                panic!("ingest failed");
            };
            assert!(full.facts.len() > 1);
            let Response::Report(top) = handle_request(Request::TopK(1), &shared, &mut session)
            else {
                panic!("topk failed");
            };
            assert_eq!(top.facts.len(), 1);
            assert_eq!(top.prominent_count, 1);
            assert_eq!(top.facts[0], full.facts[0]);
            let Response::Stats(stats) = handle_request(Request::Stats, &shared, &mut session)
            else {
                panic!("stats failed");
            };
            assert_eq!(stats.len, 1);
            assert_eq!(stats.schema, "t");
            assert_eq!(stats.tau, 1.0);
            assert!(stats.uncompressed_bytes > 0);
        }
    }
}
