//! End-to-end socket tests: a real `FactServer` on an ephemeral port, a real
//! `Client`, and the acceptance criterion of the service front-end — reports
//! that crossed the wire are **byte-identical** (`==`) to the reports an
//! in-process monitor produces from the same stream, for both monitor types.

use rand::prelude::*;
use sitfact_algos::STopDown;
use sitfact_core::{Direction, Schema, SchemaBuilder};
use sitfact_prominence::{
    ArrivalReport, FactMonitor, MonitorConfig, ShardedMonitor, StreamMonitor,
};
use sitfact_serve::{Client, FactServer, RawRow, ServeError, ServeMode, TenantSpec};
use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::Duration;

fn schema() -> Schema {
    SchemaBuilder::new("gamelog")
        .dimension("player")
        .dimension("team")
        .dimension("month")
        .measure("points", Direction::HigherIsBetter)
        .measure("assists", Direction::HigherIsBetter)
        .build()
        .unwrap()
}

fn config() -> MonitorConfig {
    MonitorConfig::default().with_tau(2.0).with_keep_top(16)
}

/// A reproducible raw stream: string dims from small pools, integer-ish
/// measures (ties included, so prominence ties and `keep_top` truncation are
/// exercised over the wire too).
fn raw_stream(n: usize, seed: u64) -> Vec<(Vec<String>, Vec<f64>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let dims = vec![
                format!("P{}", rng.gen_range(0..6u32)),
                format!("T{}", rng.gen_range(0..3u32)),
                format!("M{}", rng.gen_range(0..4u32)),
            ];
            let measures = vec![rng.gen_range(0..8) as f64, rng.gen_range(0..8) as f64];
            (dims, measures)
        })
        .collect()
}

fn spawn_server(monitor: Box<dyn StreamMonitor + Send>) -> (SocketAddr, JoinHandle<()>) {
    let server = FactServer::bind("127.0.0.1:0", monitor).expect("bind ephemeral port");
    let addr = server.local_addr();
    let join = std::thread::spawn(move || server.run().expect("server exits cleanly"));
    (addr, join)
}

/// Streams `rows` through a served monitor: a few per-arrival `INGEST`s, the
/// rest in `INGEST_BATCH` windows — both wire paths contribute to the
/// transcript that must match the in-process one.
fn reports_via_server(
    monitor: Box<dyn StreamMonitor + Send>,
    rows: &[(Vec<String>, Vec<f64>)],
) -> Vec<ArrivalReport> {
    let (addr, join) = spawn_server(monitor);
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping");
    let mut reports = Vec::with_capacity(rows.len());
    let singles = rows.len().min(3);
    for (dims, measures) in &rows[..singles] {
        let dims: Vec<&str> = dims.iter().map(String::as_str).collect();
        reports.push(client.ingest(&dims, measures).expect("ingest"));
    }
    for window in rows[singles..].chunks(7) {
        let window: Vec<RawRow> = window
            .iter()
            .map(|(dims, measures)| {
                let dims: Vec<&str> = dims.iter().map(String::as_str).collect();
                RawRow::new(&dims, measures)
            })
            .collect();
        reports.extend(client.ingest_batch(window).expect("ingest_batch"));
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.len as usize, rows.len());
    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
    reports
}

/// The same stream through an in-process monitor, same single/batch split.
fn reports_in_process(
    monitor: &mut dyn StreamMonitor,
    rows: &[(Vec<String>, Vec<f64>)],
) -> Vec<ArrivalReport> {
    let mut reports = Vec::with_capacity(rows.len());
    let singles = rows.len().min(3);
    for (dims, measures) in &rows[..singles] {
        let dims: Vec<&str> = dims.iter().map(String::as_str).collect();
        reports.push(monitor.ingest_raw(&dims, measures.clone()).unwrap());
    }
    for window in rows[singles..].chunks(7) {
        let window: Vec<_> = window
            .iter()
            .map(|(dims, measures)| {
                let dims: Vec<&str> = dims.iter().map(String::as_str).collect();
                monitor.encode_raw(&dims, measures.clone()).unwrap()
            })
            .collect();
        reports.extend(monitor.ingest_batch(window).unwrap());
    }
    reports
}

#[test]
fn served_fact_monitor_reports_equal_in_process() {
    let rows = raw_stream(40, 11);
    let schema = schema();
    let config = config();
    let served: Box<dyn StreamMonitor + Send> = Box::new(FactMonitor::new(
        schema.clone(),
        STopDown::new(&schema, config.discovery),
        config,
    ));
    let mut local = FactMonitor::new(
        schema.clone(),
        STopDown::new(&schema, config.discovery),
        config,
    );
    let over_the_wire = reports_via_server(served, &rows);
    let in_process = reports_in_process(&mut local, &rows);
    assert_eq!(over_the_wire, in_process);
}

#[test]
fn served_sharded_monitor_reports_equal_in_process() {
    let rows = raw_stream(40, 23);
    let make = |shards: usize| -> ShardedMonitor<STopDown> {
        ShardedMonitor::by_attribute(schema(), "team", shards, config(), STopDown::new).unwrap()
    };
    let served: Box<dyn StreamMonitor + Send> = Box::new(make(3));
    let mut local = make(3);
    let over_the_wire = reports_via_server(served, &rows);
    let in_process = reports_in_process(&mut local, &rows);
    assert_eq!(over_the_wire, in_process);
    // And — routing soundness end to end — the served *sharded* transcript
    // equals the in-process *unsharded* monitor on the same anchored config.
    let anchored = *local.config();
    let s = schema();
    let mut reference =
        FactMonitor::new(s.clone(), STopDown::new(&s, anchored.discovery), anchored);
    let unsharded = reports_in_process(&mut reference, &rows);
    assert_eq!(over_the_wire, unsharded);
}

#[test]
fn server_relays_monitor_errors_and_stays_usable() {
    let schema = schema();
    let config = config();
    let monitor: Box<dyn StreamMonitor + Send> = Box::new(FactMonitor::new(
        schema.clone(),
        STopDown::new(&schema, config.discovery),
        config,
    ));
    let (addr, join) = spawn_server(monitor);
    let mut client = Client::connect(addr).expect("connect");

    // Wrong arity → the SitFactError comes back typed, connection survives.
    let err = client.ingest(&["OnlyOneDim"], &[1.0]).unwrap_err();
    match err {
        ServeError::Remote { kind, .. } => assert_eq!(kind, "InvalidTuple"),
        other => panic!("expected a relayed monitor error, got {other}"),
    }
    // NaN measure → also rejected server-side.
    let err = client
        .ingest(&["P0", "T0", "M0"], &[f64::NAN, 1.0])
        .unwrap_err();
    assert!(matches!(err, ServeError::Remote { .. }));
    // A bad row poisons nothing: a good row still ingests, and TOPK serves
    // its report back.
    let report = client
        .ingest(&["P0", "T0", "M0"], &[5.0, 3.0])
        .expect("good row");
    assert!(!report.facts.is_empty());
    let top = client.top_k(2).expect("top_k");
    assert_eq!(
        top.facts,
        report.facts[..2.min(report.facts.len())].to_vec()
    );

    // A batch with one bad row is all-or-nothing on the server.
    let window = vec![
        RawRow::new(&["P1", "T1", "M1"], &[2.0, 2.0]),
        RawRow::new(&["P2", "T2"], &[3.0, 3.0]), // bad arity
    ];
    assert!(client.ingest_batch(window).is_err());
    let stats = client.stats().expect("stats");
    assert_eq!(stats.len, 1, "failed batch must not ingest partially");

    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
}

#[test]
fn concurrent_clients_interleave_safely() {
    // Several clients hammer one served monitor concurrently. Interleaving
    // order is nondeterministic, so per-report equality is not defined — but
    // every request must succeed and the final count must add up.
    let schema = schema();
    let config = config();
    let monitor: Box<dyn StreamMonitor + Send> = Box::new(FactMonitor::new(
        schema.clone(),
        STopDown::new(&schema, config.discovery),
        config,
    ));
    let (addr, join) = spawn_server(monitor);
    let n_clients = 3;
    let per_client = 10;
    let workers: Vec<_> = (0..n_clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..per_client {
                    let dims = [format!("P{c}"), format!("T{c}"), format!("M{i}")];
                    let dims: Vec<&str> = dims.iter().map(String::as_str).collect();
                    let report = client.ingest(&dims, &[i as f64, c as f64]).expect("ingest");
                    assert!(!report.facts.is_empty());
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }
    let mut client = Client::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.len as usize, n_clients * per_client);
    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
}

/// An in-process reference monitor built exactly like the server builds a
/// tenant from its wire spec (schema named after the tenant).
fn reference_for(spec: &TenantSpec) -> FactMonitor<STopDown> {
    let mut builder = SchemaBuilder::new(&spec.name);
    for dim in &spec.dims {
        builder = builder.dimension(dim);
    }
    for (m, dir) in &spec.measures {
        builder = builder.measure(m, *dir);
    }
    let schema = builder.build().unwrap();
    let config = MonitorConfig::default().with_tau(spec.tau);
    let config = match spec.keep_top {
        Some(k) => config.with_keep_top(k as usize),
        None => config,
    };
    FactMonitor::new(
        schema.clone(),
        STopDown::new(&schema, config.discovery),
        config,
    )
}

#[test]
fn tenants_are_isolated_and_byte_identical_to_their_references() {
    // Two tenants with different schemas and configs ingest concurrently
    // into one server; each transcript must be byte-identical to its own
    // in-process reference, and the default tenant must stay empty.
    for mode in [ServeMode::Owned, ServeMode::GlobalMutex] {
        let schema = schema();
        let config = config();
        let monitor: Box<dyn StreamMonitor + Send> = Box::new(FactMonitor::new(
            schema.clone(),
            STopDown::new(&schema, config.discovery),
            config,
        ));
        let server = FactServer::builder()
            .with_mode(mode)
            .bind("127.0.0.1:0", monitor)
            .expect("bind");
        let addr = server.local_addr();
        let join = std::thread::spawn(move || server.run().expect("server exits cleanly"));

        let gamelog = TenantSpec::new(
            "gamelog-east",
            &["player", "team", "month"],
            &[
                ("points", Direction::HigherIsBetter),
                ("assists", Direction::HigherIsBetter),
            ],
            2.0,
        );
        let mut forecast = TenantSpec::new(
            "forecast",
            &["city", "day"],
            &[("temp", Direction::LowerIsBetter)],
            1.5,
        );
        forecast.keep_top = Some(8);

        let forecast_rows: Vec<(Vec<String>, Vec<f64>)> = (0..30)
            .map(|i| {
                (
                    vec![format!("C{}", i % 4), format!("D{}", i % 7)],
                    vec![(i % 11) as f64],
                )
            })
            .collect();
        let gamelog_rows = raw_stream(30, 77);

        let workers = [
            (gamelog.clone(), gamelog_rows.clone()),
            (forecast.clone(), forecast_rows.clone()),
        ]
        .map(|(spec, rows)| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.open(&spec).expect("open");
                client.use_tenant(&spec.name).expect("use");
                let mut reports = Vec::with_capacity(rows.len());
                for window in rows.chunks(5) {
                    let window: Vec<RawRow> = window
                        .iter()
                        .map(|(dims, measures)| {
                            let dims: Vec<&str> = dims.iter().map(String::as_str).collect();
                            RawRow::new(&dims, measures)
                        })
                        .collect();
                    reports.extend(client.ingest_batch(window).expect("ingest_batch"));
                }
                let stats = client.stats().expect("stats");
                assert_eq!(stats.len as usize, rows.len());
                assert_eq!(stats.schema, spec.name);
                reports
            })
        });
        let [gamelog_served, forecast_served] = workers.map(|w| w.join().expect("client thread"));

        // Byte-identity per tenant against in-process references fed the
        // same windows.
        let mut reference = reference_for(&gamelog);
        let mut expected = Vec::new();
        for window in gamelog_rows.chunks(5) {
            let window: Vec<_> = window
                .iter()
                .map(|(dims, measures)| {
                    let dims: Vec<&str> = dims.iter().map(String::as_str).collect();
                    reference.encode_raw(&dims, measures.clone()).unwrap()
                })
                .collect();
            expected.extend(reference.ingest_batch(window).unwrap());
        }
        assert_eq!(gamelog_served, expected, "gamelog tenant transcript");

        let mut reference = reference_for(&forecast);
        let mut expected = Vec::new();
        for window in forecast_rows.chunks(5) {
            let window: Vec<_> = window
                .iter()
                .map(|(dims, measures)| {
                    let dims: Vec<&str> = dims.iter().map(String::as_str).collect();
                    reference.encode_raw(&dims, measures.clone()).unwrap()
                })
                .collect();
            expected.extend(reference.ingest_batch(window).unwrap());
        }
        assert_eq!(forecast_served, expected, "forecast tenant transcript");

        // The default tenant saw none of it.
        let mut client = Client::connect(addr).expect("connect");
        let stats = client.stats().expect("stats");
        assert_eq!(stats.len, 0, "default tenant must stay empty");
        client.shutdown().expect("shutdown");
        join.join().expect("server thread");
    }
}

#[test]
fn tenant_errors_are_typed() {
    let schema = schema();
    let config = config();
    let monitor: Box<dyn StreamMonitor + Send> = Box::new(FactMonitor::new(
        schema.clone(),
        STopDown::new(&schema, config.discovery),
        config,
    ));
    let (addr, join) = spawn_server(monitor);
    let mut client = Client::connect(addr).expect("connect");

    // USE of a never-opened tenant.
    match client.use_tenant("nope").unwrap_err() {
        ServeError::Remote { kind, message } => {
            assert_eq!(kind, "Tenant");
            assert!(message.contains("nope"), "{message}");
        }
        other => panic!("expected a Tenant error, got {other}"),
    }
    // Duplicate OPEN.
    let spec = TenantSpec::new("dup", &["d"], &[("m", Direction::HigherIsBetter)], 1.0);
    client.open(&spec).expect("first open");
    match client.open(&spec).unwrap_err() {
        ServeError::Remote { kind, .. } => assert_eq!(kind, "Tenant"),
        other => panic!("expected a Tenant error, got {other}"),
    }
    // An invalid spec relays the monitor-config error, typed.
    let mut bad = spec.clone();
    bad.name = "bad".into();
    bad.d_hat = Some(0);
    match client.open(&bad).unwrap_err() {
        ServeError::Remote { kind, .. } => assert_eq!(kind, "InvalidConfig"),
        other => panic!("expected an InvalidConfig error, got {other}"),
    }
    // The connection survives it all, still on the default tenant.
    client.ping().expect("ping");
    assert_eq!(client.stats().expect("stats").len, 0);
    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
}

#[test]
fn stalled_peer_is_dropped_and_does_not_pin_the_worker() {
    use std::io::Write as _;

    // One connection-handler worker and a short read timeout: a peer that
    // sends half a frame header and stalls must be dropped, freeing the
    // worker for the well-behaved client queued behind it.
    let schema = schema();
    let config = config();
    let monitor: Box<dyn StreamMonitor + Send> = Box::new(FactMonitor::new(
        schema.clone(),
        STopDown::new(&schema, config.discovery),
        config,
    ));
    let server = FactServer::builder()
        .with_workers(1)
        .with_read_timeout(Some(Duration::from_millis(200)))
        .bind("127.0.0.1:0", monitor)
        .expect("bind");
    let addr = server.local_addr();
    let join = std::thread::spawn(move || server.run().expect("server exits cleanly"));

    let mut stalled = std::net::TcpStream::connect(addr).expect("stalled peer connects");
    stalled.write_all(&[0x02, 0x00]).expect("half a header");
    stalled.flush().expect("flush");
    // Do NOT finish the frame: the server's read timeout must fire mid-frame
    // and drop this connection, unpinning the only worker.

    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping served despite the stalled peer");
    let report = client
        .ingest(&["P0", "T0", "M0"], &[5.0, 3.0])
        .expect("ingest");
    assert!(!report.facts.is_empty());
    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
}

#[test]
fn snapshot_reads_are_prefix_consistent_under_concurrent_ingest() {
    // A writer streams batches while a reader hammers TOPK on the same
    // tenant. Owned mode serves reads from the lock-free snapshot; every
    // observed report must be exactly some prefix-of-the-stream report the
    // writer produced (byte-identical), and the observed tuple ids must be
    // monotone — a reader can never see the stream run backwards.
    let schema = schema();
    let config = config();
    let monitor: Box<dyn StreamMonitor + Send> = Box::new(FactMonitor::new(
        schema.clone(),
        STopDown::new(&schema, config.discovery),
        config,
    ));
    let (addr, join) = spawn_server(monitor);

    let rows = raw_stream(120, 5);
    let writer = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("writer connects");
        let mut reports = Vec::with_capacity(rows.len());
        for window in rows.chunks(6) {
            let window: Vec<RawRow> = window
                .iter()
                .map(|(dims, measures)| {
                    let dims: Vec<&str> = dims.iter().map(String::as_str).collect();
                    RawRow::new(&dims, measures)
                })
                .collect();
            reports.extend(client.ingest_batch(window).expect("ingest_batch"));
        }
        reports
    });
    let reader = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("reader connects");
        let mut observed = Vec::new();
        for _ in 0..200 {
            match client.top_k(1 << 20) {
                Ok(report) => observed.push(report),
                // Before the first arrival lands, TOPK is a typed State
                // error — tolerated, the stream just hasn't started.
                Err(ServeError::Remote { kind, .. }) => assert_eq!(kind, "State"),
                Err(other) => panic!("reader failed: {other}"),
            }
        }
        observed
    });
    let reports = writer.join().expect("writer thread");
    let observed = reader.join().expect("reader thread");

    let mut last_seen = 0;
    for report in &observed {
        let id = report.tuple_id as usize;
        assert!(
            id >= last_seen,
            "reader observed the stream running backwards: {id} after {last_seen}"
        );
        last_seen = id;
        // `k` is far above keep_top, so the observed report must be the
        // writer's report for that arrival, byte for byte.
        assert_eq!(report, &reports[id], "snapshot read for tuple {id}");
    }

    let mut client = Client::connect(addr).expect("connect");
    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
}

fn temp_data_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sitfact-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn default_monitor() -> Box<dyn StreamMonitor + Send> {
    let schema = schema();
    let config = config();
    Box::new(FactMonitor::new(
        schema.clone(),
        STopDown::new(&schema, config.discovery),
        config,
    ))
}

fn spawn_durable_server(
    data_dir: &std::path::Path,
    mode: ServeMode,
) -> (SocketAddr, JoinHandle<()>) {
    let server = FactServer::builder()
        .with_mode(mode)
        .with_data_dir(data_dir)
        .bind("127.0.0.1:0", default_monitor())
        .expect("bind durable server");
    let addr = server.local_addr();
    let join = std::thread::spawn(move || server.run().expect("server exits cleanly"));
    (addr, join)
}

fn ingest_windows(client: &mut Client, rows: &[(Vec<String>, Vec<f64>)]) -> Vec<ArrivalReport> {
    let mut reports = Vec::with_capacity(rows.len());
    for window in rows.chunks(5) {
        let window: Vec<RawRow> = window
            .iter()
            .map(|(dims, measures)| {
                let dims: Vec<&str> = dims.iter().map(String::as_str).collect();
                RawRow::new(&dims, measures)
            })
            .collect();
        reports.extend(client.ingest_batch(window).expect("ingest_batch"));
    }
    reports
}

#[test]
fn wal_stats_are_zero_without_a_data_dir() {
    let (addr, join) = spawn_server(default_monitor());
    let mut client = Client::connect(addr).expect("connect");
    client
        .ingest(&["P0", "T0", "M0"], &[5.0, 3.0])
        .expect("ingest");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.wal_segments, 0);
    assert_eq!(stats.wal_bytes, 0);
    assert_eq!(stats.wal_synced, 0);
    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
}

#[test]
fn killed_server_recovers_byte_identical_state_from_its_data_dir() {
    // The acceptance test of the durability layer, over real sockets: a
    // server ingests with a data dir, dies without any orderly state
    // handoff (per-append fsync means the log already holds everything
    // acknowledged), and a new process bound to the same directory must
    // answer STATS and TOPK byte-identically — then continue the stream
    // exactly like a monitor that never crashed.
    for mode in [ServeMode::Owned, ServeMode::GlobalMutex] {
        let tag = match mode {
            ServeMode::Owned => "recover-owned",
            ServeMode::GlobalMutex => "recover-locked",
        };
        let data_dir = temp_data_dir(tag);
        let rows = raw_stream(60, 42);

        // First life: ingest the first half, record what a client saw last.
        let (addr, join) = spawn_durable_server(&data_dir, mode);
        let mut client = Client::connect(addr).expect("connect");
        let first_half = ingest_windows(&mut client, &rows[..30]);
        let pre_kill_top = client.top_k(1 << 20).expect("topk pre-kill");
        let pre_kill_stats = client.stats().expect("stats pre-kill");
        assert_eq!(pre_kill_stats.wal_synced, 30, "every row is synced");
        assert!(pre_kill_stats.wal_bytes > 0);
        assert!(pre_kill_stats.wal_segments >= 1);
        client.shutdown().expect("shutdown");
        join.join().expect("server thread");
        drop(client);

        // Second life: same directory, fresh process, fresh monitor.
        let (addr, join) = spawn_durable_server(&data_dir, mode);
        let mut client = Client::connect(addr).expect("reconnect");
        assert_eq!(
            client.top_k(1 << 20).expect("topk post-recovery"),
            pre_kill_top,
            "recovered TOPK must be byte-identical"
        );
        assert_eq!(
            client.stats().expect("stats post-recovery"),
            pre_kill_stats,
            "recovered STATS (WAL counters included) must be byte-identical"
        );

        // The recovered monitor continues the stream exactly like one that
        // never crashed: compare the full transcript with an in-process
        // reference fed the same windows without interruption.
        let second_half = ingest_windows(&mut client, &rows[30..]);
        client.shutdown().expect("shutdown");
        join.join().expect("server thread");

        let schema = schema();
        let config = config();
        let mut reference = FactMonitor::new(
            schema.clone(),
            STopDown::new(&schema, config.discovery),
            config,
        );
        let expected = reports_in_process_windows(&mut reference, &rows);
        assert_eq!(
            first_half
                .iter()
                .chain(&second_half)
                .cloned()
                .collect::<Vec<_>>(),
            expected,
            "crash + recovery must not perturb a single report"
        );
        let _ = std::fs::remove_dir_all(&data_dir);
    }
}

/// Like [`reports_in_process`], but windows of 5 to match
/// [`ingest_windows`].
fn reports_in_process_windows(
    monitor: &mut dyn StreamMonitor,
    rows: &[(Vec<String>, Vec<f64>)],
) -> Vec<ArrivalReport> {
    let mut reports = Vec::with_capacity(rows.len());
    for window in rows.chunks(5) {
        let window: Vec<_> = window
            .iter()
            .map(|(dims, measures)| {
                let dims: Vec<&str> = dims.iter().map(String::as_str).collect();
                monitor.encode_raw(&dims, measures.clone()).unwrap()
            })
            .collect();
        reports.extend(monitor.ingest_batch(window).unwrap());
    }
    reports
}

#[test]
fn close_evicts_a_tenant_and_durable_state_survives_it() {
    let data_dir = temp_data_dir("close");
    let (addr, join) = spawn_durable_server(&data_dir, ServeMode::Owned);
    let mut client = Client::connect(addr).expect("connect");

    // CLOSE of a never-opened tenant is a typed error.
    match client.close("ghost").unwrap_err() {
        ServeError::Remote { kind, message } => {
            assert_eq!(kind, "Tenant");
            assert!(message.contains("ghost"), "{message}");
        }
        other => panic!("expected a Tenant error, got {other}"),
    }

    let spec = TenantSpec::new(
        "east",
        &["player", "team"],
        &[("points", Direction::HigherIsBetter)],
        1.0,
    );
    client.open(&spec).expect("open");
    client.use_tenant("east").expect("use");
    let report = client.ingest(&["Wes", "BOS"], &[31.0]).expect("ingest");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.len, 1);
    assert_eq!(stats.wal_synced, 1, "tenant WALs are per-tenant");

    client.close("east").expect("close");
    // The session still points at the evicted tenant: dispatch now yields
    // the same typed error an unknown tenant would.
    match client.stats().unwrap_err() {
        ServeError::Remote { kind, .. } => assert_eq!(kind, "Tenant"),
        other => panic!("expected a Tenant error, got {other}"),
    }
    match client.use_tenant("east").unwrap_err() {
        ServeError::Remote { kind, .. } => assert_eq!(kind, "Tenant"),
        other => panic!("expected a Tenant error, got {other}"),
    }

    // Re-OPEN recovers the tenant from its directory: the eviction freed
    // memory, not history.
    client.open(&spec).expect("re-open recovers");
    client.use_tenant("east").expect("use again");
    let stats = client.stats().expect("stats after recovery");
    assert_eq!(stats.len, 1);
    assert_eq!(stats.wal_synced, 1);
    assert_eq!(
        client.top_k(1 << 20).expect("topk after recovery"),
        report,
        "the recovered tenant's last report survives CLOSE"
    );

    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn shutdown_is_not_blocked_by_idle_connections() {
    // An idle keep-alive client must not pin the server: shutdown half-closes
    // every live connection, so run()'s worker join completes immediately
    // instead of waiting for the idle peer to hang up.
    let schema = schema();
    let config = config();
    let monitor: Box<dyn StreamMonitor + Send> = Box::new(FactMonitor::new(
        schema.clone(),
        STopDown::new(&schema, config.discovery),
        config,
    ));
    let (addr, join) = spawn_server(monitor);
    let mut idle = Client::connect(addr).expect("idle client connects");
    idle.ping().expect("idle client is live");
    // …and now says nothing further, holding its connection open.
    let mut active = Client::connect(addr).expect("active client connects");
    active.shutdown().expect("shutdown acknowledged");
    // Must return promptly; before connection tracking this joined forever.
    join.join()
        .expect("server thread exits with an idle peer attached");
    // The idle client's connection was closed out from under it.
    assert!(idle.ping().is_err());
}
