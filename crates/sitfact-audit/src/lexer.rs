//! A small hand-rolled Rust lexer: just enough to blank out strings, char
//! literals and comments so the lint rules only ever match real code, while
//! collecting string literals (for the drift checks) and line comments (for
//! `// audit: allow(...)` markers).
//!
//! This is deliberately not a full Rust parser — it understands string
//! escapes, raw strings (`r"…"`, `r#"…"#`), byte strings, nested block
//! comments and the char-literal/lifetime ambiguity, which covers everything
//! the rules need.

/// A string literal found in the source.
#[derive(Debug, Clone)]
pub struct StringLit {
    /// The literal's content (between the quotes, escapes unprocessed).
    pub content: String,
    /// Byte offset of the opening quote in the source.
    pub offset: usize,
}

/// A line comment found in the source.
#[derive(Debug, Clone)]
pub struct LineComment {
    /// The comment's text after the `//` (or `///`, `//!`), untrimmed.
    pub text: String,
    /// 0-based line index of the comment.
    pub line: usize,
    /// Byte offset of the `//` within the source.
    pub offset: usize,
}

/// The lexed view of one source file.
#[derive(Debug)]
pub struct LexedFile {
    /// The source with every string/char literal's content and every comment
    /// blanked to spaces (newlines preserved, so byte offsets and line
    /// numbers still agree with the original).
    pub masked: String,
    /// Every string literal, in source order.
    pub strings: Vec<StringLit>,
    /// Every line comment, in source order.
    pub comments: Vec<LineComment>,
    /// Byte offset of the start of each line (line 0 starts at 0).
    pub line_starts: Vec<usize>,
}

impl LexedFile {
    /// 0-based line index of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(line) => line,
            Err(next) => next.saturating_sub(1),
        }
    }

    /// The masked text of a 0-based line (without the trailing newline).
    pub fn masked_line(&self, line: usize) -> &str {
        let start = match self.line_starts.get(line) {
            Some(&s) => s,
            None => return "",
        };
        let end = self
            .line_starts
            .get(line + 1)
            .map_or(self.masked.len(), |&e| e);
        self.masked[start..end].trim_end_matches('\n')
    }
}

/// Lexes `source`, blanking non-code regions. See [`LexedFile`].
pub fn lex(source: &str) -> LexedFile {
    let bytes = source.as_bytes();
    let mut masked = bytes.to_vec();
    let mut strings = Vec::new();
    let mut comments = Vec::new();
    let mut line_starts = vec![0usize];
    for (pos, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            line_starts.push(pos + 1);
        }
    }
    let line_of = |offset: usize| match line_starts.binary_search(&offset) {
        Ok(line) => line,
        Err(next) => next.saturating_sub(1),
    };

    let blank = |masked: &mut [u8], range: std::ops::Range<usize>| {
        for b in &mut masked[range] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };

    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment (incl. doc comments). Blank to end of line.
                let end = bytes[i..]
                    .iter()
                    .position(|&b| b == b'\n')
                    .map_or(bytes.len(), |n| i + n);
                comments.push(LineComment {
                    text: source[i + 2..end].to_string(),
                    line: line_of(i),
                    offset: i,
                });
                blank(&mut masked, i..end);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, possibly nested.
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut masked, start..i);
            }
            b'"' => {
                i = scan_string(bytes, source, i, &mut masked, &mut strings, blank);
            }
            b'r' | b'b' if !prev_is_ident(bytes, i) => {
                // Possible raw/byte string prefix: r"…", r#"…"#, b"…", br#"…"#.
                let is_raw =
                    bytes[i] == b'r' || (bytes[i] == b'b' && bytes.get(i + 1) == Some(&b'r'));
                let mut j = if bytes[i] == b'b' && bytes.get(i + 1) == Some(&b'r') {
                    i + 2
                } else {
                    i + 1
                };
                let mut hashes = 0usize;
                while is_raw && bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    i = if is_raw {
                        scan_raw_string(bytes, source, j, hashes, &mut masked, &mut strings, blank)
                    } else {
                        scan_string(bytes, source, j, &mut masked, &mut strings, blank)
                    };
                } else {
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal vs lifetime. `'\…'` is always a char; `'x'` is
                // a char when the closing quote follows immediately; anything
                // else (`'a`, `'static`) is a lifetime.
                if bytes.get(i + 1) == Some(&b'\\') {
                    let mut j = i + 2;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                    blank(&mut masked, i + 1..j);
                    i = (j + 1).min(bytes.len());
                } else {
                    // Find the end of the next UTF-8 scalar after the quote.
                    let next_end = source[i + 1..]
                        .chars()
                        .next()
                        .map_or(i + 1, |c| i + 1 + c.len_utf8());
                    if bytes.get(next_end) == Some(&b'\'') {
                        blank(&mut masked, i + 1..next_end);
                        i = next_end + 1;
                    } else {
                        i += 1; // lifetime
                    }
                }
            }
            _ => i += 1,
        }
    }

    LexedFile {
        // The lexer only ever replaces whole ASCII bytes inside regions it
        // blanks wholesale, so the result is still valid UTF-8.
        masked: String::from_utf8_lossy(&masked).into_owned(),
        strings,
        comments,
        line_starts,
    }
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

fn scan_string(
    bytes: &[u8],
    source: &str,
    open: usize,
    masked: &mut [u8],
    strings: &mut Vec<StringLit>,
    blank: impl Fn(&mut [u8], std::ops::Range<usize>),
) -> usize {
    let mut j = open + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => break,
            _ => j += 1,
        }
    }
    let close = j.min(bytes.len());
    strings.push(StringLit {
        content: source.get(open + 1..close).unwrap_or_default().to_string(),
        offset: open,
    });
    blank(masked, open + 1..close);
    (close + 1).min(bytes.len())
}

fn scan_raw_string(
    bytes: &[u8],
    source: &str,
    open: usize,
    hashes: usize,
    masked: &mut [u8],
    strings: &mut Vec<StringLit>,
    blank: impl Fn(&mut [u8], std::ops::Range<usize>),
) -> usize {
    let mut j = open + 1;
    let close_pat: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    while j < bytes.len() {
        if bytes[j] == b'"' && bytes[j..].starts_with(&close_pat) {
            break;
        }
        j += 1;
    }
    let close = j.min(bytes.len());
    strings.push(StringLit {
        content: source.get(open + 1..close).unwrap_or_default().to_string(),
        offset: open,
    });
    blank(masked, open + 1..close);
    (close + close_pat.len()).min(bytes.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let x = \"unsafe panic!\"; // unsafe here too\nunsafe { x.unwrap() }\n";
        let lexed = lex(src);
        assert!(!lexed.masked[..src.find('\n').expect("newline")].contains("unsafe"));
        assert!(lexed.masked.contains("unsafe { x.unwrap() }"));
        assert_eq!(lexed.strings.len(), 1);
        assert_eq!(lexed.strings[0].content, "unsafe panic!");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].text.trim(), "unsafe here too");
    }

    #[test]
    fn doc_comments_and_doctests_do_not_leak_code() {
        let src = "/// Example:\n/// ```\n/// foo().unwrap();\n/// ```\nfn foo() {}\n";
        let lexed = lex(src);
        assert!(!lexed.masked.contains("unwrap"));
        assert!(lexed.masked.contains("fn foo() {}"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let src = r###"let a = r#"panic! "quoted" unsafe"#; let b = "esc \" panic!";"###;
        let lexed = lex(src);
        assert!(!lexed.masked.contains("panic!"));
        assert!(!lexed.masked.contains("unsafe"));
        assert_eq!(lexed.strings.len(), 2);
        assert_eq!(lexed.strings[0].content, r#"panic! "quoted" unsafe"#);
    }

    #[test]
    fn char_literals_versus_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; let l = 'x'; }";
        let lexed = lex(src);
        // The quote char literal must not open a string.
        assert!(lexed.strings.is_empty());
        assert!(lexed.masked.contains("fn f<'a>(x: &'a str)"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner unsafe */ still comment */ fn ok() {}";
        let lexed = lex(src);
        assert!(!lexed.masked.contains("unsafe"));
        assert!(lexed.masked.contains("fn ok() {}"));
    }

    #[test]
    fn line_bookkeeping() {
        let src = "a\nbb\nccc\n";
        let lexed = lex(src);
        assert_eq!(lexed.line_of(0), 0);
        assert_eq!(lexed.line_of(2), 1);
        assert_eq!(lexed.line_of(5), 2);
        assert_eq!(lexed.masked_line(1), "bb");
    }
}
