//! `audit` — the CLI front end of [`sitfact_audit`].
//!
//! ```text
//! audit [--root DIR] [--report FILE]
//! ```
//!
//! Walks the workspace at `--root` (default: the current directory), prints
//! every violation, optionally writes the same report to `--report`, and
//! exits non-zero when anything is wrong. The `analyze` step of
//! `scripts/ci_steps.sh` runs it over the real tree and uploads the report
//! as a CI artifact.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage(problem: &str) -> ExitCode {
    eprintln!("audit: {problem}");
    eprintln!("usage: audit [--root DIR] [--report FILE]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut report_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(value) => root = PathBuf::from(value),
                None => return usage("--root needs a directory argument"),
            },
            "--report" => match args.next() {
                Some(value) => report_path = Some(PathBuf::from(value)),
                None => return usage("--report needs a file argument"),
            },
            "--help" | "-h" => {
                println!("usage: audit [--root DIR] [--report FILE]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let outcome = match sitfact_audit::run_audit(&root) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("audit: cannot walk {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    let mut report = String::new();
    for violation in &outcome.violations {
        let _ = writeln!(report, "{violation}");
    }
    let verdict = if outcome.violations.is_empty() {
        format!("audit: clean ({} files checked)", outcome.files_checked)
    } else {
        format!(
            "audit: {} violation(s) across {} files checked",
            outcome.violations.len(),
            outcome.files_checked
        )
    };
    let _ = writeln!(report, "{verdict}");

    print!("{report}");
    if let Some(path) = report_path {
        if let Err(err) = std::fs::write(&path, &report) {
            eprintln!("audit: cannot write report to {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }

    if outcome.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
