//! Cross-file doc/code drift checks, in the spirit of `ci_steps.sh parity`:
//! prose that documents a machine-checkable contract must match the code
//! that implements it.
//!
//! * **Wire grammar**: the fenced ```text grammar block in ROADMAP.md must
//!   use exactly the verbs `sitfact-serve::protocol` declares in its
//!   `REQUEST_VERBS` / `RESPONSE_VERBS` constants.
//! * **Bench schemas**: every `BENCH_*.json` schema documented in
//!   `crates/sitfact-bench/README.md` must list exactly the keys the
//!   corresponding fig binary emits.

use crate::lexer::lex;
use crate::rules::Violation;
use std::collections::BTreeSet;
use std::path::Path;

const ROADMAP: &str = "ROADMAP.md";
const PROTOCOL: &str = "crates/sitfact-serve/src/protocol.rs";
const BENCH_README: &str = "crates/sitfact-bench/README.md";

fn read(root: &Path, rel: &str) -> Result<String, Violation> {
    std::fs::read_to_string(root.join(rel)).map_err(|err| Violation {
        rule: "drift-io",
        path: rel.to_string(),
        line: 0,
        message: format!("cannot read: {err}"),
    })
}

/// Quoted ALL-CAPS tokens (≥ 2 chars of `A-Z_`) in a grammar block — the
/// verbs, skipping the one-letter record tags (`"R"`, `"F"`).
fn quoted_verbs(block: &str) -> BTreeSet<String> {
    let mut verbs = BTreeSet::new();
    let mut rest = block;
    while let Some(open) = rest.find('"') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('"') else { break };
        let token = &after[..close];
        if token.len() >= 2 && token.bytes().all(|b| b.is_ascii_uppercase() || b == b'_') {
            verbs.insert(token.to_string());
        }
        rest = &after[close + 1..];
    }
    verbs
}

/// The fenced ```text block of ROADMAP.md that contains the wire grammar.
fn grammar_block(roadmap: &str) -> Option<String> {
    let mut in_text_fence = false;
    let mut block = String::new();
    for line in roadmap.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("```") {
            if in_text_fence {
                if block.contains("request") && block.contains(":=") {
                    return Some(block);
                }
                block.clear();
                in_text_fence = false;
            } else if trimmed == "```text" {
                in_text_fence = true;
            }
            continue;
        }
        if in_text_fence {
            block.push_str(line);
            block.push('\n');
        }
    }
    None
}

/// String literals of a bracketed const array, located by the constant's
/// name in the masked source.
fn const_array_strings(source: &str, name: &str) -> Option<BTreeSet<String>> {
    let lexed = lex(source);
    let at = lexed.masked.find(name)?;
    // Skip the type annotation (`: [&str; N]`) — the array literal is the
    // first bracket after the `=`.
    let eq = at + lexed.masked[at..].find('=')?;
    let open = eq + lexed.masked[eq..].find('[')?;
    let close = open + lexed.masked[open..].find(']')?;
    Some(
        lexed
            .strings
            .iter()
            .filter(|s| s.offset > open && s.offset < close)
            .map(|s| s.content.clone())
            .collect(),
    )
}

/// Checks the ROADMAP wire-grammar block against the protocol constants.
pub fn check_grammar(root: &Path) -> Vec<Violation> {
    let (roadmap, protocol) = match (read(root, ROADMAP), read(root, PROTOCOL)) {
        (Ok(r), Ok(p)) => (r, p),
        (r, p) => return r.err().into_iter().chain(p.err()).collect(),
    };
    let Some(block) = grammar_block(&roadmap) else {
        return vec![Violation {
            rule: "grammar-drift",
            path: ROADMAP.to_string(),
            line: 0,
            message: "no fenced ```text block containing the wire grammar (`request :=`)".into(),
        }];
    };
    let mut code_verbs = BTreeSet::new();
    for name in ["REQUEST_VERBS", "RESPONSE_VERBS"] {
        match const_array_strings(&protocol, name) {
            Some(verbs) => code_verbs.extend(verbs),
            None => {
                return vec![Violation {
                    rule: "grammar-drift",
                    path: PROTOCOL.to_string(),
                    line: 0,
                    message: format!("protocol module does not declare `{name}`"),
                }]
            }
        }
    }
    let doc_verbs = quoted_verbs(&block);
    let mut violations = Vec::new();
    for missing in code_verbs.difference(&doc_verbs) {
        violations.push(Violation {
            rule: "grammar-drift",
            path: ROADMAP.to_string(),
            line: 0,
            message: format!(
                "the wire-grammar block does not mention verb \"{missing}\" declared in \
                 {PROTOCOL}"
            ),
        });
    }
    for extra in doc_verbs.difference(&code_verbs) {
        violations.push(Violation {
            rule: "grammar-drift",
            path: ROADMAP.to_string(),
            line: 0,
            message: format!(
                "the wire-grammar block mentions verb \"{extra}\", which {PROTOCOL} does \
                 not declare"
            ),
        });
    }
    violations
}

/// A key a fig binary emits. Keys interpolated at runtime
/// (`speedup_at_{n}_shards`) become prefix/suffix wildcards.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct EmittedKey {
    prefix: String,
    /// `None` for literal keys; `Some(suffix)` for interpolated ones.
    suffix: Option<String>,
}

impl EmittedKey {
    fn matches(&self, documented: &str) -> bool {
        match &self.suffix {
            None => self.prefix == documented,
            Some(suffix) => {
                documented.len() >= self.prefix.len() + suffix.len()
                    && documented.starts_with(&self.prefix)
                    && documented.ends_with(suffix.as_str())
            }
        }
    }
}

impl std::fmt::Display for EmittedKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.suffix {
            None => write!(f, "{}", self.prefix),
            Some(suffix) => write!(f, "{}{{…}}{}", self.prefix, suffix),
        }
    }
}

/// JSON keys a fig binary emits: occurrences of `\"<key>\":` inside its
/// format strings (the quotes are escaped in the Rust source).
fn emitted_keys(source: &str) -> BTreeSet<EmittedKey> {
    let mut keys = BTreeSet::new();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    while i + 1 < bytes.len() {
        if bytes[i] != b'\\' || bytes[i + 1] != b'"' {
            i += 1;
            continue;
        }
        let start = i + 2;
        let mut j = start;
        while j + 1 < bytes.len() && !(bytes[j] == b'\\' && bytes[j + 1] == b'"') {
            j += 1;
        }
        if j + 2 < bytes.len() && bytes[j + 2] == b':' {
            let raw = &source[start..j];
            if !raw.is_empty()
                && raw
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b"_{}".contains(&b))
            {
                let key = match (raw.find('{'), raw.rfind('}')) {
                    (Some(open), Some(close)) if close > open => EmittedKey {
                        prefix: raw[..open].to_string(),
                        suffix: Some(raw[close + 1..].to_string()),
                    },
                    _ => EmittedKey {
                        prefix: raw.to_string(),
                        suffix: None,
                    },
                };
                keys.insert(key);
            }
        }
        i = j + 2;
    }
    keys
}

/// JSON keys documented in a fenced ```json schema block: `"key":`.
fn documented_keys(block: &str) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    let bytes = block.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let start = i + 1;
        let mut j = start;
        while j < bytes.len() && bytes[j] != b'"' {
            j += 1;
        }
        if j + 1 < bytes.len() && bytes[j + 1] == b':' {
            let key = &block[start..j];
            if !key.is_empty() && key.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_') {
                keys.insert(key.to_string());
            }
        }
        i = j + 1;
    }
    keys
}

/// The `(fig binary, schema block)` pairs the bench README documents:
/// sections headed ``## `<bin>` and `<BENCH_…>.json` `` followed by a fenced
/// ```json block.
fn readme_schemas(readme: &str) -> Vec<(String, String)> {
    let mut sections = Vec::new();
    let mut current_bin: Option<String> = None;
    let mut in_json = false;
    let mut block = String::new();
    for line in readme.lines() {
        let trimmed = line.trim();
        if let Some(heading) = trimmed.strip_prefix("## `") {
            // `fig_x` and `BENCH_x.json`
            if let Some((bin, rest)) = heading.split_once('`') {
                current_bin = rest.contains(".json").then(|| bin.to_string());
            }
            continue;
        }
        if trimmed == "```json" && current_bin.is_some() {
            in_json = true;
            block.clear();
            continue;
        }
        if in_json {
            if trimmed.starts_with("```") {
                in_json = false;
                if let Some(bin) = current_bin.take() {
                    sections.push((bin, std::mem::take(&mut block)));
                }
            } else {
                block.push_str(line);
                block.push('\n');
            }
        }
    }
    sections
}

/// Checks every documented `BENCH_*.json` schema against the keys its fig
/// binary actually emits.
pub fn check_bench_schemas(root: &Path) -> Vec<Violation> {
    let readme = match read(root, BENCH_README) {
        Ok(readme) => readme,
        Err(violation) => return vec![violation],
    };
    let sections = readme_schemas(&readme);
    if sections.is_empty() {
        return vec![Violation {
            rule: "bench-schema-drift",
            path: BENCH_README.to_string(),
            line: 0,
            message: "no `## \\`fig_…\\` and \\`BENCH_….json\\`` section with a ```json \
                      schema block found"
                .into(),
        }];
    }
    let mut violations = Vec::new();
    for (bin, block) in sections {
        let bin_rel = format!("crates/sitfact-bench/src/bin/{bin}.rs");
        let source = match read(root, &bin_rel) {
            Ok(source) => source,
            Err(violation) => {
                violations.push(violation);
                continue;
            }
        };
        let emitted = emitted_keys(&source);
        let documented = documented_keys(&block);
        for key in &documented {
            if !emitted.iter().any(|e| e.matches(key)) {
                violations.push(Violation {
                    rule: "bench-schema-drift",
                    path: BENCH_README.to_string(),
                    line: 0,
                    message: format!(
                        "schema for `{bin}` documents key \"{key}\", which {bin_rel} never \
                         emits"
                    ),
                });
            }
        }
        for key in &emitted {
            if !documented.iter().any(|d| key.matches(d)) {
                violations.push(Violation {
                    rule: "bench-schema-drift",
                    path: bin_rel.clone(),
                    line: 0,
                    message: format!(
                        "emits key \"{key}\", which the `{bin}` schema in {BENCH_README} \
                         does not document"
                    ),
                });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_are_extracted_from_grammar_blocks() {
        let block = "request := \"PING\" | \"TOPK\" TAB k\nreport := \"R\" TAB id\n";
        let verbs = quoted_verbs(block);
        assert!(verbs.contains("PING"));
        assert!(verbs.contains("TOPK"));
        assert!(!verbs.contains("R"), "one-letter record tags are not verbs");
    }

    #[test]
    fn const_arrays_are_read_through_the_lexer() {
        let source =
            "// not [\"THIS\"]\npub const REQUEST_VERBS: [&str; 2] = [\"PING\", \"STATS\"];\n";
        let verbs = const_array_strings(source, "REQUEST_VERBS").expect("array found");
        assert_eq!(
            verbs.into_iter().collect::<Vec<_>>(),
            vec!["PING".to_string(), "STATS".to_string()]
        );
    }

    #[test]
    fn emitted_keys_handle_interpolation() {
        let source = r#"format!("{{\"bench\": 1, \"speedup_at_{n}_shards\": {{}}}}")"#;
        let keys = emitted_keys(source);
        assert!(keys.iter().any(|k| k.matches("bench")));
        assert!(keys.iter().any(|k| k.matches("speedup_at_4_shards")));
        assert!(!keys.iter().any(|k| k.matches("speedup_elsewhere")));
    }

    #[test]
    fn documented_keys_skip_values_and_comments() {
        let block = "{\n  \"bench\": \"ingest\",   // the experiment\n  \"n\": 5\n}\n";
        let keys = documented_keys(block);
        assert_eq!(keys.len(), 2);
        assert!(keys.contains("bench") && keys.contains("n"));
        assert!(!keys.contains("ingest"));
    }
}
