#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `sitfact-audit` — repo-specific static analysis for the workspace.
//!
//! The auditor walks every `.rs` file under a root, lexes it with a small
//! hand-rolled lexer ([`lexer`]) so that strings, char literals, comments
//! and doc-comment code fences never produce matches, and enforces the
//! workspace's coding contracts ([`rules`]):
//!
//! * `no-unsafe` — no `unsafe` anywhere, plus `#![forbid(unsafe_code)]` in
//!   every crate root (`forbid-unsafe-header`);
//! * `no-panic` — no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in
//!   non-test library code;
//! * `no-thread-spawn` — `sitfact_core::pool` is the only thread spawner;
//! * `no-wallclock` — `SystemTime::now`/`Instant::now` stay in bench/serve.
//!
//! A site can opt out with `// audit: allow(<rule>): <reason>`; reasonless
//! or unused markers are themselves violations (`allow-syntax`,
//! `stale-allow`).
//!
//! On top of the per-file rules, [`drift`] cross-checks prose against code:
//! the ROADMAP wire-grammar block against the verb constants in
//! `sitfact-serve::protocol`, and the bench README's `BENCH_*.json` schemas
//! against the keys the fig binaries emit.
//!
//! Run it with `cargo run -p sitfact-audit` (the `analyze` CI step does).

pub mod drift;
pub mod lexer;
pub mod rules;

pub use rules::Violation;

use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into: build output, VCS metadata, and the
/// auditor's own deliberately-violating test fixtures.
const SKIP_DIRS: [&str; 3] = ["target", "fixtures", "node_modules"];

fn should_skip(name: &str) -> bool {
    name.starts_with('.') || SKIP_DIRS.contains(&name)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if !should_skip(&name) {
                walk(&path, files)?;
            }
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, with forward slashes regardless of platform.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// The outcome of one audit run.
#[derive(Debug)]
pub struct AuditReport {
    /// Number of `.rs` files inspected.
    pub files_checked: usize,
    /// Every violation found, in path/line order.
    pub violations: Vec<Violation>,
}

/// Audits the workspace rooted at `root`: every `.rs` file under it (minus
/// `target/`, dot-directories and fixture trees) plus the cross-file drift
/// checks. I/O failures on the root walk are errors; unreadable individual
/// files are reported as `audit-io` violations so one bad file cannot hide
/// the rest of the report.
pub fn run_audit(root: &Path) -> io::Result<AuditReport> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();

    let mut violations = Vec::new();
    for path in &files {
        let rel = relative(root, path);
        match std::fs::read_to_string(path) {
            Ok(source) => violations.extend(rules::check_file(&rel, &source)),
            Err(err) => violations.push(Violation {
                rule: "audit-io",
                path: rel,
                line: 0,
                message: format!("cannot read: {err}"),
            }),
        }
    }
    violations.extend(drift::check_grammar(root));
    violations.extend(drift::check_bench_schemas(root));
    violations.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });

    Ok(AuditReport {
        files_checked: files.len(),
        violations,
    })
}
