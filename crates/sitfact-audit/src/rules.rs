//! The per-file lint rules and the `// audit: allow(<rule>)` allowlist.
//!
//! Every rule operates on the *masked* source produced by [`crate::lexer`],
//! so matches inside strings, char literals, comments and doc-comment code
//! fences never count. Rules are scoped by path (see [`scopes_for`]); the
//! test-only rules additionally skip `#[cfg(test)]` regions.

use crate::lexer::{lex, LexedFile};

/// One finding of the auditor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violated rule, e.g. `"no-panic"`.
    pub rule: &'static str,
    /// Path of the offending file, relative to the audited root.
    pub path: String,
    /// 1-based line number (0 for whole-file rules).
    pub line: usize,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.path, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.path, self.line, self.rule, self.message
            )
        }
    }
}

/// Which line-anchored rules apply to a file, by its root-relative path.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scopes {
    /// `unsafe` is forbidden (everywhere, test code included).
    pub no_unsafe: bool,
    /// The file is a crate root that must carry `#![forbid(unsafe_code)]`.
    pub forbid_header: bool,
    /// `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` forbidden outside
    /// `#[cfg(test)]` regions.
    pub no_panic: bool,
    /// `thread::spawn` forbidden (the vendored pool is the only spawner).
    pub no_thread_spawn: bool,
    /// `SystemTime::now`/`Instant::now` forbidden (bench/serve own timing).
    pub no_wallclock: bool,
}

fn has_component(path: &str, component: &str) -> bool {
    path.split('/').any(|c| c == component)
}

/// Decides rule applicability from a root-relative path (forward slashes).
pub fn scopes_for(path: &str) -> Scopes {
    if !path.ends_with(".rs") {
        return Scopes::default();
    }
    let vendor = path.starts_with("vendor/");
    let bench_crate = path.starts_with("crates/sitfact-bench/");
    let serve_crate = path.starts_with("crates/sitfact-serve/");
    let test_code = has_component(path, "tests") || has_component(path, "benches");
    let example = has_component(path, "examples");
    let bin = path.contains("/src/bin/");
    let lib_source =
        (path.starts_with("crates/") && path.contains("/src/") && !bin) || path == "src/lib.rs";
    Scopes {
        no_unsafe: true,
        forbid_header: path.ends_with("src/lib.rs"),
        no_panic: lib_source && !vendor && !bench_crate && !test_code,
        no_thread_spawn: path != "crates/sitfact-core/src/pool.rs" && !test_code && !example,
        no_wallclock: !vendor && !bench_crate && !serve_crate && !test_code && !example,
    }
}

/// A parsed `// audit: allow(<rule>): <reason>` marker.
#[derive(Debug)]
struct AllowMarker {
    rule: String,
    /// 0-based line the marker suppresses findings on.
    target: usize,
    /// 0-based line of the comment itself (for reporting).
    line: usize,
    used: bool,
}

/// Byte ranges covered by `#[cfg(test)]` items (attribute through the
/// closing brace of the annotated item).
fn test_regions(lexed: &LexedFile) -> Vec<std::ops::Range<usize>> {
    let masked = lexed.masked.as_bytes();
    let mut regions = Vec::new();
    let mut search = 0usize;
    while let Some(found) = lexed.masked[search..].find("#[cfg(test)]") {
        let attr = search + found;
        // The annotated item's body is the next brace-balanced block.
        let mut i = attr;
        while i < masked.len() && masked[i] != b'{' {
            i += 1;
        }
        let mut depth = 0usize;
        let mut end = masked.len();
        while i < masked.len() {
            match masked[i] {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = i + 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        regions.push(attr..end);
        search = end.max(attr + 1);
    }
    regions
}

fn parse_allow_markers(
    path: &str,
    lexed: &LexedFile,
    violations: &mut Vec<Violation>,
) -> Vec<AllowMarker> {
    let mut markers = Vec::new();
    for comment in &lexed.comments {
        let text = comment.text.trim();
        let Some(rest) = text.strip_prefix("audit: allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            violations.push(Violation {
                rule: "allow-syntax",
                path: path.to_string(),
                line: comment.line + 1,
                message: "malformed allow marker: missing `)` after the rule name".into(),
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let reason = rest[close + 1..]
            .trim()
            .strip_prefix(':')
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            violations.push(Violation {
                rule: "allow-syntax",
                path: path.to_string(),
                line: comment.line + 1,
                message: format!(
                    "allow({rule}) carries no reason — write \
                     `// audit: allow({rule}): <why this site is sound>`"
                ),
            });
            continue;
        }
        // The marker covers its own line when code precedes the comment,
        // otherwise the next line that holds any code.
        let line_start = lexed.line_starts[comment.line];
        let before = &lexed.masked[line_start..comment.offset];
        let target = if !before.trim().is_empty() {
            comment.line
        } else {
            let mut t = comment.line + 1;
            while t < lexed.line_starts.len() && lexed.masked_line(t).trim().is_empty() {
                t += 1;
            }
            t
        };
        markers.push(AllowMarker {
            rule,
            target,
            line: comment.line,
            used: false,
        });
    }
    markers
}

/// Word-boundary occurrences of `word` in `masked` (identifier characters on
/// either side disqualify a match).
fn word_offsets<'a>(masked: &'a str, word: &'a str) -> impl Iterator<Item = usize> + 'a {
    let bytes = masked.as_bytes();
    let ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    masked.match_indices(word).filter_map(move |(pos, _)| {
        let before_ok = pos == 0 || !ident(bytes[pos - 1]);
        let after = pos + word.len();
        let after_ok = after >= bytes.len() || !ident(bytes[after]);
        (before_ok && after_ok).then_some(pos)
    })
}

/// Substring occurrences (for patterns that carry their own delimiters,
/// like `.unwrap()`).
fn substr_offsets<'a>(masked: &'a str, pattern: &'a str) -> impl Iterator<Item = usize> + 'a {
    masked.match_indices(pattern).map(|(pos, _)| pos)
}

/// Runs every applicable line-anchored rule over one file.
pub fn check_file(path: &str, source: &str) -> Vec<Violation> {
    let scopes = scopes_for(path);
    let lexed = lex(source);
    let mut violations = Vec::new();
    let mut markers = parse_allow_markers(path, &lexed, &mut violations);
    let regions = test_regions(&lexed);
    let in_test_region = |offset: usize| regions.iter().any(|r| r.contains(&offset));

    // (rule, offset, message, skip_in_tests)
    let mut findings: Vec<(&'static str, usize, String)> = Vec::new();

    if scopes.no_unsafe {
        for offset in word_offsets(&lexed.masked, "unsafe") {
            findings.push((
                "no-unsafe",
                offset,
                "`unsafe` is forbidden throughout the workspace".into(),
            ));
        }
    }
    if scopes.no_panic {
        let patterns: [(&str, bool); 5] = [
            (".unwrap()", false),
            (".expect(", false),
            ("panic!", true),
            ("todo!", true),
            ("unimplemented!", true),
        ];
        for (pattern, word) in patterns {
            let offsets: Vec<usize> = if word {
                word_offsets(&lexed.masked, pattern.trim_end_matches('!'))
                    .filter(|&o| lexed.masked.as_bytes().get(o + pattern.len() - 1) == Some(&b'!'))
                    .collect()
            } else {
                substr_offsets(&lexed.masked, pattern).collect()
            };
            for offset in offsets {
                if in_test_region(offset) {
                    continue;
                }
                findings.push((
                    "no-panic",
                    offset,
                    format!(
                        "`{pattern}` in library code — return a typed error, or justify with \
                         `// audit: allow(no-panic): <reason>`"
                    ),
                ));
            }
        }
    }
    if scopes.no_thread_spawn {
        for offset in substr_offsets(&lexed.masked, "thread::spawn") {
            if in_test_region(offset) {
                continue;
            }
            findings.push((
                "no-thread-spawn",
                offset,
                "spawn threads through `sitfact_core::pool::ThreadPool`, not `thread::spawn`"
                    .into(),
            ));
        }
    }
    if scopes.no_wallclock {
        for pattern in ["SystemTime::now", "Instant::now"] {
            for offset in substr_offsets(&lexed.masked, pattern) {
                if in_test_region(offset) {
                    continue;
                }
                findings.push((
                    "no-wallclock",
                    offset,
                    format!(
                        "`{pattern}` outside bench/serve — library code must stay \
                             deterministic"
                    ),
                ));
            }
        }
    }

    for (rule, offset, message) in findings {
        let line = lexed.line_of(offset);
        let allowed = markers
            .iter_mut()
            .find(|m| m.rule == rule && m.target == line);
        if let Some(marker) = allowed {
            marker.used = true;
            continue;
        }
        violations.push(Violation {
            rule,
            path: path.to_string(),
            line: line + 1,
            message,
        });
    }

    if scopes.forbid_header && !lexed.masked.contains("forbid(unsafe_code)") {
        violations.push(Violation {
            rule: "forbid-unsafe-header",
            path: path.to_string(),
            line: 0,
            message: "crate root lacks `#![forbid(unsafe_code)]`".into(),
        });
    }

    for marker in markers {
        if !marker.used {
            violations.push(Violation {
                rule: "stale-allow",
                path: path.to_string(),
                line: marker.line + 1,
                message: format!(
                    "allow({}) suppresses nothing on line {} — remove the marker",
                    marker.rule,
                    marker.target + 1
                ),
            });
        }
    }

    violations.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(b.rule)));
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_classify_paths() {
        assert!(scopes_for("crates/sitfact-core/src/pool.rs").no_panic);
        assert!(!scopes_for("crates/sitfact-core/src/pool.rs").no_thread_spawn);
        assert!(!scopes_for("crates/sitfact-bench/src/harness.rs").no_panic);
        assert!(!scopes_for("vendor/proptest/src/lib.rs").no_panic);
        assert!(scopes_for("vendor/proptest/src/lib.rs").no_unsafe);
        assert!(scopes_for("vendor/proptest/src/lib.rs").forbid_header);
        assert!(scopes_for("src/lib.rs").no_panic);
        assert!(!scopes_for("crates/sitfact-serve/src/bin/sitfact_serve.rs").no_panic);
        assert!(!scopes_for("crates/sitfact-serve/src/server.rs").no_wallclock);
        assert!(!scopes_for("examples/nba_sharded.rs").no_wallclock);
        assert!(!scopes_for("crates/sitfact-storage/tests/x.rs").no_thread_spawn);
        assert!(!scopes_for("ROADMAP.md").no_unsafe);
    }

    #[test]
    fn unsafe_is_flagged_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { unsafe { } }\n}\n";
        let out = check_file("crates/x/src/lib.rs", src);
        assert!(out.iter().any(|v| v.rule == "no-unsafe" && v.line == 3));
    }

    #[test]
    fn panics_in_test_regions_are_fine() {
        let src = "#![forbid(unsafe_code)]\nfn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { lib(); Some(1).unwrap(); panic!(\"x\"); }\n}\n";
        let out = check_file("crates/x/src/lib.rs", src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn library_unwrap_is_flagged_and_allows_suppress() {
        let src = "#![forbid(unsafe_code)]\nfn a() { Some(1).unwrap(); }\nfn b() {\n    // audit: allow(no-panic): demo reason\n    Some(1).unwrap();\n}\n";
        let out = check_file("crates/x/src/lib.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "no-panic");
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn trailing_allow_on_the_same_line() {
        let src = "#![forbid(unsafe_code)]\nfn a() { Some(1).unwrap() } // audit: allow(no-panic): same line\n";
        let out = check_file("crates/x/src/lib.rs", src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn stale_and_reasonless_allows_are_violations() {
        let src = "#![forbid(unsafe_code)]\n// audit: allow(no-panic): nothing here\nfn fine() {}\n// audit: allow(no-panic)\nfn g() { Some(1).unwrap(); }\n";
        let out = check_file("crates/x/src/lib.rs", src);
        assert!(out.iter().any(|v| v.rule == "stale-allow" && v.line == 2));
        assert!(out.iter().any(|v| v.rule == "allow-syntax" && v.line == 4));
        // The reasonless marker does not suppress.
        assert!(out.iter().any(|v| v.rule == "no-panic" && v.line == 5));
    }

    #[test]
    fn missing_forbid_header_is_flagged() {
        let out = check_file("crates/x/src/lib.rs", "fn f() {}\n");
        assert!(out.iter().any(|v| v.rule == "forbid-unsafe-header"));
    }

    #[test]
    fn unwrap_or_variants_do_not_match() {
        let src = "#![forbid(unsafe_code)]\nfn f() -> i32 { Some(1).unwrap_or(2) + Some(3).unwrap_or_default() }\n";
        let out = check_file("crates/x/src/lib.rs", src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn spawn_and_wallclock_rules() {
        let src = "#![forbid(unsafe_code)]\nfn f() { std::thread::spawn(|| {}); }\nfn g() { let _ = std::time::SystemTime::now(); }\n";
        let out = check_file("crates/x/src/lib.rs", src);
        assert!(out
            .iter()
            .any(|v| v.rule == "no-thread-spawn" && v.line == 2));
        assert!(out.iter().any(|v| v.rule == "no-wallclock" && v.line == 3));
        // pool.rs is the one sanctioned spawner.
        let pool = check_file("crates/sitfact-core/src/pool.rs", src);
        assert!(!pool.iter().any(|v| v.rule == "no-thread-spawn"));
    }
}
