//! Fixture protocol module: the verb constants mirror the real crate's, so
//! every `grammar-drift` finding against this tree comes from the drifted
//! fixture ROADMAP, not from here.
#![forbid(unsafe_code)]

/// Request verbs, as in the real `sitfact-serve::protocol`.
pub const REQUEST_VERBS: [&str; 6] =
    ["PING", "STATS", "SHUTDOWN", "TOPK", "INGEST", "INGEST_BATCH"];

/// Response verbs, as in the real `sitfact-serve::protocol`.
pub const RESPONSE_VERBS: [&str; 6] = ["PONG", "BYE", "STATS", "REPORT", "REPORTS", "ERR"];
