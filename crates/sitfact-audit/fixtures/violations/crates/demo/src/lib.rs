//! A deliberately non-compliant library crate. Every construct below must
//! be flagged by `sitfact-audit` (see `tests/audit_gate.rs`); none of this
//! is ever compiled. The crate root also deliberately lacks
//! `#![forbid(unsafe_code)]`.

/// An unsafe block: `no-unsafe`, even though the string and the comment
/// above also say unsafe and must NOT count.
pub fn raw_read(ptr: *const u32) -> u32 {
    let _decoy = "unsafe { panic!() }";
    unsafe { *ptr }
}

/// A library unwrap: `no-panic`.
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

/// A hand-rolled thread: `no-thread-spawn`.
pub fn detach() {
    std::thread::spawn(|| {});
}

/// Wall-clock time in library code: `no-wallclock`.
pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

// audit: allow(no-panic): this marker suppresses nothing -> stale-allow
pub fn calm() {}

/// A reasonless marker (`allow-syntax`) that therefore does NOT suppress
/// the unwrap under it (`no-panic`).
pub fn second(xs: &[u32]) -> u32 {
    // audit: allow(no-panic)
    *xs.get(1).unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_here_are_fine() {
        assert!(std::panic::catch_unwind(|| super::first(&[])).is_err());
    }
}
