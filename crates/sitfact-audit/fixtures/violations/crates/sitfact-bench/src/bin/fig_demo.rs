//! Fixture fig binary (never compiled). Emits `bench`, `seconds` and an
//! interpolated `speedup_at_{n}_shards` key; its README schema documents
//! `reps` instead of `seconds`.

fn main() {
    let n = 4;
    let seconds = 0.5;
    println!("{{\"bench\": \"demo\", \"seconds\": {seconds}, \"speedup_at_{n}_shards\": 1.0}}");
}
