//! The auditor's acceptance gate: the seeded fixture tree fires every rule
//! family, the real workspace stays clean, and the `audit` binary's exit
//! codes agree with both.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/violations")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn fixture_tree_fires_every_rule_family() {
    let outcome = sitfact_audit::run_audit(&fixture_root()).expect("fixture tree walks");
    let rules: Vec<&str> = outcome.violations.iter().map(|v| v.rule).collect();
    for expected in [
        "no-unsafe",
        "forbid-unsafe-header",
        "no-panic",
        "no-thread-spawn",
        "no-wallclock",
        "stale-allow",
        "allow-syntax",
        "grammar-drift",
        "bench-schema-drift",
    ] {
        assert!(
            rules.contains(&expected),
            "fixture tree must fire {expected}, got: {:#?}",
            outcome.violations
        );
    }

    let demo = "crates/demo/src/lib.rs";
    let at = |rule: &str, line: usize| {
        outcome
            .violations
            .iter()
            .any(|v| v.rule == rule && v.path == demo && v.line == line)
    };
    // The decoy string on the line above must not count; the unsafe block,
    // and the unwrap under the reasonless marker, must.
    assert!(at("no-unsafe", 10), "{:#?}", outcome.violations);
    assert!(at("no-panic", 35), "{:#?}", outcome.violations);

    // Drift findings point in both directions.
    let drift: Vec<&str> = outcome
        .violations
        .iter()
        .filter(|v| v.rule == "grammar-drift")
        .map(|v| v.message.as_str())
        .collect();
    assert!(drift.iter().any(|m| m.contains("\"TOPK\"")), "{drift:?}");
    assert!(drift.iter().any(|m| m.contains("\"QUERY\"")), "{drift:?}");
    let bench: Vec<&str> = outcome
        .violations
        .iter()
        .filter(|v| v.rule == "bench-schema-drift")
        .map(|v| v.message.as_str())
        .collect();
    assert!(bench.iter().any(|m| m.contains("\"reps\"")), "{bench:?}");
    assert!(bench.iter().any(|m| m.contains("\"seconds\"")), "{bench:?}");
    // The interpolated speedup key matches its documented instantiation.
    assert!(!bench.iter().any(|m| m.contains("speedup")), "{bench:?}");
}

#[test]
fn real_workspace_is_clean() {
    let outcome = sitfact_audit::run_audit(&workspace_root()).expect("workspace walks");
    assert!(
        outcome.violations.is_empty(),
        "the real tree must audit clean:\n{}",
        outcome
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        outcome.files_checked > 50,
        "suspiciously few files checked ({}) — walker broke?",
        outcome.files_checked
    );
}

#[test]
fn binary_exit_codes_match() {
    let audit = env!("CARGO_BIN_EXE_audit");
    let bad = Command::new(audit)
        .args(["--root", fixture_root().to_string_lossy().as_ref()])
        .output()
        .expect("audit binary runs");
    assert_eq!(bad.status.code(), Some(1), "fixtures must exit 1");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("violation(s)"), "{stdout}");

    let report = std::env::temp_dir().join("sitfact_audit_gate_report.txt");
    let good = Command::new(audit)
        .args(["--root", workspace_root().to_string_lossy().as_ref()])
        .args(["--report", report.to_string_lossy().as_ref()])
        .output()
        .expect("audit binary runs");
    assert_eq!(good.status.code(), Some(0), "real tree must exit 0");
    let written = std::fs::read_to_string(&report).expect("report file written");
    assert!(written.contains("audit: clean"), "{written}");
}
