//! Algorithm 3 of the paper: the sequential-scan baseline.

use crate::common::{AlgoParams, ConstraintCache};
use crate::traits::Discovery;
use sitfact_core::{dominance, BoundMask, DiscoveryConfig, Schema, SkylinePair, Tuple, TupleId};
use sitfact_storage::{StoreStats, Table, WorkStats};

/// `BaselineSeq`: for every measure subspace, scan the whole table once;
/// whenever a historical tuple `t'` dominates the new tuple, remove every
/// constraint of `C^{t,t'}` (Proposition 3) from the candidate set. Whatever
/// constraints survive the scan are skyline constraints.
///
/// Unlike [`BruteForce`](crate::BruteForce) this exploits constraint pruning,
/// but it still pays one full scan of `R` per measure subspace per arriving
/// tuple and keeps no incremental state.
#[derive(Debug)]
pub struct BaselineSeq {
    params: AlgoParams,
    stats: WorkStats,
}

impl BaselineSeq {
    /// Creates the algorithm for a schema and discovery configuration.
    pub fn new(schema: &Schema, config: DiscoveryConfig) -> Self {
        BaselineSeq {
            params: AlgoParams::new(schema, config),
            stats: WorkStats::default(),
        }
    }
}

impl Discovery for BaselineSeq {
    fn name(&self) -> &'static str {
        "BaselineSeq"
    }

    fn discover_at(&mut self, table: &Table, t: &Tuple, t_id: TupleId) -> Vec<SkylinePair> {
        let cache = ConstraintCache::new(t, self.params.n_dims);
        let directions = &self.params.directions;
        let flag_len = self.params.lattice.flag_len();
        let mut out = Vec::new();
        let mut pruned = vec![false; flag_len];
        for &subspace in &self.params.subspaces {
            pruned.iter_mut().for_each(|p| *p = false);
            // The scan is in arrival order; stop at `t_id` so batched drivers
            // (table already extended past this arrival) see only history.
            for (_, other) in table.iter().take_while(|(id, _)| *id < t_id) {
                self.stats.comparisons += 1;
                if dominance::dominates(other, t, subspace, directions) {
                    let agreement = BoundMask::agreement(t, other);
                    // Small shortcut: if the agreement bottom is already
                    // pruned, every submask already is too.
                    if pruned[agreement.0 as usize] {
                        continue;
                    }
                    for sub in agreement.submasks() {
                        pruned[sub.0 as usize] = true;
                    }
                }
            }
            for mask in self.params.lattice.enumerate_top_down() {
                self.stats.traversed_constraints += 1;
                if !pruned[mask.0 as usize] {
                    out.push(SkylinePair::new(cache.get(mask).clone(), subspace));
                }
            }
        }
        out
    }

    fn work_stats(&self) -> WorkStats {
        self.stats
    }

    fn store_stats(&self) -> StoreStats {
        StoreStats::default()
    }

    fn retract(&mut self, _table: &Table, _t_id: TupleId) -> sitfact_core::Result<()> {
        // Stateless: the per-arrival scan reads the table's live iterators,
        // which already exclude retracted rows.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::BruteForce;
    use sitfact_core::pair::canonical_sort;
    use sitfact_core::{Direction, SchemaBuilder};

    fn mini_world() -> Table {
        // Table I of the paper, restricted to 3 dimensions for brevity.
        let schema = SchemaBuilder::new("gamelog")
            .dimension("player")
            .dimension("month")
            .dimension("team")
            .measure("points", Direction::HigherIsBetter)
            .measure("assists", Direction::HigherIsBetter)
            .measure("rebounds", Direction::HigherIsBetter)
            .build()
            .unwrap();
        let mut table = Table::new(schema);
        let rows: [(&str, &str, &str, [f64; 3]); 6] = [
            ("Bogues", "Feb", "Hornets", [4.0, 12.0, 5.0]),
            ("Seikaly", "Feb", "Heat", [24.0, 5.0, 15.0]),
            ("Sherman", "Dec", "Celtics", [13.0, 13.0, 5.0]),
            ("Wesley", "Feb", "Celtics", [2.0, 5.0, 2.0]),
            ("Wesley", "Feb", "Celtics", [3.0, 5.0, 3.0]),
            ("Strickland", "Jan", "Blazers", [27.0, 18.0, 8.0]),
        ];
        for (p, m, t, meas) in rows {
            table.append_raw(&[p, m, t], meas.to_vec()).unwrap();
        }
        table
    }

    fn new_tuple(table: &mut Table) -> Tuple {
        let dims = table
            .schema_mut()
            .intern_dims(&["Wesley", "Feb", "Celtics"])
            .unwrap();
        // t7 of the paper: 12 points, 13 assists, 5 rebounds.
        Tuple::new(dims, vec![12.0, 13.0, 5.0])
    }

    #[test]
    fn agrees_with_brute_force_on_mini_world() {
        let mut table = mini_world();
        let t7 = new_tuple(&mut table);
        for config in [
            DiscoveryConfig::unrestricted(),
            DiscoveryConfig::capped(2, 2),
            DiscoveryConfig::capped(1, 3),
        ] {
            let mut reference = BruteForce::new(table.schema(), config);
            let mut subject = BaselineSeq::new(table.schema(), config);
            let mut expected = reference.discover(&table, &t7);
            let mut actual = subject.discover(&table, &t7);
            canonical_sort(&mut expected);
            canonical_sort(&mut actual);
            assert_eq!(expected, actual, "config {config:?}");
        }
    }

    #[test]
    fn month_feb_fact_from_example_1_is_found() {
        let mut table = mini_world();
        let t7 = new_tuple(&mut table);
        let mut algo = BaselineSeq::new(table.schema(), DiscoveryConfig::unrestricted());
        let facts = algo.discover(&table, &t7);
        // Example 1: with constraint month=Feb and the full measure space, t7
        // is a contextual skyline tuple.
        let schema = table.schema();
        let month_feb = sitfact_core::Constraint::parse(schema, &[("month", "Feb")]).unwrap();
        let full = sitfact_core::SubspaceMask::full(3);
        assert!(facts
            .iter()
            .any(|f| f.constraint == month_feb && f.subspace == full));
        // But with no constraint in the full space, t7 is dominated (t3/t6).
        let top = sitfact_core::Constraint::top(3);
        assert!(!facts
            .iter()
            .any(|f| f.constraint == top && f.subspace == full));
    }

    #[test]
    fn comparisons_scale_with_table_and_subspaces() {
        let mut table = mini_world();
        let t7 = new_tuple(&mut table);
        let mut algo = BaselineSeq::new(table.schema(), DiscoveryConfig::unrestricted());
        let _ = algo.discover(&table, &t7);
        // 6 historical tuples × (2^3 - 1) subspaces.
        assert_eq!(algo.work_stats().comparisons, 6 * 7);
        assert_eq!(algo.store_stats(), StoreStats::default());
    }
}
