//! The k-d-tree baseline of Section IV (`BaselineIdx`).

use crate::common::{AlgoParams, ConstraintCache};
use crate::traits::Discovery;
use sitfact_core::{dominance, BoundMask, DiscoveryConfig, Schema, SkylinePair, Tuple, TupleId};
use sitfact_storage::{KdTree, StoreStats, Table, WorkStats};

/// `BaselineIdx`: like [`BaselineSeq`](crate::BaselineSeq), but instead of
/// scanning the whole table per subspace, the tuples able to dominate the new
/// tuple are retrieved with a one-sided range query
/// `⋀_{m_i ∈ M} (m_i ≥ t.m_i)` over a k-d tree on the full measure space.
///
/// The tree is maintained incrementally (each processed tuple is inserted
/// after its facts are discovered), making this the simplest incremental
/// competitor in the paper's evaluation.
#[derive(Debug)]
pub struct BaselineIdx {
    params: AlgoParams,
    tree: KdTree,
    stats: WorkStats,
    /// Number of arrivals processed so far — the id the next arrival must
    /// carry. Monotone even under retraction (expired tuples leave the tree
    /// but were still processed), unlike `tree.len()`.
    processed: TupleId,
}

impl BaselineIdx {
    /// Creates the algorithm for a schema and discovery configuration.
    pub fn new(schema: &Schema, config: DiscoveryConfig) -> Self {
        let params = AlgoParams::new(schema, config);
        let tree = KdTree::new(&params.directions);
        BaselineIdx {
            params,
            tree,
            stats: WorkStats::default(),
            processed: 0,
        }
    }

    /// Number of tuples currently indexed (exposed for tests and reports).
    pub fn indexed_tuples(&self) -> usize {
        self.tree.len()
    }
}

impl Discovery for BaselineIdx {
    fn name(&self) -> &'static str {
        "BaselineIdx"
    }

    fn discover_at(&mut self, table: &Table, t: &Tuple, t_id: TupleId) -> Vec<SkylinePair> {
        // The tree holds exactly the live arrivals processed so far, which is
        // what keeps this correct under the batched protocol: even if the
        // table was already extended past `t_id`, the range query can only
        // return ids the tree has seen — the tuple's true history.
        debug_assert_eq!(
            self.processed, t_id,
            "BaselineIdx must see every tuple exactly once"
        );
        let cache = ConstraintCache::new(t, self.params.n_dims);
        let directions = &self.params.directions;
        let flag_len = self.params.lattice.flag_len();
        let mut out = Vec::new();
        let mut pruned = vec![false; flag_len];
        for &subspace in &self.params.subspaces {
            pruned.iter_mut().for_each(|p| *p = false);
            // Candidates: at least as good as t on every attribute of the
            // subspace. Only a strictness check remains.
            let candidates = self.tree.candidates_at_least(t, subspace);
            self.stats.store_reads += 1;
            for id in candidates {
                let other = table.tuple(id);
                self.stats.comparisons += 1;
                if dominance::dominates(other, t, subspace, directions) {
                    let agreement = BoundMask::agreement(t, other);
                    if pruned[agreement.0 as usize] {
                        continue;
                    }
                    for sub in agreement.submasks() {
                        pruned[sub.0 as usize] = true;
                    }
                }
            }
            for mask in self.params.lattice.enumerate_top_down() {
                self.stats.traversed_constraints += 1;
                if !pruned[mask.0 as usize] {
                    out.push(SkylinePair::new(cache.get(mask).clone(), subspace));
                }
            }
        }
        // The new tuple becomes part of the index for future arrivals.
        self.tree.insert(t_id, t);
        self.stats.store_writes += 1;
        self.processed = t_id + 1;
        out
    }

    fn retract(&mut self, table: &Table, t_id: TupleId) -> sitfact_core::Result<()> {
        // The expired row is tombstoned but still physically present, so its
        // measures can steer the tree descent.
        if self.tree.remove(t_id, table.tuple(t_id)) {
            self.stats.store_writes += 1;
            Ok(())
        } else {
            Err(sitfact_core::SitFactError::InvalidTuple(format!(
                "BaselineIdx asked to retract tuple {t_id}, which its index never saw"
            )))
        }
    }

    fn work_stats(&self) -> WorkStats {
        self.stats
    }

    fn store_stats(&self) -> StoreStats {
        StoreStats {
            stored_entries: self.tree.len() as u64,
            non_empty_cells: if self.tree.is_empty() { 0 } else { 1 },
            approx_bytes: self.tree.approx_heap_bytes() as u64,
            file_reads: 0,
            file_writes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::BruteForce;
    use sitfact_core::pair::canonical_sort;
    use sitfact_core::{Direction, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new("s")
            .dimension("d1")
            .dimension("d2")
            .dimension("d3")
            .measure("m1", Direction::HigherIsBetter)
            .measure("m2", Direction::LowerIsBetter)
            .measure("m3", Direction::HigherIsBetter)
            .build()
            .unwrap()
    }

    /// Streams random tuples through both BaselineIdx (incremental) and
    /// BruteForce (stateless), asserting identical fact sets at each step.
    #[test]
    fn agrees_with_brute_force_over_a_stream() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        let schema = schema();
        let mut table = Table::new(schema.clone());
        let config = DiscoveryConfig::unrestricted();
        let mut subject = BaselineIdx::new(&schema, config);
        let mut reference = BruteForce::new(&schema, config);
        for _ in 0..60 {
            let dims = vec![
                rng.gen_range(0..3u32),
                rng.gen_range(0..2u32),
                rng.gen_range(0..3u32),
            ];
            let measures = vec![
                rng.gen_range(0..6) as f64,
                rng.gen_range(0..6) as f64,
                rng.gen_range(0..6) as f64,
            ];
            let t = Tuple::new(dims, measures);
            let mut expected = reference.discover(&table, &t);
            let mut actual = subject.discover(&table, &t);
            canonical_sort(&mut expected);
            canonical_sort(&mut actual);
            assert_eq!(expected, actual, "diverged at tuple {}", table.len());
            table.append(t).unwrap();
        }
        assert_eq!(subject.indexed_tuples(), 60);
    }

    /// After a prefix retraction, the tree answers from survivors only and
    /// the stateless oracle (whose table scans are live-only) still agrees.
    #[test]
    fn retraction_keeps_agreement_with_brute_force() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(17);
        let schema = schema();
        let config = DiscoveryConfig::unrestricted();
        let random_tuple = |rng: &mut StdRng| {
            let dims = vec![
                rng.gen_range(0..3u32),
                rng.gen_range(0..2u32),
                rng.gen_range(0..3u32),
            ];
            let measures = vec![
                rng.gen_range(0..6) as f64,
                rng.gen_range(0..6) as f64,
                rng.gen_range(0..6) as f64,
            ];
            Tuple::new(dims, measures)
        };
        let mut table = Table::new(schema.clone());
        let mut subject = BaselineIdx::new(&schema, config);
        let mut reference = BruteForce::new(&schema, config);
        for _ in 0..40 {
            let t = random_tuple(&mut rng);
            let _ = subject.discover(&table, &t);
            let _ = reference.discover(&table, &t);
            table.append(t).unwrap();
        }
        table.retract_prefix(15);
        for id in 0..15u32 {
            subject.retract(&table, id).unwrap();
            reference.retract(&table, id).unwrap();
        }
        // Double retraction is an error, not a panic: the tombstoned row is
        // still physically readable, but the tree no longer holds its id.
        assert!(subject.retract(&table, 5).is_err());
        table.compact_retracted();
        assert_eq!(subject.indexed_tuples(), 25);
        for _ in 0..15 {
            let t = random_tuple(&mut rng);
            let mut expected = reference.discover(&table, &t);
            let mut actual = subject.discover(&table, &t);
            canonical_sort(&mut expected);
            canonical_sort(&mut actual);
            assert_eq!(expected, actual, "diverged at tuple {}", table.len());
            table.append(t).unwrap();
        }
    }

    #[test]
    fn store_stats_track_tree_growth() {
        let schema = schema();
        let mut table = Table::new(schema.clone());
        let mut algo = BaselineIdx::new(&schema, DiscoveryConfig::unrestricted());
        assert_eq!(algo.store_stats().stored_entries, 0);
        for i in 0..5 {
            let t = Tuple::new(vec![0, 0, 0], vec![i as f64, 1.0, 2.0]);
            let _ = algo.discover(&table, &t);
            table.append(t).unwrap();
        }
        let stats = algo.store_stats();
        assert_eq!(stats.stored_entries, 5);
        assert!(stats.approx_bytes > 0);
        assert!(algo.work_stats().comparisons > 0);
    }
}
