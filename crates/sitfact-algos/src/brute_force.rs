//! Algorithm 2 of the paper: the brute-force reference.

use crate::common::{AlgoParams, ConstraintCache};
use crate::traits::Discovery;
use sitfact_core::{dominance, DiscoveryConfig, Schema, SkylinePair, Tuple, TupleId};
use sitfact_storage::{StoreStats, Table, WorkStats};

/// Brute-force discovery: for every measure subspace and every constraint
/// satisfied by the new tuple, compare the tuple against **every** historical
/// tuple.
///
/// Exponentially many constraint–measure pairs times a full table scan makes
/// this unusable beyond toy sizes, but it is the unambiguous ground truth the
/// equivalence tests of every other algorithm are written against.
#[derive(Debug)]
pub struct BruteForce {
    params: AlgoParams,
    stats: WorkStats,
}

impl BruteForce {
    /// Creates the algorithm for a schema and discovery configuration.
    pub fn new(schema: &Schema, config: DiscoveryConfig) -> Self {
        BruteForce {
            params: AlgoParams::new(schema, config),
            stats: WorkStats::default(),
        }
    }
}

impl Discovery for BruteForce {
    fn name(&self) -> &'static str {
        "BruteForce"
    }

    fn discover_at(&mut self, table: &Table, t: &Tuple, t_id: TupleId) -> Vec<SkylinePair> {
        let cache = ConstraintCache::new(t, self.params.n_dims);
        let directions = &self.params.directions;
        let mut out = Vec::new();
        for &subspace in &self.params.subspaces {
            for mask in self.params.lattice.enumerate_top_down() {
                self.stats.traversed_constraints += 1;
                let constraint = cache.get(mask);
                let mut pruned = false;
                // Rows are scanned in arrival order, so stopping at `t_id`
                // restricts the comparison to the tuple's true history even
                // when a batch driver has already appended later rows.
                for (_, other) in table.iter().take_while(|(id, _)| *id < t_id) {
                    self.stats.comparisons += 1;
                    if constraint.matches(other)
                        && dominance::dominates(other, t, subspace, directions)
                    {
                        pruned = true;
                        break;
                    }
                }
                if !pruned {
                    out.push(SkylinePair::new(constraint.clone(), subspace));
                }
            }
        }
        out
    }

    fn work_stats(&self) -> WorkStats {
        self.stats
    }

    fn store_stats(&self) -> StoreStats {
        StoreStats::default()
    }

    fn retract(&mut self, _table: &Table, _t_id: TupleId) -> sitfact_core::Result<()> {
        // Stateless: every discovery re-derives its answer from the table,
        // whose iterators already skip retracted rows — oracle-exact under a
        // sliding window with no repair work at all.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitfact_core::{Constraint, Direction, SchemaBuilder, SubspaceMask, UNBOUND};

    /// Builds the running-example table of the paper (Table IV) with tuples
    /// t1..t4 as history.
    fn running_example() -> (Table, Tuple) {
        let schema = SchemaBuilder::new("running")
            .dimension("d1")
            .dimension("d2")
            .dimension("d3")
            .measure("m1", Direction::HigherIsBetter)
            .measure("m2", Direction::HigherIsBetter)
            .build()
            .unwrap();
        let mut table = Table::new(schema);
        table
            .append_raw(&["a1", "b2", "c2"], vec![10.0, 15.0])
            .unwrap(); // t1
        table
            .append_raw(&["a1", "b1", "c1"], vec![15.0, 10.0])
            .unwrap(); // t2
        table
            .append_raw(&["a2", "b1", "c2"], vec![17.0, 17.0])
            .unwrap(); // t3
        table
            .append_raw(&["a2", "b1", "c1"], vec![20.0, 20.0])
            .unwrap(); // t4
                       // t5 = (a1, b1, c1, 11, 15) is the new arrival of the paper's examples.
        let dims = table.schema_mut().intern_dims(&["a1", "b1", "c1"]).unwrap();
        let t5 = Tuple::new(dims, vec![11.0, 15.0]);
        (table, t5)
    }

    #[test]
    fn matches_paper_example_7_full_space() {
        let (table, t5) = running_example();
        let mut algo = BruteForce::new(table.schema(), DiscoveryConfig::unrestricted());
        let facts = algo.discover(&table, &t5);
        let full = SubspaceMask::full(2);
        // In the full space {m1, m2}, t5 enters the skylines of
        // ⟨a1,b1,c1⟩, ⟨a1,b1,*⟩, ⟨a1,*,c1⟩ and ⟨a1,*,*⟩ (Fig. 3b) but not of
        // ⟨*,b1,c1⟩ or ⊤ (dominated by t4).
        let schema = table.schema();
        let a1 = schema.dictionary(0).lookup("a1").unwrap();
        let b1 = schema.dictionary(1).lookup("b1").unwrap();
        let c1 = schema.dictionary(2).lookup("c1").unwrap();
        let expect_in = [
            Constraint::from_values(vec![a1, b1, c1]),
            Constraint::from_values(vec![a1, b1, UNBOUND]),
            Constraint::from_values(vec![a1, UNBOUND, c1]),
            Constraint::from_values(vec![a1, UNBOUND, UNBOUND]),
        ];
        let expect_out = [
            Constraint::from_values(vec![UNBOUND, b1, c1]),
            Constraint::top(3),
        ];
        for c in &expect_in {
            assert!(
                facts
                    .iter()
                    .any(|f| f.subspace == full && &f.constraint == c),
                "missing {c:?}"
            );
        }
        for c in &expect_out {
            assert!(
                !facts
                    .iter()
                    .any(|f| f.subspace == full && &f.constraint == c),
                "unexpected {c:?}"
            );
        }
    }

    #[test]
    fn matches_paper_example_10_single_measures() {
        let (table, t5) = running_example();
        let mut algo = BruteForce::new(table.schema(), DiscoveryConfig::unrestricted());
        let facts = algo.discover(&table, &t5);
        // In {m1}, t5 (=11) is dominated by t2 (=15) which shares every
        // dimension value, so t5 has no skyline constraint at all.
        let m1 = SubspaceMask::singleton(0);
        assert!(facts.iter().all(|f| f.subspace != m1));
        // In {m2}, t5 (=15) ties t1 and is dominated by none within a1
        // contexts; its skyline constraints include ⟨a1,*,*⟩.
        let m2 = SubspaceMask::singleton(1);
        let schema = table.schema();
        let a1 = schema.dictionary(0).lookup("a1").unwrap();
        let expected = Constraint::from_values(vec![a1, UNBOUND, UNBOUND]);
        assert!(facts
            .iter()
            .any(|f| f.subspace == m2 && f.constraint == expected));
    }

    #[test]
    fn empty_history_makes_every_pair_a_fact() {
        let (table, t5) = running_example();
        let empty = Table::new(table.schema().clone());
        let mut algo = BruteForce::new(table.schema(), DiscoveryConfig::unrestricted());
        let facts = algo.discover(&empty, &t5);
        // 2^3 constraints × 3 subspaces.
        assert_eq!(facts.len(), 8 * 3);
    }

    #[test]
    fn caps_restrict_reported_pairs() {
        let (table, t5) = running_example();
        let mut algo = BruteForce::new(table.schema(), DiscoveryConfig::capped(1, 1));
        let facts = algo.discover(&table, &t5);
        assert!(facts.iter().all(|f| f.constraint.bound_count() <= 1));
        assert!(facts.iter().all(|f| f.subspace.len() == 1));
    }

    #[test]
    fn stats_accumulate() {
        let (table, t5) = running_example();
        let mut algo = BruteForce::new(table.schema(), DiscoveryConfig::unrestricted());
        let _ = algo.discover(&table, &t5);
        let stats = algo.work_stats();
        assert!(stats.comparisons > 0);
        assert!(stats.traversed_constraints > 0);
        assert_eq!(algo.store_stats(), StoreStats::default());
        assert_eq!(algo.name(), "BruteForce");
    }
}
