//! Shared plumbing for the discovery algorithms: per-tuple constraint caches,
//! measure-slice dominance helpers and the parameters every algorithm derives
//! from a schema + [`DiscoveryConfig`].

use sitfact_core::{
    BoundMask, Constraint, ConstraintLattice, Direction, DiscoveryConfig, Schema, SubspaceMask,
    Tuple,
};

/// Parameters shared by every algorithm instance, derived once from the schema
/// and the `d̂` / `m̂` caps.
#[derive(Debug, Clone)]
pub struct AlgoParams {
    /// Number of dimension attributes.
    pub n_dims: usize,
    /// Number of measure attributes.
    pub n_measures: usize,
    /// Preference directions of the measures.
    pub directions: Vec<Direction>,
    /// The (possibly `d̂`-capped) lattice of tuple-satisfied constraints.
    pub lattice: ConstraintLattice,
    /// Every reported measure subspace (non-empty, at most `m̂` attributes).
    pub subspaces: Vec<SubspaceMask>,
    /// The full measure space (used internally by the shared variants even
    /// when `m̂ < m` keeps it out of `subspaces`).
    pub full_space: SubspaceMask,
    /// Proper subspaces of the full space within the reported family.
    pub proper_subspaces: Vec<SubspaceMask>,
}

impl AlgoParams {
    /// Derives the parameters from a schema and a discovery configuration.
    pub fn new(schema: &Schema, config: DiscoveryConfig) -> Self {
        let d_hat = config.effective_d_hat(schema);
        let m_hat = config.effective_m_hat(schema);
        let n_dims = schema.num_dimensions();
        let n_measures = schema.num_measures();
        let full_space = SubspaceMask::full(n_measures);
        let subspaces = SubspaceMask::enumerate(n_measures, m_hat);
        let proper_subspaces = subspaces
            .iter()
            .copied()
            .filter(|&s| s != full_space)
            .collect();
        AlgoParams {
            n_dims,
            n_measures,
            directions: schema.directions().to_vec(),
            lattice: ConstraintLattice::new(n_dims, d_hat),
            subspaces,
            full_space,
            proper_subspaces,
        }
    }

    /// Whether the full measure space itself is part of the reported family
    /// (`m̂ = m`).
    pub fn reports_full_space(&self) -> bool {
        self.subspaces.contains(&self.full_space)
    }
}

/// Per-tuple cache of materialised constraints, indexed by bound mask.
///
/// Inside `discover`, every constraint of `C^t` is `Constraint::from_tuple_mask
/// (t, mask)`; materialising each of them once per tuple (instead of once per
/// (constraint, subspace) visit) removes the dominant allocation cost of the
/// traversals.
#[derive(Debug)]
pub struct ConstraintCache {
    constraints: Vec<Constraint>,
}

impl ConstraintCache {
    /// Builds the cache for a tuple over an `n_dims`-attribute schema. All
    /// `2^n_dims` masks are materialised (the few above the `d̂` cap are
    /// harmless and keep indexing branch-free).
    pub fn new(tuple: &Tuple, n_dims: usize) -> Self {
        let count = 1usize << n_dims;
        let mut constraints = Vec::with_capacity(count);
        for mask in 0..count as u32 {
            constraints.push(Constraint::from_tuple_mask(tuple, BoundMask(mask)));
        }
        ConstraintCache { constraints }
    }

    /// The constraint binding exactly the attributes of `mask` to the cached
    /// tuple's values.
    #[inline]
    pub fn get(&self, mask: BoundMask) -> &Constraint {
        &self.constraints[mask.0 as usize]
    }
}

/// Reusable per-arrival traversal buffers (constraint flags plus the BFS
/// queue) for the lattice passes of the shared algorithms.
///
/// Allocated lazily to the lattice's flag length and kept on the algorithm
/// struct, so a window of arrivals (`begin_batch` … `end_batch`) re-clears
/// the same buffers instead of re-allocating four vectors per pass per
/// arrival. [`TraversalScratch::release`] drops the capacity again once a
/// batch ends.
#[derive(Debug, Default)]
pub struct TraversalScratch {
    /// `pruned[mask]`: the new tuple is known dominated at this constraint.
    pub pruned: Vec<bool>,
    /// `in_ances[mask]`: an unpruned ancestor already stores the new tuple.
    pub in_ances: Vec<bool>,
    /// `enqueued[mask]`: the constraint has entered the BFS queue.
    pub enqueued: Vec<bool>,
    /// The BFS queue over bound masks.
    pub queue: std::collections::VecDeque<BoundMask>,
}

impl TraversalScratch {
    /// Clears every buffer and (re)sizes the flag vectors to `flag_len`.
    pub fn reset(&mut self, flag_len: usize) {
        self.pruned.clear();
        self.pruned.resize(flag_len, false);
        self.in_ances.clear();
        self.in_ances.resize(flag_len, false);
        self.enqueued.clear();
        self.enqueued.resize(flag_len, false);
        self.queue.clear();
    }

    /// Returns the buffers' memory to the allocator (batch tear-down).
    pub fn release(&mut self) {
        *self = TraversalScratch::default();
    }
}

/// Ground-truth `|λ_M(σ_C(R_{<limit}))|`: recomputes the contextual skyline
/// from the table, truncated to rows that arrived before `limit`. Shared by
/// the [`Discovery`](crate::Discovery) trait default and every algorithm's
/// out-of-family fallback, so the truncation semantics live in one place.
pub fn skyline_cardinality_recompute(
    table: &sitfact_storage::Table,
    constraint: &Constraint,
    subspace: SubspaceMask,
    limit: sitfact_core::TupleId,
) -> usize {
    let directions = table.schema().directions();
    sitfact_core::dominance::skyline_of(
        table.context(constraint).take_while(|(id, _)| *id < limit),
        subspace,
        directions,
    )
    .len()
}

/// `left ≻_M right` on raw measure slices.
#[inline]
pub fn dominates_measures(
    left: &[f64],
    right: &[f64],
    m: SubspaceMask,
    directions: &[Direction],
) -> bool {
    let mut strictly_better = false;
    for i in m.indices() {
        let a = left[i];
        let b = right[i];
        if a == b {
            continue;
        }
        if directions[i].better(a, b) {
            strictly_better = true;
        } else {
            return false;
        }
    }
    strictly_better
}

/// Three-way partition (Proposition 4) on raw measure slices: returns
/// `(better, worse)` masks from the perspective of `left`.
#[inline]
pub fn partition_measures(
    left: &[f64],
    right: &[f64],
    directions: &[Direction],
) -> (SubspaceMask, SubspaceMask) {
    let mut better = 0u32;
    let mut worse = 0u32;
    for (i, dir) in directions.iter().enumerate() {
        let a = left[i];
        let b = right[i];
        if a == b {
            continue;
        }
        if dir.better(a, b) {
            better |= 1 << i;
        } else {
            worse |= 1 << i;
        }
    }
    (SubspaceMask(better), SubspaceMask(worse))
}

/// Whether, given a `(better, worse)` partition for `left` vs `right`,
/// `left` is dominated by `right` in subspace `m` (Proposition 4).
#[inline]
pub fn dominated_in(better: SubspaceMask, worse: SubspaceMask, m: SubspaceMask) -> bool {
    !m.intersect(worse).is_empty() && m.intersect(better).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitfact_core::SchemaBuilder;

    fn schema(d: usize, m: usize) -> Schema {
        let mut b = SchemaBuilder::new("s");
        for i in 0..d {
            b = b.dimension(format!("d{i}"));
        }
        for i in 0..m {
            b = b.measure(format!("m{i}"), Direction::HigherIsBetter);
        }
        b.build().unwrap()
    }

    #[test]
    fn params_respect_caps() {
        let s = schema(5, 4);
        let p = AlgoParams::new(&s, DiscoveryConfig::capped(3, 2));
        assert_eq!(p.lattice.max_bound(), 3);
        assert_eq!(p.subspaces.len(), 4 + 6); // C(4,1) + C(4,2)
        assert!(!p.reports_full_space());
        assert_eq!(p.full_space, SubspaceMask::full(4));
        assert!(p.proper_subspaces.iter().all(|&m| m != p.full_space));

        let unrestricted = AlgoParams::new(&s, DiscoveryConfig::unrestricted());
        assert_eq!(unrestricted.subspaces.len(), 15);
        assert!(unrestricted.reports_full_space());
        assert_eq!(unrestricted.proper_subspaces.len(), 14);
    }

    #[test]
    fn constraint_cache_matches_direct_construction() {
        let t = Tuple::new(vec![3, 7, 9], vec![1.0]);
        let cache = ConstraintCache::new(&t, 3);
        for mask in 0..8u32 {
            let mask = BoundMask(mask);
            assert_eq!(*cache.get(mask), Constraint::from_tuple_mask(&t, mask));
        }
    }

    #[test]
    fn slice_dominance_agrees_with_tuple_dominance() {
        use sitfact_core::dominance;
        let dirs = [Direction::HigherIsBetter, Direction::LowerIsBetter];
        let a = Tuple::new(vec![], vec![5.0, 2.0]);
        let b = Tuple::new(vec![], vec![4.0, 3.0]);
        for m in SubspaceMask::enumerate(2, 2) {
            assert_eq!(
                dominates_measures(a.measures(), b.measures(), m, &dirs),
                dominance::dominates(&a, &b, m, &dirs)
            );
        }
        let (better, worse) = partition_measures(a.measures(), b.measures(), &dirs);
        assert_eq!(better, SubspaceMask(0b11));
        assert_eq!(worse, SubspaceMask::EMPTY);
        assert!(!dominated_in(better, worse, SubspaceMask(0b01)));
    }

    #[test]
    fn partition_dominated_in_matches_slice_dominance() {
        let dirs = [
            Direction::HigherIsBetter,
            Direction::HigherIsBetter,
            Direction::LowerIsBetter,
        ];
        let samples = [
            vec![1.0, 2.0, 3.0],
            vec![2.0, 2.0, 3.0],
            vec![1.0, 1.0, 4.0],
            vec![0.0, 5.0, 0.0],
        ];
        for a in &samples {
            for b in &samples {
                let (better, worse) = partition_measures(a, b, &dirs);
                for m in SubspaceMask::enumerate(3, 3) {
                    assert_eq!(
                        dominated_in(better, worse, m),
                        dominates_measures(b, a, m, &dirs),
                        "a={a:?} b={b:?} m={m:?}"
                    );
                }
            }
        }
    }
}
