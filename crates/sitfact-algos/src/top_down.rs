//! Algorithm 5 of the paper: `TopDown`.

use crate::common::{dominates_measures, AlgoParams, ConstraintCache};
use crate::traits::Discovery;
use sitfact_core::{
    BoundMask, Constraint, DiscoveryConfig, FxHashSet, Schema, SkylinePair, SubspaceMask, Tuple,
    TupleId,
};
use sitfact_storage::{
    MemorySkylineStore, SkylineStore, StoreStats, StoredEntry, Table, WorkStats,
};
use std::collections::VecDeque;

/// `TopDown` stores a tuple only at its **maximal** skyline constraints
/// (Invariant 2): the most general constraints for which the tuple is a
/// contextual skyline tuple. The lattice of tuple-satisfied constraints is
/// traversed top-down (most general first); pruning uses the full
/// `C^{t,t'}` intersection of Proposition 3, and demoting a stored tuple
/// requires pushing it down to the children of the constraint it loses
/// (the `Dominates` procedure of the paper).
///
/// Compared with [`BottomUp`](crate::BottomUp), far fewer copies of each
/// skyline tuple are stored (the memory gap of Fig. 10) at the price of more
/// intricate cell maintenance (the runtime gap of Fig. 8).
#[derive(Debug)]
pub struct TopDown<S: SkylineStore = MemorySkylineStore> {
    params: AlgoParams,
    store: S,
    stats: WorkStats,
}

impl TopDown<MemorySkylineStore> {
    /// Creates the algorithm with the default in-memory skyline store.
    pub fn new(schema: &Schema, config: DiscoveryConfig) -> Self {
        Self::with_store(schema, config, MemorySkylineStore::new())
    }
}

impl<S: SkylineStore> TopDown<S> {
    /// Creates the algorithm over a caller-provided skyline store backend.
    pub fn with_store(schema: &Schema, config: DiscoveryConfig, store: S) -> Self {
        TopDown {
            params: AlgoParams::new(schema, config),
            store,
            stats: WorkStats::default(),
        }
    }

    /// Read access to the underlying store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The derived algorithm parameters.
    pub fn params(&self) -> &AlgoParams {
        &self.params
    }
}

/// The paper's `Dominates(t', C, M)` procedure: the new tuple dominates the
/// stored tuple `entry` at cell `(cell_constraint, subspace)`, so the stored
/// tuple is removed there and, where necessary, re-stored at the children of
/// the cell constraint that the *new* tuple does not satisfy — those are its
/// new maximal skyline constraints (unless an existing maximal constraint
/// already covers them).
#[allow(clippy::too_many_arguments)]
pub(crate) fn demote_stored_tuple<S: SkylineStore>(
    params: &AlgoParams,
    store: &mut S,
    stats: &mut WorkStats,
    table: &Table,
    t: &Tuple,
    cell_mask: BoundMask,
    cell_constraint: &Constraint,
    subspace: SubspaceMask,
    entry: &StoredEntry,
) {
    store.remove(cell_constraint, subspace, entry.id);
    stats.store_writes += 1;
    let demoted = table.tuple(entry.id);
    if cell_mask.bound_count() >= params.lattice.max_bound() {
        // No children inside the maintained family: the demoted tuple simply
        // loses this maximal constraint.
        return;
    }
    for attr in 0..params.n_dims {
        if cell_mask.is_bound(attr) || t.dim(attr) == demoted.dim(attr) {
            // Children also satisfied by the new tuple will be handled by the
            // ongoing traversal (the new tuple dominates the stored one there
            // as well, so they are not skyline constraints of the stored
            // tuple anymore).
            continue;
        }
        let child_mask = BoundMask(cell_mask.0 | (1 << attr));
        let child_constraint = Constraint::from_tuple_mask(demoted, child_mask);
        // Maximality check: is the demoted tuple already stored at one of the
        // child's ancestors (within its own lattice)?
        let mut covered = false;
        for ancestor in child_mask.ancestors() {
            let ancestor_constraint = Constraint::from_tuple_mask(demoted, ancestor);
            stats.store_reads += 1;
            if store.contains(&ancestor_constraint, subspace, entry.id) {
                covered = true;
                break;
            }
        }
        if !covered {
            store.insert(&child_constraint, subspace, entry.clone());
            stats.store_writes += 1;
        }
    }
}

/// Computes `|λ_M(σ_C(R))|` from a maximal-constraint store: the skyline
/// tuples of a context are exactly the tuples stored at the constraint itself
/// or at any of its ancestors that additionally satisfy the constraint.
pub(crate) fn skyline_cardinality_from_maximal<S: SkylineStore>(
    store: &mut S,
    table: &Table,
    constraint: &Constraint,
    subspace: SubspaceMask,
) -> usize {
    let bound = constraint.bound_mask();
    let mut seen: FxHashSet<TupleId> = FxHashSet::default();
    for mask in bound.submasks() {
        let ancestor = Constraint::from_values(
            constraint
                .values()
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    if mask.is_bound(i) {
                        v
                    } else {
                        sitfact_core::UNBOUND
                    }
                })
                .collect(),
        );
        for entry in store.read(&ancestor, subspace).iter() {
            if let Some(tuple) = table.get(entry.id) {
                if constraint.matches(tuple) {
                    seen.insert(entry.id);
                }
            }
        }
    }
    seen.len()
}

impl<S: SkylineStore> Discovery for TopDown<S> {
    fn name(&self) -> &'static str {
        "TopDown"
    }

    fn discover_at(&mut self, table: &Table, t: &Tuple, t_id: TupleId) -> Vec<SkylinePair> {
        let cache = ConstraintCache::new(t, self.params.n_dims);
        let directions = self.params.directions.clone();
        let flag_len = self.params.lattice.flag_len();
        let mut out = Vec::new();
        let mut pruned = vec![false; flag_len];
        let mut in_ances = vec![false; flag_len];
        let mut enqueued = vec![false; flag_len];
        let subspaces = self.params.subspaces.clone();
        for subspace in subspaces {
            pruned.iter_mut().for_each(|p| *p = false);
            in_ances.iter_mut().for_each(|p| *p = false);
            enqueued.iter_mut().for_each(|p| *p = false);
            let mut queue: VecDeque<BoundMask> = VecDeque::new();
            queue.push_back(BoundMask::TOP);
            enqueued[0] = true;
            while let Some(mask) = queue.pop_front() {
                self.stats.traversed_constraints += 1;
                let constraint = cache.get(mask);
                let entries = self.store.read(constraint, subspace);
                self.stats.store_reads += 1;
                for entry in entries.iter() {
                    self.stats.comparisons += 1;
                    if dominates_measures(&entry.measures, t.measures(), subspace, &directions) {
                        // The paper's `Dominated` procedure: prune every
                        // constraint satisfied by both tuples.
                        let other = table.tuple(entry.id);
                        let agreement = BoundMask::agreement(t, other);
                        for sub in agreement.submasks() {
                            pruned[sub.0 as usize] = true;
                        }
                        pruned[mask.0 as usize] = true;
                        // Unlike BottomUp we must keep scanning this cell:
                        // other stored tuples may prune different constraint
                        // sets (they share different dimension values with t).
                    } else if dominates_measures(
                        t.measures(),
                        &entry.measures,
                        subspace,
                        &directions,
                    ) {
                        demote_stored_tuple(
                            &self.params,
                            &mut self.store,
                            &mut self.stats,
                            table,
                            t,
                            mask,
                            constraint,
                            subspace,
                            entry,
                        );
                    }
                }
                if !pruned[mask.0 as usize] {
                    out.push(SkylinePair::new(constraint.clone(), subspace));
                    if !in_ances[mask.0 as usize] {
                        self.store.insert(
                            constraint,
                            subspace,
                            StoredEntry::new(t_id, t.measures()),
                        );
                        self.stats.store_writes += 1;
                    }
                }
                // EnqueueChildren: traversal continues below pruned
                // constraints too — a descendant may bind an attribute the
                // dominating tuple does not share and escape the pruning.
                for child in self.params.lattice.children(mask) {
                    let idx = child.0 as usize;
                    if !pruned[mask.0 as usize] {
                        in_ances[idx] = true;
                    }
                    if !enqueued[idx] {
                        enqueued[idx] = true;
                        queue.push_back(child);
                    }
                }
            }
        }
        self.store.flush();
        out
    }

    fn work_stats(&self) -> WorkStats {
        self.stats
    }

    fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    fn skyline_cardinality_at(
        &mut self,
        table: &Table,
        constraint: &Constraint,
        subspace: SubspaceMask,
        limit: TupleId,
    ) -> usize {
        let within_family = constraint.bound_count() <= self.params.lattice.max_bound()
            && !subspace.is_empty()
            && subspace.len()
                <= self
                    .params
                    .subspaces
                    .iter()
                    .map(|s| s.len())
                    .max()
                    .unwrap_or(0);
        if within_family {
            // The store covers exactly the processed arrivals; `limit` only
            // constrains the out-of-family recompute below.
            skyline_cardinality_from_maximal(&mut self.store, table, constraint, subspace)
        } else {
            crate::common::skyline_cardinality_recompute(table, constraint, subspace, limit)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::BruteForce;
    use sitfact_core::dominance;
    use sitfact_core::pair::canonical_sort;
    use sitfact_core::{Direction, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new("s")
            .dimension("d1")
            .dimension("d2")
            .dimension("d3")
            .measure("m1", Direction::HigherIsBetter)
            .measure("m2", Direction::HigherIsBetter)
            .build()
            .unwrap()
    }

    /// The running example of the paper: after t5 arrives the store must match
    /// Fig. 4b (tuples only at maximal skyline constraints).
    #[test]
    fn reproduces_figure_4() {
        let schema = schema();
        let mut table = Table::new(schema.clone());
        let mut algo = TopDown::new(&schema, DiscoveryConfig::unrestricted());
        let rows: [([&str; 3], [f64; 2]); 5] = [
            (["a1", "b2", "c2"], [10.0, 15.0]),
            (["a1", "b1", "c1"], [15.0, 10.0]),
            (["a2", "b1", "c2"], [17.0, 17.0]),
            (["a2", "b1", "c1"], [20.0, 20.0]),
            (["a1", "b1", "c1"], [11.0, 15.0]),
        ];
        for (dims, measures) in rows {
            let ids = table.schema_mut().intern_dims(&dims).unwrap();
            let t = Tuple::new(ids, measures.to_vec());
            let _ = algo.discover(&table, &t);
            table.append(t).unwrap();
        }
        let full = SubspaceMask::full(2);
        let schema = table.schema();
        let get = |bindings: &[(&str, &str)]| Constraint::parse(schema, bindings).unwrap();
        let mut cell = |c: &Constraint| {
            let mut ids: Vec<TupleId> = algo.store.read(c, full).iter().map(|e| e.id).collect();
            ids.sort_unstable();
            ids
        };
        // Fig. 4b: ⊤ = {t4}, ⟨a1,*,*⟩ = {t2, t5}, ⟨*,b2,*⟩ = {t1},
        // ⟨*,*,c2⟩ = {t3}, ⟨a1,*,c2⟩ = {t1}; everything below a1 is empty.
        assert_eq!(cell(&Constraint::top(3)), vec![3]);
        assert_eq!(cell(&get(&[("d1", "a1")])), vec![1, 4]);
        assert_eq!(cell(&get(&[("d2", "b2")])), vec![0]);
        assert_eq!(cell(&get(&[("d3", "c2")])), vec![2]);
        assert_eq!(cell(&get(&[("d1", "a1"), ("d3", "c2")])), vec![0]);
        assert!(cell(&get(&[("d1", "a1"), ("d2", "b1")])).is_empty());
        assert!(cell(&get(&[("d1", "a1"), ("d2", "b1"), ("d3", "c1")])).is_empty());
        assert!(cell(&get(&[("d2", "b1"), ("d3", "c1")])).is_empty());
    }

    /// Invariant 2: a tuple is stored at a cell iff that constraint is one of
    /// its maximal skyline constraints.
    #[test]
    fn invariant_2_holds_on_random_stream() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(23);
        let schema = schema();
        let mut table = Table::new(schema.clone());
        let mut algo = TopDown::new(&schema, DiscoveryConfig::unrestricted());
        for step in 0..80 {
            let dims = vec![
                rng.gen_range(0..3u32),
                rng.gen_range(0..3u32),
                rng.gen_range(0..2u32),
            ];
            let measures = vec![rng.gen_range(0..5) as f64, rng.gen_range(0..5) as f64];
            let t = Tuple::new(dims, measures);
            let _ = algo.discover(&table, &t);
            table.append(t).unwrap();
            if step % 20 != 19 {
                continue;
            }
            let directions = table.schema().directions().to_vec();
            let lattice = sitfact_core::ConstraintLattice::unrestricted(3);
            for (id, tuple) in table.iter() {
                for m in SubspaceMask::enumerate(2, 2) {
                    // Compute the tuple's skyline constraints by brute force.
                    let mut skyline_masks = Vec::new();
                    for mask in lattice.enumerate_top_down() {
                        let c = Constraint::from_tuple_mask(tuple, mask);
                        let sky = dominance::skyline_of(table.context(&c), m, &directions);
                        if sky.iter().any(|(sid, _)| *sid == id) {
                            skyline_masks.push(mask);
                        }
                    }
                    // Maximal = no proper submask is also a skyline constraint.
                    let maximal: Vec<BoundMask> = skyline_masks
                        .iter()
                        .copied()
                        .filter(|mask| {
                            !mask
                                .ancestors()
                                .iter()
                                .any(|anc| skyline_masks.contains(anc))
                        })
                        .collect();
                    for mask in lattice.enumerate_top_down() {
                        let c = Constraint::from_tuple_mask(tuple, mask);
                        let stored = algo.store.read(&c, m).iter().any(|e| e.id == id);
                        let expected = maximal.contains(&mask);
                        assert_eq!(
                            stored, expected,
                            "tuple {id} mask {mask} subspace {m:?} (step {step})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn agrees_with_brute_force_on_random_stream() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(31);
        let schema = schema();
        let config = DiscoveryConfig::unrestricted();
        let mut table = Table::new(schema.clone());
        let mut subject = TopDown::new(&schema, config);
        let mut reference = BruteForce::new(&schema, config);
        for _ in 0..70 {
            let dims = vec![
                rng.gen_range(0..3u32),
                rng.gen_range(0..2u32),
                rng.gen_range(0..3u32),
            ];
            let measures = vec![rng.gen_range(0..4) as f64, rng.gen_range(0..4) as f64];
            let t = Tuple::new(dims, measures);
            let mut expected = reference.discover(&table, &t);
            let mut actual = subject.discover(&table, &t);
            canonical_sort(&mut expected);
            canonical_sort(&mut actual);
            assert_eq!(expected, actual, "diverged at tuple {}", table.len());
            table.append(t).unwrap();
        }
    }

    #[test]
    fn stores_fewer_entries_than_bottom_up() {
        use crate::bottom_up::BottomUp;
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(17);
        let schema = schema();
        let config = DiscoveryConfig::unrestricted();
        let mut table = Table::new(schema.clone());
        let mut top_down = TopDown::new(&schema, config);
        let mut bottom_up = BottomUp::new(&schema, config);
        for _ in 0..120 {
            let dims = vec![
                rng.gen_range(0..4u32),
                rng.gen_range(0..4u32),
                rng.gen_range(0..3u32),
            ];
            let measures = vec![rng.gen_range(0..8) as f64, rng.gen_range(0..8) as f64];
            let t = Tuple::new(dims, measures);
            let _ = top_down.discover(&table, &t);
            let _ = bottom_up.discover(&table, &t);
            table.append(t).unwrap();
        }
        // The headline space claim of the paper (Fig. 10b): maximal-constraint
        // storage keeps strictly fewer entries than exhaustive storage.
        assert!(
            top_down.store_stats().stored_entries < bottom_up.store_stats().stored_entries,
            "TopDown {} vs BottomUp {}",
            top_down.store_stats().stored_entries,
            bottom_up.store_stats().stored_entries
        );
    }

    #[test]
    fn skyline_cardinality_matches_ground_truth() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(41);
        let schema = schema();
        let mut table = Table::new(schema.clone());
        let mut algo = TopDown::new(&schema, DiscoveryConfig::unrestricted());
        for _ in 0..50 {
            let dims = vec![
                rng.gen_range(0..2u32),
                rng.gen_range(0..2u32),
                rng.gen_range(0..2u32),
            ];
            let measures = vec![rng.gen_range(0..4) as f64, rng.gen_range(0..4) as f64];
            let t = Tuple::new(dims, measures);
            let _ = algo.discover(&table, &t);
            table.append(t).unwrap();
        }
        let directions = table.schema().directions().to_vec();
        let sample = table.tuple(20);
        for mask in sitfact_core::ConstraintLattice::unrestricted(3).enumerate_top_down() {
            let c = Constraint::from_tuple_mask(sample, mask);
            for m in SubspaceMask::enumerate(2, 2) {
                let expected = dominance::skyline_of(table.context(&c), m, &directions).len();
                assert_eq!(
                    algo.skyline_cardinality(&table, &c, m),
                    expected,
                    "constraint {c:?} subspace {m:?}"
                );
            }
        }
    }
}
