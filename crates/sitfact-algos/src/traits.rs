//! The [`Discovery`] trait implemented by every algorithm, plus the
//! [`AlgorithmKind`] enumeration used by the experiment harness.

use sitfact_core::{dominance, Constraint, SkylinePair, SubspaceMask, Tuple};
use sitfact_storage::{StoreStats, Table, WorkStats};

/// A situational-fact discovery algorithm.
///
/// ## Driving protocol
///
/// The caller owns the append-only [`Table`] and, for every arriving tuple
/// `t`, performs:
///
/// 1. `let facts = algo.discover(&table, &t);` — `table` holds only the
///    *historical* tuples; the algorithm updates whatever internal state it
///    keeps (skyline stores, k-d tree, …) to account for `t`;
/// 2. `table.append(t)` — the tuple becomes history.
///
/// [`Discovery::skyline_cardinality`] may be called *after* the append to
/// support prominence ranking.
pub trait Discovery {
    /// Short, stable name used in reports (matches the paper's naming).
    fn name(&self) -> &'static str;

    /// Computes `S_t`: every constraint–measure pair for which the new tuple
    /// `t` is a contextual skyline tuple, considering only constraints with at
    /// most `d̂` bound attributes and subspaces with at most `m̂` measures.
    fn discover(&mut self, table: &Table, t: &Tuple) -> Vec<SkylinePair>;

    /// Cumulative work counters (comparisons, traversed constraints, …).
    fn work_stats(&self) -> WorkStats;

    /// Storage counters of the algorithm's internal state.
    fn store_stats(&self) -> StoreStats;

    /// `|λ_M(σ_C(R))|` — the number of contextual skyline tuples for
    /// `(constraint, subspace)` according to the algorithm's current state.
    ///
    /// The default implementation recomputes the skyline from the table (the
    /// ground truth, O(context²)); algorithms that materialise skylines
    /// override it with a cheap lookup. Call after appending the tuple whose
    /// facts are being ranked.
    fn skyline_cardinality(
        &mut self,
        table: &Table,
        constraint: &Constraint,
        subspace: SubspaceMask,
    ) -> usize {
        let directions = table.schema().directions();
        dominance::skyline_of(table.context(constraint), subspace, directions).len()
    }
}

/// Enumeration of every implemented algorithm, used by benches and examples to
/// construct them uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// Algorithm 2 of the paper.
    BruteForce,
    /// Algorithm 3 of the paper.
    BaselineSeq,
    /// The k-d-tree baseline of Section IV.
    BaselineIdx,
    /// The per-context Compressed Skycube adaptation (Section II).
    CCsc,
    /// Algorithm 4 of the paper.
    BottomUp,
    /// Algorithm 5 of the paper.
    TopDown,
    /// BottomUp with sharing across measure subspaces (Section V-C).
    SBottomUp,
    /// Algorithm 6 of the paper.
    STopDown,
    /// SBottomUp over the file-backed store (Section VI-C).
    FsBottomUp,
    /// STopDown over the file-backed store (Section VI-C).
    FsTopDown,
}

impl AlgorithmKind {
    /// All in-memory algorithm kinds, in the order the paper introduces them.
    pub const IN_MEMORY: [AlgorithmKind; 8] = [
        AlgorithmKind::BruteForce,
        AlgorithmKind::BaselineSeq,
        AlgorithmKind::BaselineIdx,
        AlgorithmKind::CCsc,
        AlgorithmKind::BottomUp,
        AlgorithmKind::TopDown,
        AlgorithmKind::SBottomUp,
        AlgorithmKind::STopDown,
    ];

    /// Stable display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::BruteForce => "BruteForce",
            AlgorithmKind::BaselineSeq => "BaselineSeq",
            AlgorithmKind::BaselineIdx => "BaselineIdx",
            AlgorithmKind::CCsc => "C-CSC",
            AlgorithmKind::BottomUp => "BottomUp",
            AlgorithmKind::TopDown => "TopDown",
            AlgorithmKind::SBottomUp => "SBottomUp",
            AlgorithmKind::STopDown => "STopDown",
            AlgorithmKind::FsBottomUp => "FSBottomUp",
            AlgorithmKind::FsTopDown => "FSTopDown",
        }
    }

    /// Whether the algorithm keeps skyline state that grows with the stream
    /// (false only for the stateless baselines that re-derive everything from
    /// the table).
    pub fn is_incremental(self) -> bool {
        !matches!(self, AlgorithmKind::BruteForce | AlgorithmKind::BaselineSeq)
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = AlgorithmKind::IN_MEMORY.iter().map(|k| k.name()).collect();
        names.push(AlgorithmKind::FsBottomUp.name());
        names.push(AlgorithmKind::FsTopDown.name());
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }

    #[test]
    fn statefulness_classification() {
        assert!(!AlgorithmKind::BruteForce.is_incremental());
        assert!(!AlgorithmKind::BaselineSeq.is_incremental());
        assert!(AlgorithmKind::BaselineIdx.is_incremental());
        assert!(AlgorithmKind::BottomUp.is_incremental());
        assert!(AlgorithmKind::FsTopDown.is_incremental());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(AlgorithmKind::STopDown.to_string(), "STopDown");
    }
}
