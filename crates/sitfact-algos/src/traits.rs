//! The [`Discovery`] trait implemented by every algorithm, plus the
//! [`AlgorithmKind`] enumeration used by the experiment harness.

use sitfact_core::{Constraint, Result, SitFactError, SkylinePair, SubspaceMask, Tuple, TupleId};
use sitfact_storage::{StoreCell, StoreStats, Table, WorkStats};

/// A situational-fact discovery algorithm.
///
/// ## Driving protocol (per arrival)
///
/// The caller owns the append-only [`Table`] and, for every arriving tuple
/// `t`, performs:
///
/// 1. `let facts = algo.discover(&table, &t);` — `table` holds only the
///    *historical* tuples; the algorithm updates whatever internal state it
///    keeps (skyline stores, k-d tree, …) to account for `t`;
/// 2. `table.append(t)` — the tuple becomes history.
///
/// [`Discovery::skyline_cardinality`] may be called *after* the append to
/// support prominence ranking.
///
/// ## Driving protocol (batched)
///
/// A batch driver appends a whole window to the table first
/// ([`Table::append_batch`]) and then replays the arrivals in order against
/// the *already extended* table. Because rows beyond the current arrival are
/// physically present, the driver must use the id-explicit entry points:
///
/// 1. `algo.begin_batch(window_len)` — lets the algorithm warm caches and
///    defer per-arrival housekeeping (e.g. store flushes) to the batch end;
/// 2. for each arrival `i` with id `t_id`:
///    [`Discovery::discover_at`]`(table, t, t_id)` — the algorithm must
///    behave exactly as if the table ended just before `t_id`, and
///    [`Discovery::skyline_cardinality_at`]`(…, t_id + 1)` for ranking;
/// 3. `algo.end_batch()` — flush whatever was deferred.
pub trait Discovery {
    /// Short, stable name used in reports (matches the paper's naming).
    fn name(&self) -> &'static str;

    /// Computes `S_t` for a tuple with an explicit id: every
    /// constraint–measure pair for which the new tuple `t` is a contextual
    /// skyline tuple against the rows that arrived *before* it, considering
    /// only constraints with at most `d̂` bound attributes and subspaces with
    /// at most `m̂` measures.
    ///
    /// `t_id` is the id the tuple occupies (or will occupy) in the table.
    /// The table may already contain rows with ids `>= t_id` (the batched
    /// protocol appends the window up front); implementations must ignore
    /// them — incremental algorithms do so naturally because their state
    /// only ever covers the arrivals already processed, while scanning
    /// baselines must bound their table scans to ids `< t_id`.
    fn discover_at(&mut self, table: &Table, t: &Tuple, t_id: TupleId) -> Vec<SkylinePair>;

    /// Computes `S_t` under the per-arrival protocol, where the table holds
    /// exactly the history and `t` will be appended next.
    fn discover(&mut self, table: &Table, t: &Tuple) -> Vec<SkylinePair> {
        self.discover_at(table, t, table.next_id())
    }

    /// Marks the start of a window of [`Discovery::discover_at`] calls.
    ///
    /// Default: no-op. Algorithms that keep per-arrival scratch (constraint
    /// caches, pruning matrices) or buffer store writes override this to keep
    /// that state warm across the window instead of resetting per arrival.
    fn begin_batch(&mut self, expected_arrivals: usize) {
        let _ = expected_arrivals;
    }

    /// Marks the end of a window started by [`Discovery::begin_batch`];
    /// deferred housekeeping (store flushes, scratch trimming) happens here.
    /// Default: no-op.
    fn end_batch(&mut self) {}

    /// Cumulative work counters (comparisons, traversed constraints, …).
    fn work_stats(&self) -> WorkStats;

    /// Storage counters of the algorithm's internal state.
    fn store_stats(&self) -> StoreStats;

    /// `|λ_M(σ_C(R_{<limit}))|` — the number of contextual skyline tuples for
    /// `(constraint, subspace)` among the rows with id `< limit`.
    ///
    /// The default implementation recomputes the skyline from the table (the
    /// ground truth, O(context²)), truncating the context at `limit` so a
    /// batch driver can rank an arrival without seeing rows that arrived
    /// after it. Algorithms that materialise skylines override it with a
    /// cheap store lookup: their store reflects exactly the arrivals
    /// processed so far, so `limit` only matters for their out-of-family
    /// fallback.
    fn skyline_cardinality_at(
        &mut self,
        table: &Table,
        constraint: &Constraint,
        subspace: SubspaceMask,
        limit: TupleId,
    ) -> usize {
        crate::common::skyline_cardinality_recompute(table, constraint, subspace, limit)
    }

    /// `|λ_M(σ_C(R))|` over the full table — the per-arrival form of
    /// [`Discovery::skyline_cardinality_at`]. Call after appending the tuple
    /// whose facts are being ranked.
    fn skyline_cardinality(
        &mut self,
        table: &Table,
        constraint: &Constraint,
        subspace: SubspaceMask,
    ) -> usize {
        self.skyline_cardinality_at(table, constraint, subspace, table.next_id())
    }

    /// Dumps the algorithm's durable state — its skyline-store cells — for a
    /// crash-recovery snapshot, or `None` when the algorithm cannot export
    /// (the default; recovery then falls back to full-log replay). Scratch
    /// state (pruning matrices, caches, work counters) is deliberately
    /// excluded: it is rebuilt per arrival and not observable through the
    /// monitor's query surface.
    fn export_store_cells(&self) -> Option<Vec<StoreCell>> {
        None
    }

    /// Replaces the algorithm's durable state with previously exported
    /// cells. The default refuses, matching the default
    /// [`Discovery::export_store_cells`].
    fn import_store_cells(&mut self, cells: Vec<StoreCell>) -> Result<()> {
        let _ = cells;
        Err(SitFactError::InvalidConfig(format!(
            "algorithm {} does not support state import",
            self.name()
        )))
    }

    /// Repairs the algorithm's internal state after the sliding window
    /// expires tuple `t_id`. Called by the windowed monitors *after*
    /// [`Table::retract_prefix`] tombstoned the row (so `table.iter()` and
    /// `table.context(…)` already see only survivors) but *before*
    /// [`Table::compact_retracted`] drops it physically — `table.tuple(t_id)`
    /// still yields the expired row for targeted repair.
    ///
    /// Implementations must leave their state indistinguishable from an
    /// algorithm that only ever processed the surviving suffix: when an
    /// expired tuple leaves a contextual skyline, the region it dominated is
    /// re-promoted by recomputing that skyline from the live context.
    ///
    /// The default refuses, so monitors can detect algorithms that cannot run
    /// under a sliding window. Stateless scanning baselines accept trivially
    /// (they re-derive everything from the — now live-only — table).
    fn retract(&mut self, table: &Table, t_id: TupleId) -> Result<()> {
        let _ = (table, t_id);
        Err(SitFactError::InvalidConfig(format!(
            "algorithm {} does not support retraction",
            self.name()
        )))
    }
}

/// Enumeration of every implemented algorithm, used by benches and examples to
/// construct them uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// Algorithm 2 of the paper.
    BruteForce,
    /// Algorithm 3 of the paper.
    BaselineSeq,
    /// The k-d-tree baseline of Section IV.
    BaselineIdx,
    /// The per-context Compressed Skycube adaptation (Section II).
    CCsc,
    /// Algorithm 4 of the paper.
    BottomUp,
    /// Algorithm 5 of the paper.
    TopDown,
    /// BottomUp with sharing across measure subspaces (Section V-C).
    SBottomUp,
    /// Algorithm 6 of the paper.
    STopDown,
    /// SBottomUp over the file-backed store (Section VI-C).
    FsBottomUp,
    /// STopDown over the file-backed store (Section VI-C).
    FsTopDown,
}

impl AlgorithmKind {
    /// All in-memory algorithm kinds, in the order the paper introduces them.
    pub const IN_MEMORY: [AlgorithmKind; 8] = [
        AlgorithmKind::BruteForce,
        AlgorithmKind::BaselineSeq,
        AlgorithmKind::BaselineIdx,
        AlgorithmKind::CCsc,
        AlgorithmKind::BottomUp,
        AlgorithmKind::TopDown,
        AlgorithmKind::SBottomUp,
        AlgorithmKind::STopDown,
    ];

    /// Stable display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::BruteForce => "BruteForce",
            AlgorithmKind::BaselineSeq => "BaselineSeq",
            AlgorithmKind::BaselineIdx => "BaselineIdx",
            AlgorithmKind::CCsc => "C-CSC",
            AlgorithmKind::BottomUp => "BottomUp",
            AlgorithmKind::TopDown => "TopDown",
            AlgorithmKind::SBottomUp => "SBottomUp",
            AlgorithmKind::STopDown => "STopDown",
            AlgorithmKind::FsBottomUp => "FSBottomUp",
            AlgorithmKind::FsTopDown => "FSTopDown",
        }
    }

    /// Whether the algorithm keeps skyline state that grows with the stream
    /// (false only for the stateless baselines that re-derive everything from
    /// the table).
    pub fn is_incremental(self) -> bool {
        !matches!(self, AlgorithmKind::BruteForce | AlgorithmKind::BaselineSeq)
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = AlgorithmKind::IN_MEMORY.iter().map(|k| k.name()).collect();
        names.push(AlgorithmKind::FsBottomUp.name());
        names.push(AlgorithmKind::FsTopDown.name());
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }

    #[test]
    fn statefulness_classification() {
        assert!(!AlgorithmKind::BruteForce.is_incremental());
        assert!(!AlgorithmKind::BaselineSeq.is_incremental());
        assert!(AlgorithmKind::BaselineIdx.is_incremental());
        assert!(AlgorithmKind::BottomUp.is_incremental());
        assert!(AlgorithmKind::FsTopDown.is_incremental());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(AlgorithmKind::STopDown.to_string(), "STopDown");
    }
}
