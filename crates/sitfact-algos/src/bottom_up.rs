//! Algorithm 4 of the paper: `BottomUp`.

use crate::common::{dominates_measures, AlgoParams, ConstraintCache};
use crate::traits::Discovery;
use sitfact_core::{
    BoundMask, Constraint, DiscoveryConfig, Schema, SkylinePair, SubspaceMask, Tuple, TupleId,
};
use sitfact_storage::{
    MemorySkylineStore, SkylineStore, StoreStats, StoredEntry, Table, WorkStats,
};
use std::collections::VecDeque;

/// `BottomUp` stores every contextual skyline tuple in **every** cell
/// `µ_{C,M}` that qualifies it (Invariant 1) and, for each measure subspace,
/// traverses the lattice of tuple-satisfied constraints bottom-up
/// (most-specific first), pruning the ancestors of any constraint at which the
/// new tuple is found dominated.
///
/// The redundancy of the storage scheme buys simple, fast per-cell logic: a
/// comparison against a cell's contents is always a comparison against the
/// complete contextual skyline, so a single dominating tuple settles the cell
/// and its ancestors at once. The price is memory: the same tuple may be
/// stored in thousands of cells, the space/time trade-off the paper's Fig. 10
/// measures.
#[derive(Debug)]
pub struct BottomUp<S: SkylineStore = MemorySkylineStore> {
    params: AlgoParams,
    store: S,
    stats: WorkStats,
}

impl BottomUp<MemorySkylineStore> {
    /// Creates the algorithm with the default in-memory skyline store.
    pub fn new(schema: &Schema, config: DiscoveryConfig) -> Self {
        Self::with_store(schema, config, MemorySkylineStore::new())
    }
}

impl<S: SkylineStore> BottomUp<S> {
    /// Creates the algorithm over a caller-provided skyline store backend.
    pub fn with_store(schema: &Schema, config: DiscoveryConfig, store: S) -> Self {
        BottomUp {
            params: AlgoParams::new(schema, config),
            store,
            stats: WorkStats::default(),
        }
    }

    /// Read access to the underlying store (used by prominence queries and
    /// invariant-checking tests).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The derived algorithm parameters.
    pub fn params(&self) -> &AlgoParams {
        &self.params
    }

    /// Processes one subspace: the core of Algorithm 4. Shared with
    /// [`SBottomUp`](crate::SBottomUp), which seeds `pruned` from its
    /// full-space pass.
    // One parameter per piece of Algorithm 4 state; bundling them into a
    // struct would just move the argument list one level down.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn traverse_subspace(
        params: &AlgoParams,
        store: &mut S,
        stats: &mut WorkStats,
        cache: &ConstraintCache,
        t: &Tuple,
        t_id: TupleId,
        subspace: SubspaceMask,
        pruned: &mut [bool],
        out: &mut Vec<SkylinePair>,
    ) {
        let directions = &params.directions;
        let flag_len = params.lattice.flag_len();
        let mut enqueued = vec![false; flag_len];
        let mut queue: VecDeque<BoundMask> = VecDeque::new();
        for bottom in params.lattice.bottoms() {
            if !pruned[bottom.0 as usize] {
                enqueued[bottom.0 as usize] = true;
                queue.push_back(bottom);
            }
        }
        while let Some(mask) = queue.pop_front() {
            if pruned[mask.0 as usize] {
                // Pruned after being enqueued: skip entirely. Its parents are
                // necessarily pruned too (the pruned set is closed under
                // unbinding), so nothing is lost by not expanding it.
                continue;
            }
            stats.traversed_constraints += 1;
            let constraint = cache.get(mask);
            let entries = store.read(constraint, subspace);
            stats.store_reads += 1;
            let mut dominated = false;
            for entry in entries.iter() {
                stats.comparisons += 1;
                if dominates_measures(&entry.measures, t.measures(), subspace, directions) {
                    dominated = true;
                    // Proposition 2: the new tuple is dominated in every more
                    // general context as well.
                    for ancestor in mask.ancestors() {
                        pruned[ancestor.0 as usize] = true;
                    }
                    break;
                } else if dominates_measures(t.measures(), &entry.measures, subspace, directions) {
                    // The stored tuple is no longer a skyline tuple here.
                    store.remove(constraint, subspace, entry.id);
                    stats.store_writes += 1;
                }
            }
            if !dominated {
                out.push(SkylinePair::new(constraint.clone(), subspace));
                store.insert(constraint, subspace, StoredEntry::new(t_id, t.measures()));
                stats.store_writes += 1;
                for parent in mask.parents() {
                    let idx = parent.0 as usize;
                    if !enqueued[idx] && !pruned[idx] {
                        enqueued[idx] = true;
                        queue.push_back(parent);
                    }
                }
            }
        }
    }
}

impl<S: SkylineStore> Discovery for BottomUp<S> {
    fn name(&self) -> &'static str {
        "BottomUp"
    }

    fn discover_at(&mut self, table: &Table, t: &Tuple, t_id: TupleId) -> Vec<SkylinePair> {
        let _ = table; // comparisons run against the store, never the table
        let cache = ConstraintCache::new(t, self.params.n_dims);
        let flag_len = self.params.lattice.flag_len();
        let mut out = Vec::new();
        let mut pruned = vec![false; flag_len];
        let subspaces = self.params.subspaces.clone();
        for subspace in subspaces {
            pruned.iter_mut().for_each(|p| *p = false);
            Self::traverse_subspace(
                &self.params,
                &mut self.store,
                &mut self.stats,
                &cache,
                t,
                t_id,
                subspace,
                &mut pruned,
                &mut out,
            );
        }
        self.store.flush();
        out
    }

    fn work_stats(&self) -> WorkStats {
        self.stats
    }

    fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    fn skyline_cardinality_at(
        &mut self,
        table: &Table,
        constraint: &Constraint,
        subspace: SubspaceMask,
        limit: TupleId,
    ) -> usize {
        // Invariant 1: µ_{C,M} holds exactly λ_M(σ_C(R)) — a cell read is the
        // answer, provided the pair lies inside the maintained family. The
        // store covers exactly the arrivals processed so far, so `limit` only
        // constrains the out-of-family recompute.
        let within_family = constraint.bound_count() <= self.params.lattice.max_bound()
            && subspace.len()
                <= self
                    .params
                    .subspaces
                    .iter()
                    .map(|s| s.len())
                    .max()
                    .unwrap_or(0)
            && !subspace.is_empty();
        if within_family {
            self.store.read(constraint, subspace).len()
        } else {
            crate::common::skyline_cardinality_recompute(table, constraint, subspace, limit)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::BruteForce;
    use sitfact_core::dominance;
    use sitfact_core::pair::canonical_sort;
    use sitfact_core::{Direction, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new("s")
            .dimension("d1")
            .dimension("d2")
            .dimension("d3")
            .measure("m1", Direction::HigherIsBetter)
            .measure("m2", Direction::HigherIsBetter)
            .build()
            .unwrap()
    }

    /// Drives the running example of the paper (Table IV) and checks the
    /// store contents of Fig. 3 after t5 arrives.
    #[test]
    fn reproduces_figure_3() {
        let schema = schema();
        let mut table = Table::new(schema.clone());
        let mut algo = BottomUp::new(&schema, DiscoveryConfig::unrestricted());
        let rows: [([&str; 3], [f64; 2]); 5] = [
            (["a1", "b2", "c2"], [10.0, 15.0]),
            (["a1", "b1", "c1"], [15.0, 10.0]),
            (["a2", "b1", "c2"], [17.0, 17.0]),
            (["a2", "b1", "c1"], [20.0, 20.0]),
            (["a1", "b1", "c1"], [11.0, 15.0]),
        ];
        for (dims, measures) in rows {
            let ids = table.schema_mut().intern_dims(&dims).unwrap();
            let t = Tuple::new(ids, measures.to_vec());
            let _ = algo.discover(&table, &t);
            table.append(t).unwrap();
        }
        let full = SubspaceMask::full(2);
        let schema = table.schema();
        let get = |bindings: &[(&str, &str)]| Constraint::parse(schema, bindings).unwrap();
        // Fig. 3b: µ for ⟨a1,*,*⟩ = {t2, t5}, ⟨a1,b1,c1⟩ = {t2, t5},
        // ⊤ = {t4}, ⟨*,b1,c1⟩ = {t4}.
        let mut cell = |c: &Constraint| {
            let mut ids: Vec<TupleId> = algo.store.read(c, full).iter().map(|e| e.id).collect();
            ids.sort_unstable();
            ids
        };
        assert_eq!(cell(&get(&[("d1", "a1")])), vec![1, 4]);
        assert_eq!(
            cell(&get(&[("d1", "a1"), ("d2", "b1"), ("d3", "c1")])),
            vec![1, 4]
        );
        assert_eq!(cell(&Constraint::top(3)), vec![3]);
        assert_eq!(cell(&get(&[("d2", "b1"), ("d3", "c1")])), vec![3]);
    }

    /// Invariant 1: after any prefix of a random stream, every cell equals the
    /// recomputed contextual skyline.
    #[test]
    fn invariant_1_holds_on_random_stream() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(11);
        let schema = schema();
        let mut table = Table::new(schema.clone());
        let mut algo = BottomUp::new(&schema, DiscoveryConfig::unrestricted());
        for step in 0..80 {
            let dims = vec![
                rng.gen_range(0..3u32),
                rng.gen_range(0..3u32),
                rng.gen_range(0..2u32),
            ];
            let measures = vec![rng.gen_range(0..5) as f64, rng.gen_range(0..5) as f64];
            let t = Tuple::new(dims, measures);
            let _ = algo.discover(&table, &t);
            table.append(t).unwrap();
            if step % 20 != 19 {
                continue;
            }
            // Validate every non-empty cell against a recomputed skyline.
            let directions = table.schema().directions().to_vec();
            for (constraint, subspace, entries) in algo.store.iter_cells() {
                let expected: std::collections::BTreeSet<TupleId> =
                    dominance::skyline_of(table.context(constraint), subspace, &directions)
                        .into_iter()
                        .map(|(id, _)| id)
                        .collect();
                let actual: std::collections::BTreeSet<TupleId> =
                    entries.iter().map(|e| e.id).collect();
                assert_eq!(expected, actual, "cell ({constraint:?}, {subspace:?})");
            }
        }
    }

    #[test]
    fn agrees_with_brute_force_on_random_stream() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        let schema = schema();
        let config = DiscoveryConfig::unrestricted();
        let mut table = Table::new(schema.clone());
        let mut subject = BottomUp::new(&schema, config);
        let mut reference = BruteForce::new(&schema, config);
        for _ in 0..70 {
            let dims = vec![
                rng.gen_range(0..3u32),
                rng.gen_range(0..2u32),
                rng.gen_range(0..3u32),
            ];
            let measures = vec![rng.gen_range(0..4) as f64, rng.gen_range(0..4) as f64];
            let t = Tuple::new(dims, measures);
            let mut expected = reference.discover(&table, &t);
            let mut actual = subject.discover(&table, &t);
            canonical_sort(&mut expected);
            canonical_sort(&mut actual);
            assert_eq!(expected, actual, "diverged at tuple {}", table.len());
            table.append(t).unwrap();
        }
    }

    #[test]
    fn skyline_cardinality_matches_ground_truth() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(5);
        let schema = schema();
        let mut table = Table::new(schema.clone());
        let mut algo = BottomUp::new(&schema, DiscoveryConfig::unrestricted());
        for _ in 0..50 {
            let dims = vec![
                rng.gen_range(0..2u32),
                rng.gen_range(0..2u32),
                rng.gen_range(0..2u32),
            ];
            let measures = vec![rng.gen_range(0..4) as f64, rng.gen_range(0..4) as f64];
            let t = Tuple::new(dims, measures);
            let _ = algo.discover(&table, &t);
            table.append(t).unwrap();
        }
        let directions = table.schema().directions().to_vec();
        let sample = table.tuple(10);
        for mask in sitfact_core::ConstraintLattice::unrestricted(3).enumerate_top_down() {
            let c = Constraint::from_tuple_mask(sample, mask);
            for m in SubspaceMask::enumerate(2, 2) {
                let expected = dominance::skyline_of(table.context(&c), m, &directions).len();
                assert_eq!(algo.skyline_cardinality(&table, &c, m), expected);
            }
        }
    }

    #[test]
    fn work_and_store_stats_grow() {
        let schema = schema();
        let mut table = Table::new(schema.clone());
        let mut algo = BottomUp::new(&schema, DiscoveryConfig::unrestricted());
        for i in 0..10 {
            let t = Tuple::new(vec![0, 1, 2], vec![i as f64, (10 - i) as f64]);
            let _ = algo.discover(&table, &t);
            table.append(t).unwrap();
        }
        assert!(algo.work_stats().comparisons > 0);
        assert!(algo.work_stats().traversed_constraints > 0);
        assert!(algo.store_stats().stored_entries > 0);
        assert_eq!(algo.name(), "BottomUp");
    }
}
