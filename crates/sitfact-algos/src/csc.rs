//! `C-CSC`: the per-context Compressed Skycube adaptation the paper compares
//! against (Section II, evaluated in Section VI).
//!
//! The Compressed Skycube of Xia & Zhang (SIGMOD 2006) stores each tuple only
//! in its **minimal skyline subspaces**: the measure subspaces in which the
//! tuple is a skyline tuple but no proper subspace of which keeps it in the
//! skyline. Because the CSC knows nothing about contexts, adapting it to
//! situational-fact discovery means maintaining **one CSC per context** ever
//! observed and, when a tuple arrives, querying the CSC of every context the
//! tuple satisfies for every measure subspace — exactly the overkill the paper
//! describes, which is why C-CSC sits between the baselines and the lattice
//! algorithms in the evaluation.

use crate::common::{partition_measures, AlgoParams, ConstraintCache};
use crate::traits::Discovery;
use sitfact_core::{
    Constraint, Direction, DiscoveryConfig, FxHashMap, Schema, SkylinePair, SubspaceMask, Tuple,
    TupleId,
};
use sitfact_storage::{StoreStats, StoredEntry, Table, WorkStats};

/// Compressed Skycube of a single context: tuples keyed by the minimal
/// skyline subspaces they are stored under.
#[derive(Debug, Default)]
struct ContextCsc {
    stored: FxHashMap<SubspaceMask, Vec<StoredEntry>>,
}

impl ContextCsc {
    fn entry_count(&self) -> u64 {
        self.stored.values().map(|v| v.len() as u64).sum()
    }

    fn all_entries(&self) -> impl Iterator<Item = (SubspaceMask, &StoredEntry)> {
        self.stored
            .iter()
            .flat_map(|(&s, entries)| entries.iter().map(move |e| (s, e)))
    }

    fn remove_everywhere(&mut self, id: TupleId) {
        self.stored.retain(|_, entries| {
            entries.retain(|e| e.id != id);
            !entries.is_empty()
        });
    }

    fn insert(&mut self, subspace: SubspaceMask, entry: StoredEntry) {
        self.stored.entry(subspace).or_default().push(entry);
    }
}

/// Given the measure vector of a tuple and the measure vectors of the other
/// tuples of its context, returns for every family subspace whether the tuple
/// is dominated there (`true` = dominated). One partition per other tuple
/// (Proposition 4) answers all subspaces at once.
fn dominated_profile<'a>(
    measures: &[f64],
    others: impl Iterator<Item = &'a [f64]>,
    family: &[SubspaceMask],
    directions: &[Direction],
    n_measures: usize,
    comparisons: &mut u64,
) -> Vec<bool> {
    let mut dominated = vec![false; 1usize << n_measures];
    for other in others {
        *comparisons += 1;
        let (better, worse) = partition_measures(measures, other, directions);
        if worse.is_empty() {
            // The other tuple is nowhere strictly better: it cannot dominate
            // this one in any subspace.
            continue;
        }
        for &s in family {
            if !dominated[s.0 as usize] && crate::common::dominated_in(better, worse, s) {
                dominated[s.0 as usize] = true;
            }
        }
    }
    dominated
}

/// The minimal elements (by set inclusion) of the non-dominated family
/// subspaces.
fn minimal_skyline_subspaces(dominated: &[bool], family: &[SubspaceMask]) -> Vec<SubspaceMask> {
    let mut in_set = vec![false; dominated.len()];
    for &s in family {
        if !dominated[s.0 as usize] {
            in_set[s.0 as usize] = true;
        }
    }
    family
        .iter()
        .copied()
        .filter(|&s| in_set[s.0 as usize])
        .filter(|&s| {
            s.subsets()
                .into_iter()
                .filter(|&sub| sub != s)
                .all(|sub| !in_set.get(sub.0 as usize).copied().unwrap_or(false))
        })
        .collect()
}

/// `C-CSC`: one Compressed Skycube per observed context.
#[derive(Debug)]
pub struct CCsc {
    params: AlgoParams,
    contexts: FxHashMap<Constraint, ContextCsc>,
    stats: WorkStats,
}

impl CCsc {
    /// Creates the algorithm for a schema and discovery configuration.
    pub fn new(schema: &Schema, config: DiscoveryConfig) -> Self {
        CCsc {
            params: AlgoParams::new(schema, config),
            contexts: FxHashMap::default(),
            stats: WorkStats::default(),
        }
    }

    /// Number of contexts for which a CSC is maintained.
    pub fn context_count(&self) -> usize {
        self.contexts.len()
    }
}

impl Discovery for CCsc {
    fn name(&self) -> &'static str {
        "C-CSC"
    }

    fn discover_at(&mut self, table: &Table, t: &Tuple, t_id: TupleId) -> Vec<SkylinePair> {
        let _ = table; // state is entirely in the per-context CSCs
        let cache = ConstraintCache::new(t, self.params.n_dims);
        let directions = self.params.directions.clone();
        let family = self.params.subspaces.clone();
        let n_measures = self.params.n_measures;
        let mut out = Vec::new();

        for mask in self.params.lattice.enumerate_top_down() {
            self.stats.traversed_constraints += 1;
            let constraint = cache.get(mask);
            let csc = self.contexts.entry(constraint.clone()).or_default();
            self.stats.store_reads += 1;

            // 1. Dominance profile of the new tuple against the whole CSC of
            //    this context (every stored tuple is a context member, and any
            //    context member able to dominate in some subspace is stored).
            let dominated = dominated_profile(
                t.measures(),
                csc.all_entries().map(|(_, e)| &*e.measures),
                &family,
                &directions,
                n_measures,
                &mut self.stats.comparisons,
            );

            // 2. Report the subspaces in which t enters the contextual skyline.
            for &s in &family {
                if !dominated[s.0 as usize] {
                    out.push(SkylinePair::new(constraint.clone(), s));
                }
            }

            // 3. Demote stored tuples that t dominates in a subspace they are
            //    stored under: their minimal skyline subspaces must be
            //    recomputed against the context including t.
            let mut demoted: Vec<StoredEntry> = Vec::new();
            // Snapshot of every distinct stored tuple *before* demotion —
            // demoted tuples are still context members and must keep acting
            // as potential dominators when each other's subspaces are
            // recomputed.
            let mut candidates: Vec<StoredEntry> = Vec::new();
            for (sub, entry) in csc.all_entries() {
                if !candidates.iter().any(|c| c.id == entry.id) {
                    candidates.push(entry.clone());
                }
                let (better, worse) =
                    partition_measures(t.measures(), &entry.measures, &directions);
                self.stats.comparisons += 1;
                let t_dominates_here =
                    !sub.intersect(better).is_empty() && sub.intersect(worse).is_empty();
                if t_dominates_here && !demoted.iter().any(|d| d.id == entry.id) {
                    demoted.push(entry.clone());
                }
            }
            for entry in &demoted {
                csc.remove_everywhere(entry.id);
                self.stats.store_writes += 1;
            }
            for entry in &demoted {
                // Recompute the demoted tuple's skyline profile against every
                // other context candidate (stored or just demoted) plus the
                // new tuple.
                let others: Vec<&[f64]> = candidates
                    .iter()
                    .filter(|e| e.id != entry.id)
                    .map(|e| &*e.measures)
                    .chain(std::iter::once(t.measures()))
                    .collect();
                let profile = dominated_profile(
                    &entry.measures,
                    others.into_iter(),
                    &family,
                    &directions,
                    n_measures,
                    &mut self.stats.comparisons,
                );
                for s in minimal_skyline_subspaces(&profile, &family) {
                    csc.insert(s, entry.clone());
                    self.stats.store_writes += 1;
                }
            }

            // 4. Store the new tuple at its minimal skyline subspaces.
            for s in minimal_skyline_subspaces(&dominated, &family) {
                csc.insert(s, StoredEntry::new(t_id, t.measures()));
                self.stats.store_writes += 1;
            }
        }
        out
    }

    fn work_stats(&self) -> WorkStats {
        self.stats
    }

    fn store_stats(&self) -> StoreStats {
        let mut stored_entries = 0u64;
        let mut non_empty_cells = 0u64;
        let mut bytes = 0u64;
        for (constraint, csc) in &self.contexts {
            let entries = csc.entry_count();
            stored_entries += entries;
            non_empty_cells += csc.stored.len() as u64;
            bytes += (constraint.num_dims() * 4 + 48) as u64;
            bytes += entries * (8 + 16 + self.params.n_measures as u64 * 8);
        }
        StoreStats {
            stored_entries,
            non_empty_cells,
            approx_bytes: bytes,
            file_reads: 0,
            file_writes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::BruteForce;
    use sitfact_core::dominance;
    use sitfact_core::pair::canonical_sort;
    use sitfact_core::{Direction, SchemaBuilder};

    fn schema(m: usize) -> Schema {
        let mut b = SchemaBuilder::new("s")
            .dimension("d1")
            .dimension("d2")
            .dimension("d3");
        for i in 0..m {
            let dir = if i == 1 {
                Direction::LowerIsBetter
            } else {
                Direction::HigherIsBetter
            };
            b = b.measure(format!("m{i}"), dir);
        }
        b.build().unwrap()
    }

    #[test]
    fn minimal_subspace_helper() {
        // Family over 2 measures; suppose the tuple is dominated only in {m0}.
        let family = SubspaceMask::enumerate(2, 2);
        let mut dominated = vec![false; 4];
        dominated[0b01] = true;
        let minimal = minimal_skyline_subspaces(&dominated, &family);
        // Non-dominated: {m1}, {m0,m1}; minimal: {m1} only.
        assert_eq!(minimal, vec![SubspaceMask(0b10)]);
        // Nothing dominated -> the two singletons are the minimal subspaces.
        let minimal = minimal_skyline_subspaces(&[false; 4], &family);
        assert_eq!(minimal, vec![SubspaceMask(0b01), SubspaceMask(0b10)]);
        // Everything dominated -> stored nowhere.
        let minimal = minimal_skyline_subspaces(&[true; 4], &family);
        assert!(minimal.is_empty());
    }

    fn random_stream_check(m: usize, config: DiscoveryConfig, steps: usize, seed: u64) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = schema(m);
        let mut table = Table::new(schema.clone());
        let mut subject = CCsc::new(&schema, config);
        let mut reference = BruteForce::new(&schema, config);
        for _ in 0..steps {
            let dims = vec![
                rng.gen_range(0..3u32),
                rng.gen_range(0..2u32),
                rng.gen_range(0..3u32),
            ];
            let measures = (0..m).map(|_| rng.gen_range(0..5) as f64).collect();
            let t = Tuple::new(dims, measures);
            let mut expected = reference.discover(&table, &t);
            let mut actual = subject.discover(&table, &t);
            canonical_sort(&mut expected);
            canonical_sort(&mut actual);
            assert_eq!(expected, actual, "diverged at tuple {}", table.len());
            table.append(t).unwrap();
        }
    }

    #[test]
    fn agrees_with_brute_force_two_measures() {
        random_stream_check(2, DiscoveryConfig::unrestricted(), 60, 307);
    }

    #[test]
    fn agrees_with_brute_force_three_measures() {
        random_stream_check(3, DiscoveryConfig::unrestricted(), 45, 311);
    }

    #[test]
    fn agrees_with_brute_force_with_caps() {
        random_stream_check(3, DiscoveryConfig::capped(2, 2), 45, 313);
    }

    /// The compressed-storage property: every stored (subspace, tuple) pair is
    /// a *minimal* skyline subspace of that tuple within its context.
    #[test]
    fn stores_only_minimal_skyline_subspaces() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(317);
        let schema = schema(2);
        let mut table = Table::new(schema.clone());
        let mut algo = CCsc::new(&schema, DiscoveryConfig::unrestricted());
        for _ in 0..60 {
            let dims = vec![
                rng.gen_range(0..2u32),
                rng.gen_range(0..2u32),
                rng.gen_range(0..2u32),
            ];
            let measures = vec![rng.gen_range(0..4) as f64, rng.gen_range(0..4) as f64];
            let t = Tuple::new(dims, measures);
            let _ = algo.discover(&table, &t);
            table.append(t).unwrap();
        }
        let directions = table.schema().directions().to_vec();
        let family = SubspaceMask::enumerate(2, 2);
        for (constraint, csc) in &algo.contexts {
            for (subspace, entry) in csc.all_entries() {
                // The tuple must be in the skyline of this subspace …
                let sky = dominance::skyline_of(table.context(constraint), subspace, &directions);
                assert!(
                    sky.iter().any(|(id, _)| *id == entry.id),
                    "tuple {} stored at non-skyline subspace {subspace:?} of {constraint:?}",
                    entry.id
                );
                // … and in no proper subspace of it.
                for sub in family.iter().filter(|s| s.is_proper_subset_of(subspace)) {
                    let sky = dominance::skyline_of(table.context(constraint), *sub, &directions);
                    assert!(
                        !sky.iter().any(|(id, _)| *id == entry.id),
                        "subspace {subspace:?} is not minimal for tuple {}",
                        entry.id
                    );
                }
            }
        }
    }

    #[test]
    fn stats_and_context_count_grow() {
        let schema = schema(2);
        let mut table = Table::new(schema.clone());
        let mut algo = CCsc::new(&schema, DiscoveryConfig::unrestricted());
        for i in 0..10u32 {
            let t = Tuple::new(vec![i % 2, i % 3, 0], vec![i as f64, (10 - i) as f64]);
            let _ = algo.discover(&table, &t);
            table.append(t).unwrap();
        }
        assert!(algo.context_count() > 1);
        assert!(algo.store_stats().stored_entries > 0);
        assert!(algo.work_stats().comparisons > 0);
        assert_eq!(algo.name(), "C-CSC");
    }
}
