//! `SBottomUp` — `BottomUp` with computation shared across measure subspaces
//! (Section V-C of the paper).

use crate::bottom_up::BottomUp;
use crate::common::{
    dominates_measures, partition_measures, AlgoParams, ConstraintCache, TraversalScratch,
};
use crate::traits::Discovery;
use sitfact_core::{
    BoundMask, Constraint, DiscoveryConfig, Schema, SkylinePair, SubspaceMask, Tuple, TupleId,
};
use sitfact_storage::{
    MemorySkylineStore, SkylineStore, StoreStats, StoredEntry, Table, WorkStats,
};

/// `SBottomUp` first traverses the lattice in the **full** measure space.
/// Every comparison made there yields, through the three-way partition of
/// Proposition 4, the set of subspaces in which the encountered tuple
/// dominates the new one; the corresponding constraints (`C^{t,t'}`) are
/// pre-pruned for those subspaces. The per-subspace bottom-up passes then
/// start from a smaller frontier: traversal stops as soon as it reaches a
/// pre-pruned constraint.
///
/// The pre-pruning is *sound but not complete* (the full-space pass stops
/// early at dominated constraints), so — unlike
/// [`STopDown`](crate::STopDown) — the per-subspace passes still perform their
/// own dominance checks; the shared information only saves comparisons.
/// Invariant 1 (every cell stores the complete contextual skyline) is
/// maintained exactly as in `BottomUp`.
#[derive(Debug)]
pub struct SBottomUp<S: SkylineStore = MemorySkylineStore> {
    params: AlgoParams,
    store: S,
    stats: WorkStats,
    /// `pruned_matrix[subspace][mask]`: pre-pruned constraints per subspace,
    /// reused across tuples to avoid reallocation.
    pruned_matrix: Vec<Vec<bool>>,
    /// Full-space-pass traversal buffers, kept warm across a batch.
    scratch: TraversalScratch,
    /// Inside a `begin_batch`/`end_batch` window: per-arrival store flushes
    /// are deferred to `end_batch` (reads go through the store's write-back
    /// buffer either way, so results are unchanged — only the file-backed
    /// store's write-back cadence differs).
    in_batch: bool,
}

impl SBottomUp<MemorySkylineStore> {
    /// Creates the algorithm with the default in-memory skyline store.
    pub fn new(schema: &Schema, config: DiscoveryConfig) -> Self {
        Self::with_store(schema, config, MemorySkylineStore::new())
    }
}

impl<S: SkylineStore> SBottomUp<S> {
    /// Creates the algorithm over a caller-provided skyline store backend.
    pub fn with_store(schema: &Schema, config: DiscoveryConfig, store: S) -> Self {
        let params = AlgoParams::new(schema, config);
        let subspace_slots = 1usize << params.n_measures;
        let flag_len = params.lattice.flag_len();
        SBottomUp {
            params,
            store,
            stats: WorkStats::default(),
            pruned_matrix: vec![vec![false; flag_len]; subspace_slots],
            scratch: TraversalScratch::default(),
            in_batch: false,
        }
    }

    /// Read access to the underlying store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The derived algorithm parameters.
    pub fn params(&self) -> &AlgoParams {
        &self.params
    }

    fn reset_matrix(&mut self) {
        for row in &mut self.pruned_matrix {
            row.iter_mut().for_each(|p| *p = false);
        }
    }

    /// The full-space pass: standard `BottomUp` over `𝕄`, except that every
    /// comparison additionally pre-prunes constraints in the proper subspaces
    /// where the stored tuple dominates the new one.
    fn root_pass(
        &mut self,
        table: &Table,
        cache: &ConstraintCache,
        t: &Tuple,
        t_id: TupleId,
        scratch: &mut TraversalScratch,
        out: &mut Vec<SkylinePair>,
    ) {
        let directions = self.params.directions.clone();
        let full = self.params.full_space;
        let report_full = self.params.reports_full_space();
        scratch.reset(self.params.lattice.flag_len());
        let TraversalScratch {
            pruned,
            enqueued,
            queue,
            ..
        } = scratch;
        for bottom in self.params.lattice.bottoms() {
            enqueued[bottom.0 as usize] = true;
            queue.push_back(bottom);
        }
        while let Some(mask) = queue.pop_front() {
            if pruned[mask.0 as usize] {
                continue;
            }
            self.stats.traversed_constraints += 1;
            let constraint = cache.get(mask);
            let entries = self.store.read(constraint, full);
            self.stats.store_reads += 1;
            let mut dominated = false;
            for entry in entries.iter() {
                self.stats.comparisons += 1;
                let (better, worse) =
                    partition_measures(t.measures(), &entry.measures, &directions);
                // Share the comparison across every proper subspace where the
                // stored tuple dominates the new one (Proposition 4).
                let other = table.tuple(entry.id);
                let agreement = BoundMask::agreement(t, other);
                for &subspace in &self.params.proper_subspaces {
                    if crate::common::dominated_in(better, worse, subspace) {
                        let row = &mut self.pruned_matrix[subspace.0 as usize];
                        if !row[agreement.0 as usize] {
                            for sub in agreement.submasks() {
                                row[sub.0 as usize] = true;
                            }
                        }
                    }
                }
                if !dominated && crate::common::dominated_in(better, worse, full) {
                    dominated = true;
                    for ancestor in mask.ancestors() {
                        pruned[ancestor.0 as usize] = true;
                    }
                    // Keep scanning the cell: the remaining entries still
                    // contribute subspace pre-pruning information.
                } else if !dominated
                    && dominates_measures(t.measures(), &entry.measures, full, &directions)
                {
                    self.store.remove(constraint, full, entry.id);
                    self.stats.store_writes += 1;
                }
            }
            if !dominated {
                if report_full {
                    out.push(SkylinePair::new(constraint.clone(), full));
                }
                self.store
                    .insert(constraint, full, StoredEntry::new(t_id, t.measures()));
                self.stats.store_writes += 1;
                for parent in mask.parents() {
                    let idx = parent.0 as usize;
                    if !enqueued[idx] && !pruned[idx] {
                        enqueued[idx] = true;
                        queue.push_back(parent);
                    }
                }
            }
        }
    }
}

impl<S: SkylineStore> Discovery for SBottomUp<S> {
    fn name(&self) -> &'static str {
        "SBottomUp"
    }

    fn discover_at(&mut self, table: &Table, t: &Tuple, t_id: TupleId) -> Vec<SkylinePair> {
        let cache = ConstraintCache::new(t, self.params.n_dims);
        let mut out = Vec::new();
        self.reset_matrix();
        let mut scratch = std::mem::take(&mut self.scratch);
        self.root_pass(table, &cache, t, t_id, &mut scratch, &mut out);
        self.scratch = scratch;
        let proper = self.params.proper_subspaces.clone();
        for subspace in proper {
            // Move the row out to satisfy the borrow checker, then put it back.
            let mut pruned = std::mem::take(&mut self.pruned_matrix[subspace.0 as usize]);
            BottomUp::<S>::traverse_subspace(
                &self.params,
                &mut self.store,
                &mut self.stats,
                &cache,
                t,
                t_id,
                subspace,
                &mut pruned,
                &mut out,
            );
            self.pruned_matrix[subspace.0 as usize] = pruned;
        }
        if !self.in_batch {
            self.store.flush();
        }
        out
    }

    fn begin_batch(&mut self, expected_arrivals: usize) {
        let _ = expected_arrivals;
        // The traversal buffers stay allocated between passes (each pass
        // re-clears them); `end_batch` releases them again.
        self.in_batch = true;
    }

    fn end_batch(&mut self) {
        self.in_batch = false;
        self.store.flush();
        self.scratch.release();
    }

    fn work_stats(&self) -> WorkStats {
        self.stats
    }

    fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    fn skyline_cardinality_at(
        &mut self,
        table: &Table,
        constraint: &Constraint,
        subspace: SubspaceMask,
        limit: TupleId,
    ) -> usize {
        let within_family = constraint.bound_count() <= self.params.lattice.max_bound()
            && !subspace.is_empty()
            && (subspace == self.params.full_space || self.params.subspaces.contains(&subspace));
        if within_family {
            // Invariant 1: the cell is the skyline. The store covers exactly
            // the processed arrivals; `limit` only constrains the
            // out-of-family recompute below.
            self.store.read(constraint, subspace).len()
        } else {
            crate::common::skyline_cardinality_recompute(table, constraint, subspace, limit)
        }
    }

    fn retract(&mut self, table: &Table, t_id: TupleId) -> sitfact_core::Result<()> {
        // Invariant-1 repair. Only cells of the expired tuple's own
        // constraint family `C^t` can reference it, and within those only the
        // cells whose skyline it actually joined need work: removing a
        // non-skyline tuple leaves a complete skyline complete. When the
        // expired tuple does leave a skyline, the region it dominated is
        // re-promoted by recomputing the cell from its *live* context (the
        // table's iterators already skip tombstoned rows), which also drops
        // the cell entirely when its context emptied — exactly the store an
        // algorithm fed only the surviving suffix would hold.
        let expired = table.tuple(t_id);
        let directions = self.params.directions.clone();
        let mut maintained = self.params.proper_subspaces.clone();
        maintained.push(self.params.full_space);
        for mask in self.params.lattice.enumerate_top_down() {
            let constraint = Constraint::from_tuple_mask(expired, mask);
            for &subspace in &maintained {
                self.stats.store_reads += 1;
                if !self.store.remove(&constraint, subspace, t_id) {
                    continue;
                }
                self.stats.store_writes += 1;
                let skyline = sitfact_core::dominance::skyline_of(
                    table.context(&constraint),
                    subspace,
                    &directions,
                );
                for (id, survivor) in skyline {
                    self.stats.comparisons += 1;
                    if !self.store.contains(&constraint, subspace, id) {
                        self.store.insert(
                            &constraint,
                            subspace,
                            StoredEntry::new(id, survivor.measures()),
                        );
                        self.stats.store_writes += 1;
                    }
                }
            }
        }
        if !self.in_batch {
            self.store.flush();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::BruteForce;
    use sitfact_core::dominance;
    use sitfact_core::pair::canonical_sort;
    use sitfact_core::{Direction, SchemaBuilder};
    use sitfact_storage::StoreCell;

    fn schema(m: usize) -> Schema {
        let mut b = SchemaBuilder::new("s")
            .dimension("d1")
            .dimension("d2")
            .dimension("d3");
        for i in 0..m {
            let dir = if i % 3 == 2 {
                Direction::LowerIsBetter
            } else {
                Direction::HigherIsBetter
            };
            b = b.measure(format!("m{i}"), dir);
        }
        b.build().unwrap()
    }

    fn random_stream_check(m: usize, config: DiscoveryConfig, steps: usize, seed: u64) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = schema(m);
        let mut table = Table::new(schema.clone());
        let mut subject = SBottomUp::new(&schema, config);
        let mut reference = BruteForce::new(&schema, config);
        for _ in 0..steps {
            let dims = vec![
                rng.gen_range(0..3u32),
                rng.gen_range(0..2u32),
                rng.gen_range(0..3u32),
            ];
            let measures = (0..m).map(|_| rng.gen_range(0..5) as f64).collect();
            let t = Tuple::new(dims, measures);
            let mut expected = reference.discover(&table, &t);
            let mut actual = subject.discover(&table, &t);
            canonical_sort(&mut expected);
            canonical_sort(&mut actual);
            assert_eq!(expected, actual, "diverged at tuple {}", table.len());
            table.append(t).unwrap();
        }
    }

    #[test]
    fn agrees_with_brute_force_two_measures() {
        random_stream_check(2, DiscoveryConfig::unrestricted(), 70, 101);
    }

    #[test]
    fn agrees_with_brute_force_three_measures() {
        random_stream_check(3, DiscoveryConfig::unrestricted(), 50, 103);
    }

    #[test]
    fn agrees_with_brute_force_with_caps() {
        // m̂ < m exercises the "full space maintained but not reported" path.
        random_stream_check(3, DiscoveryConfig::capped(2, 2), 50, 107);
    }

    #[test]
    fn shares_comparisons_relative_to_bottom_up() {
        use crate::bottom_up::BottomUp;
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(109);
        let schema = schema(4);
        let config = DiscoveryConfig::unrestricted();
        let mut table = Table::new(schema.clone());
        let mut shared = SBottomUp::new(&schema, config);
        let mut plain = BottomUp::new(&schema, config);
        for _ in 0..150 {
            let dims = vec![
                rng.gen_range(0..4u32),
                rng.gen_range(0..4u32),
                rng.gen_range(0..3u32),
            ];
            let measures = (0..4).map(|_| rng.gen_range(0..10) as f64).collect();
            let t = Tuple::new(dims, measures);
            let _ = shared.discover(&table, &t);
            let _ = plain.discover(&table, &t);
            table.append(t).unwrap();
        }
        // Sharing never does more dominance comparisons than the plain
        // variant, and the stores hold identical contents (Invariant 1).
        assert!(shared.work_stats().comparisons <= plain.work_stats().comparisons);
        assert_eq!(
            shared.store_stats().stored_entries,
            plain.store_stats().stored_entries
        );
    }

    #[test]
    fn skyline_cardinality_matches_ground_truth() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(113);
        let schema = schema(2);
        let mut table = Table::new(schema.clone());
        let mut algo = SBottomUp::new(&schema, DiscoveryConfig::unrestricted());
        for _ in 0..60 {
            let dims = vec![
                rng.gen_range(0..2u32),
                rng.gen_range(0..2u32),
                rng.gen_range(0..2u32),
            ];
            let measures = vec![rng.gen_range(0..4) as f64, rng.gen_range(0..4) as f64];
            let t = Tuple::new(dims, measures);
            let _ = algo.discover(&table, &t);
            table.append(t).unwrap();
        }
        let directions = table.schema().directions().to_vec();
        let sample = table.tuple(30);
        for mask in sitfact_core::ConstraintLattice::unrestricted(3).enumerate_top_down() {
            let c = Constraint::from_tuple_mask(sample, mask);
            for m in SubspaceMask::enumerate(2, 2) {
                let expected = dominance::skyline_of(table.context(&c), m, &directions).len();
                assert_eq!(algo.skyline_cardinality(&table, &c, m), expected);
            }
        }
    }

    #[test]
    fn name_and_stats() {
        let schema = schema(2);
        let algo = SBottomUp::new(&schema, DiscoveryConfig::unrestricted());
        assert_eq!(algo.name(), "SBottomUp");
        assert_eq!(algo.store_stats(), StoreStats::default());
    }

    /// Invariant-1 repair: after expiring a prefix, the store (and all
    /// subsequent discoveries) must be indistinguishable from an algorithm
    /// that only ever processed the surviving suffix under the same ids.
    #[test]
    fn retraction_matches_rebuild_from_suffix() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(331);
        let schema = schema(2);
        let config = DiscoveryConfig::unrestricted();
        let random_tuple = |rng: &mut StdRng| {
            let dims = vec![
                rng.gen_range(0..3u32),
                rng.gen_range(0..2u32),
                rng.gen_range(0..3u32),
            ];
            let measures = (0..2).map(|_| rng.gen_range(0..5) as f64).collect();
            Tuple::new(dims, measures)
        };
        let mut table = Table::new(schema.clone());
        let mut algo = SBottomUp::new(&schema, config);
        let mut tuples = Vec::new();
        for _ in 0..60 {
            let t = random_tuple(&mut rng);
            let _ = algo.discover(&table, &t);
            table.append(t.clone()).unwrap();
            tuples.push(t);
        }
        // Expire the first 25 arrivals: tombstone, repair, compact.
        assert_eq!(table.retract_prefix(25), 25);
        for id in 0..25u32 {
            algo.retract(&table, id).unwrap();
        }
        table.compact_retracted();
        table.audit().unwrap();

        // Rebuild from scratch over the surviving suffix, same ids.
        let mut fresh_table = Table::with_base(schema.clone(), 25);
        let mut fresh = SBottomUp::new(&schema, config);
        for t in &tuples[25..] {
            let _ = fresh.discover(&fresh_table, t);
            fresh_table.append(t.clone()).unwrap();
        }
        let sort_cells = |mut cells: Vec<StoreCell>| {
            for cell in &mut cells {
                cell.entries.sort_by_key(|(id, _)| *id);
            }
            cells.sort_by(|a, b| (&a.constraint, a.subspace).cmp(&(&b.constraint, b.subspace)));
            cells
        };
        assert_eq!(
            sort_cells(algo.store().dump_cells().unwrap()),
            sort_cells(fresh.store().dump_cells().unwrap()),
        );
        // New arrivals keep discovering identical facts.
        for _ in 0..10 {
            let t = random_tuple(&mut rng);
            let mut a = algo.discover(&table, &t);
            let mut b = fresh.discover(&fresh_table, &t);
            canonical_sort(&mut a);
            canonical_sort(&mut b);
            assert_eq!(a, b);
            table.append(t.clone()).unwrap();
            fresh_table.append(t).unwrap();
        }
    }
}
