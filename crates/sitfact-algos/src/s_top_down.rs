//! Algorithm 6 of the paper: `STopDown` — `TopDown` with computation shared
//! across measure subspaces.

use crate::common::{
    dominates_measures, partition_measures, AlgoParams, ConstraintCache, TraversalScratch,
};
use crate::top_down::{demote_stored_tuple, skyline_cardinality_from_maximal};
use crate::traits::Discovery;
use sitfact_core::{
    BoundMask, Constraint, DiscoveryConfig, Schema, SkylinePair, SubspaceMask, Tuple, TupleId,
};
use sitfact_storage::{
    MemorySkylineStore, SkylineStore, StoreCell, StoreStats, StoredEntry, Table, WorkStats,
};

/// `STopDown` runs the `TopDown` traversal once in the **full** measure space
/// (`STopDownRoot`). Because that traversal visits *every* constraint of
/// `C^t` and compares the new tuple with every stored skyline tuple it meets,
/// the per-subspace dominance information derived from those comparisons
/// (Proposition 4) is **complete**: for each proper subspace, the constraints
/// left unpruned are exactly the skyline constraints of the new tuple. The
/// per-subspace passes (`STopDownNode`) therefore skip all dominance checks
/// against the new tuple — they only store it at its maximal skyline
/// constraints and demote any tuples it dominates.
#[derive(Debug)]
pub struct STopDown<S: SkylineStore = MemorySkylineStore> {
    params: AlgoParams,
    store: S,
    stats: WorkStats,
    /// `pruned_matrix[subspace][mask]`, reused across tuples.
    pruned_matrix: Vec<Vec<bool>>,
    /// Per-pass traversal buffers, kept warm across a batch.
    scratch: TraversalScratch,
    /// Inside a `begin_batch`/`end_batch` window: per-arrival store flushes
    /// are deferred to `end_batch` (reads go through the store's write-back
    /// buffer either way, so results are unchanged — only the file-backed
    /// store's write-back cadence differs).
    in_batch: bool,
}

impl STopDown<MemorySkylineStore> {
    /// Creates the algorithm with the default in-memory skyline store.
    pub fn new(schema: &Schema, config: DiscoveryConfig) -> Self {
        Self::with_store(schema, config, MemorySkylineStore::new())
    }
}

impl<S: SkylineStore> STopDown<S> {
    /// Creates the algorithm over a caller-provided skyline store backend.
    pub fn with_store(schema: &Schema, config: DiscoveryConfig, store: S) -> Self {
        let params = AlgoParams::new(schema, config);
        let subspace_slots = 1usize << params.n_measures;
        let flag_len = params.lattice.flag_len();
        STopDown {
            params,
            store,
            stats: WorkStats::default(),
            pruned_matrix: vec![vec![false; flag_len]; subspace_slots],
            scratch: TraversalScratch::default(),
            in_batch: false,
        }
    }

    /// Read access to the underlying store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The derived algorithm parameters.
    pub fn params(&self) -> &AlgoParams {
        &self.params
    }

    fn reset_matrix(&mut self) {
        for row in &mut self.pruned_matrix {
            row.iter_mut().for_each(|p| *p = false);
        }
    }

    /// `STopDownRoot`: the `TopDown` pass over the full measure space, with
    /// per-subspace pruning recorded for every comparison.
    fn root_pass(
        &mut self,
        table: &Table,
        cache: &ConstraintCache,
        t: &Tuple,
        t_id: TupleId,
        scratch: &mut TraversalScratch,
        out: &mut Vec<SkylinePair>,
    ) {
        let directions = self.params.directions.clone();
        let full = self.params.full_space;
        let report_full = self.params.reports_full_space();
        scratch.reset(self.params.lattice.flag_len());
        let TraversalScratch {
            pruned,
            in_ances,
            enqueued,
            queue,
        } = scratch;
        queue.push_back(BoundMask::TOP);
        enqueued[0] = true;
        while let Some(mask) = queue.pop_front() {
            self.stats.traversed_constraints += 1;
            let constraint = cache.get(mask);
            let entries = self.store.read(constraint, full);
            self.stats.store_reads += 1;
            for entry in entries.iter() {
                self.stats.comparisons += 1;
                let (better, worse) =
                    partition_measures(t.measures(), &entry.measures, &directions);
                let other = table.tuple(entry.id);
                let agreement = BoundMask::agreement(t, other);
                // Record, for every proper subspace where this stored tuple
                // dominates the new one, the pruned constraint set C^{t,t'}.
                for &subspace in &self.params.proper_subspaces {
                    if crate::common::dominated_in(better, worse, subspace) {
                        let row = &mut self.pruned_matrix[subspace.0 as usize];
                        if !row[agreement.0 as usize] {
                            for sub in agreement.submasks() {
                                row[sub.0 as usize] = true;
                            }
                        }
                    }
                }
                if crate::common::dominated_in(better, worse, full) {
                    // `Dominated` in the full space.
                    for sub in agreement.submasks() {
                        pruned[sub.0 as usize] = true;
                    }
                    pruned[mask.0 as usize] = true;
                } else if dominates_measures(t.measures(), &entry.measures, full, &directions) {
                    demote_stored_tuple(
                        &self.params,
                        &mut self.store,
                        &mut self.stats,
                        table,
                        t,
                        mask,
                        constraint,
                        full,
                        entry,
                    );
                }
            }
            if !pruned[mask.0 as usize] {
                if report_full {
                    out.push(SkylinePair::new(constraint.clone(), full));
                }
                if !in_ances[mask.0 as usize] {
                    self.store
                        .insert(constraint, full, StoredEntry::new(t_id, t.measures()));
                    self.stats.store_writes += 1;
                }
            }
            for child in self.params.lattice.children(mask) {
                let idx = child.0 as usize;
                if !pruned[mask.0 as usize] {
                    in_ances[idx] = true;
                }
                if !enqueued[idx] {
                    enqueued[idx] = true;
                    queue.push_back(child);
                }
            }
        }
    }

    /// `STopDownNode(M)`: visits the (already known) skyline constraints of
    /// the new tuple in subspace `M`, storing the tuple at the maximal ones
    /// and demoting stored tuples it dominates. No dominance check against
    /// the new tuple is needed — the pruned matrix is complete.
    // One parameter per piece of traversal state; bundling them into a struct
    // would just move the argument list one level down.
    #[allow(clippy::too_many_arguments)]
    fn node_pass(
        &mut self,
        table: &Table,
        cache: &ConstraintCache,
        t: &Tuple,
        t_id: TupleId,
        subspace: SubspaceMask,
        scratch: &mut TraversalScratch,
        out: &mut Vec<SkylinePair>,
    ) {
        let directions = self.params.directions.clone();
        scratch.reset(self.params.lattice.flag_len());
        let TraversalScratch {
            in_ances,
            enqueued,
            queue,
            ..
        } = scratch;
        queue.push_back(BoundMask::TOP);
        enqueued[0] = true;
        while let Some(mask) = queue.pop_front() {
            self.stats.traversed_constraints += 1;
            let is_pruned = self.pruned_matrix[subspace.0 as usize][mask.0 as usize];
            if !is_pruned {
                let constraint = cache.get(mask);
                out.push(SkylinePair::new(constraint.clone(), subspace));
                let entries = self.store.read(constraint, subspace);
                self.stats.store_reads += 1;
                for entry in entries.iter() {
                    self.stats.comparisons += 1;
                    if dominates_measures(t.measures(), &entry.measures, subspace, &directions) {
                        demote_stored_tuple(
                            &self.params,
                            &mut self.store,
                            &mut self.stats,
                            table,
                            t,
                            mask,
                            constraint,
                            subspace,
                            entry,
                        );
                    }
                }
                if !in_ances[mask.0 as usize] {
                    self.store
                        .insert(constraint, subspace, StoredEntry::new(t_id, t.measures()));
                    self.stats.store_writes += 1;
                }
            }
            for child in self.params.lattice.children(mask) {
                let idx = child.0 as usize;
                if !is_pruned {
                    in_ances[idx] = true;
                }
                if !enqueued[idx] {
                    enqueued[idx] = true;
                    queue.push_back(child);
                }
            }
        }
    }
}

impl<S: SkylineStore> Discovery for STopDown<S> {
    fn name(&self) -> &'static str {
        "STopDown"
    }

    fn discover_at(&mut self, table: &Table, t: &Tuple, t_id: TupleId) -> Vec<SkylinePair> {
        let cache = ConstraintCache::new(t, self.params.n_dims);
        let mut out = Vec::new();
        self.reset_matrix();
        let mut scratch = std::mem::take(&mut self.scratch);
        self.root_pass(table, &cache, t, t_id, &mut scratch, &mut out);
        let proper = self.params.proper_subspaces.clone();
        for subspace in proper {
            self.node_pass(table, &cache, t, t_id, subspace, &mut scratch, &mut out);
        }
        self.scratch = scratch;
        if !self.in_batch {
            self.store.flush();
        }
        out
    }

    fn begin_batch(&mut self, expected_arrivals: usize) {
        let _ = expected_arrivals;
        // The traversal buffers stay allocated between passes (each pass
        // re-clears them); `end_batch` releases them again.
        self.in_batch = true;
    }

    fn end_batch(&mut self) {
        self.in_batch = false;
        self.store.flush();
        self.scratch.release();
    }

    fn work_stats(&self) -> WorkStats {
        self.stats
    }

    fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    fn skyline_cardinality_at(
        &mut self,
        table: &Table,
        constraint: &Constraint,
        subspace: SubspaceMask,
        limit: TupleId,
    ) -> usize {
        let within_family = constraint.bound_count() <= self.params.lattice.max_bound()
            && !subspace.is_empty()
            && (subspace == self.params.full_space || self.params.subspaces.contains(&subspace));
        if within_family {
            // The store covers exactly the processed arrivals; `limit` only
            // constrains the out-of-family recompute below.
            skyline_cardinality_from_maximal(&mut self.store, table, constraint, subspace)
        } else {
            crate::common::skyline_cardinality_recompute(table, constraint, subspace, limit)
        }
    }

    /// `STopDown`'s durable state is exactly its skyline store: the pruning
    /// matrix is reset per arrival, the traversal scratch is scratch, and the
    /// work counters are not observable through the monitor's query surface.
    fn export_store_cells(&self) -> Option<Vec<StoreCell>> {
        self.store.dump_cells()
    }

    fn import_store_cells(&mut self, cells: Vec<StoreCell>) -> sitfact_core::Result<()> {
        self.store.load_cells(cells)
    }

    fn retract(&mut self, table: &Table, t_id: TupleId) -> sitfact_core::Result<()> {
        // Invariant-2 repair. Only contexts containing the expired tuple can
        // change, and those are exactly the constraints of its own family
        // `C^x` — which is closed under ancestors, and for any survivor `s`
        // matching one of them, the ancestors in `s`'s own lattice coincide
        // with the ancestors in `C^x`. Maximality is therefore decidable
        // inside the family: recompute the live skyline of every `C^x` cell,
        // keep each survivor only where no ancestor skyline also holds it,
        // and reconcile the stored entries against that. This both evicts the
        // expired tuple and runs the promotion cascade (a survivor that was
        // dominated only by the expired tuple moves *up* to its new maximal
        // constraint, leaving its old, now non-maximal, cells).
        let expired = table.tuple(t_id);
        let directions = self.params.directions.clone();
        let mut maintained = self.params.proper_subspaces.clone();
        maintained.push(self.params.full_space);
        let masks = self.params.lattice.enumerate_top_down();
        let constraints: Vec<Constraint> = masks
            .iter()
            .map(|&mask| Constraint::from_tuple_mask(expired, mask))
            .collect();
        let flag_len = self.params.lattice.flag_len();
        for &subspace in &maintained {
            // Live skyline of every affected context, keyed by bound mask.
            // The table's iterators already skip tombstoned rows, so this is
            // the skyline an algorithm fed only the surviving suffix would
            // see.
            let mut sky: Vec<Vec<TupleId>> = vec![Vec::new(); flag_len];
            let mut in_sky: Vec<sitfact_core::FxHashSet<TupleId>> =
                vec![sitfact_core::FxHashSet::default(); flag_len];
            for (i, &mask) in masks.iter().enumerate() {
                let s = sitfact_core::dominance::skyline_of(
                    table.context(&constraints[i]),
                    subspace,
                    &directions,
                );
                let ids: Vec<TupleId> = s.into_iter().map(|(id, _)| id).collect();
                in_sky[mask.0 as usize] = ids.iter().copied().collect();
                sky[mask.0 as usize] = ids;
            }
            for (i, &mask) in masks.iter().enumerate() {
                let constraint = &constraints[i];
                let desired: Vec<TupleId> = sky[mask.0 as usize]
                    .iter()
                    .copied()
                    .filter(|id| {
                        !mask
                            .ancestors()
                            .iter()
                            .any(|a| in_sky[a.0 as usize].contains(id))
                    })
                    .collect();
                let current = self.store.read(constraint, subspace);
                self.stats.store_reads += 1;
                for entry in current.iter() {
                    if !desired.contains(&entry.id) {
                        self.store.remove(constraint, subspace, entry.id);
                        self.stats.store_writes += 1;
                    }
                }
                for id in desired {
                    if !current.iter().any(|e| e.id == id) {
                        self.store.insert(
                            constraint,
                            subspace,
                            StoredEntry::new(id, table.tuple(id).measures()),
                        );
                        self.stats.store_writes += 1;
                        // A newly-inserted survivor was, before the expiry,
                        // not in this skyline at all — it was stored further
                        // down, at cells of *its own* family that are now
                        // dominated by this placement. Those cells need not
                        // lie in `C^x` (the survivor may disagree with the
                        // expired tuple on the extra bound attributes), so
                        // evict it from every strict descendant explicitly.
                        let survivor = table.tuple(id);
                        for &descendant in &masks {
                            if descendant != mask && descendant.0 & mask.0 == mask.0 {
                                let cell = Constraint::from_tuple_mask(survivor, descendant);
                                if self.store.remove(&cell, subspace, id) {
                                    self.stats.store_writes += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        if !self.in_batch {
            self.store.flush();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::BruteForce;
    use crate::top_down::TopDown;
    use sitfact_core::dominance;
    use sitfact_core::pair::canonical_sort;
    use sitfact_core::{Direction, SchemaBuilder};

    fn schema(m: usize) -> Schema {
        let mut b = SchemaBuilder::new("s")
            .dimension("d1")
            .dimension("d2")
            .dimension("d3");
        for i in 0..m {
            let dir = if i % 3 == 1 {
                Direction::LowerIsBetter
            } else {
                Direction::HigherIsBetter
            };
            b = b.measure(format!("m{i}"), dir);
        }
        b.build().unwrap()
    }

    fn random_stream_check(m: usize, config: DiscoveryConfig, steps: usize, seed: u64) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = schema(m);
        let mut table = Table::new(schema.clone());
        let mut subject = STopDown::new(&schema, config);
        let mut reference = BruteForce::new(&schema, config);
        for _ in 0..steps {
            let dims = vec![
                rng.gen_range(0..3u32),
                rng.gen_range(0..2u32),
                rng.gen_range(0..3u32),
            ];
            let measures = (0..m).map(|_| rng.gen_range(0..5) as f64).collect();
            let t = Tuple::new(dims, measures);
            let mut expected = reference.discover(&table, &t);
            let mut actual = subject.discover(&table, &t);
            canonical_sort(&mut expected);
            canonical_sort(&mut actual);
            assert_eq!(expected, actual, "diverged at tuple {}", table.len());
            table.append(t).unwrap();
        }
    }

    #[test]
    fn agrees_with_brute_force_two_measures() {
        random_stream_check(2, DiscoveryConfig::unrestricted(), 70, 211);
    }

    #[test]
    fn agrees_with_brute_force_three_measures() {
        random_stream_check(3, DiscoveryConfig::unrestricted(), 50, 223);
    }

    #[test]
    fn agrees_with_brute_force_with_caps() {
        random_stream_check(3, DiscoveryConfig::capped(2, 2), 50, 227);
    }

    /// Example 10 of the paper: after processing Table IV, STopDown stores t5
    /// alongside t1 at ⟨a1,*,*⟩ in subspace {m2} and makes no change in {m1}.
    #[test]
    fn reproduces_example_10() {
        let schema = SchemaBuilder::new("running")
            .dimension("d1")
            .dimension("d2")
            .dimension("d3")
            .measure("m1", Direction::HigherIsBetter)
            .measure("m2", Direction::HigherIsBetter)
            .build()
            .unwrap();
        let mut table = Table::new(schema.clone());
        let mut algo = STopDown::new(&schema, DiscoveryConfig::unrestricted());
        let rows: [([&str; 3], [f64; 2]); 5] = [
            (["a1", "b2", "c2"], [10.0, 15.0]),
            (["a1", "b1", "c1"], [15.0, 10.0]),
            (["a2", "b1", "c2"], [17.0, 17.0]),
            (["a2", "b1", "c1"], [20.0, 20.0]),
            (["a1", "b1", "c1"], [11.0, 15.0]),
        ];
        for (dims, measures) in rows {
            let ids = table.schema_mut().intern_dims(&dims).unwrap();
            let t = Tuple::new(ids, measures.to_vec());
            let _ = algo.discover(&table, &t);
            table.append(t).unwrap();
        }
        let schema = table.schema();
        let a1 = Constraint::parse(schema, &[("d1", "a1")]).unwrap();
        let m1 = SubspaceMask::singleton(0);
        let m2 = SubspaceMask::singleton(1);
        let mut ids_in = |c: &Constraint, m: SubspaceMask| {
            let mut ids: Vec<TupleId> = algo.store.read(c, m).iter().map(|e| e.id).collect();
            ids.sort_unstable();
            ids
        };
        // Fig. 6b: µ_{⟨a1⟩, {m2}} = {t1, t5}.
        assert_eq!(ids_in(&a1, m2), vec![0, 4]);
        // Fig. 5b: in {m1} the cell for ⟨a1⟩ still holds only t2.
        assert_eq!(ids_in(&a1, m1), vec![1]);
        // ⊤ holds t4 in both single-measure subspaces.
        assert_eq!(ids_in(&Constraint::top(3), m1), vec![3]);
        assert_eq!(ids_in(&Constraint::top(3), m2), vec![3]);
    }

    /// The stores of STopDown and TopDown must stay identical — they implement
    /// the same Invariant 2 — while STopDown performs fewer comparisons.
    #[test]
    fn matches_top_down_storage_with_fewer_comparisons() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(229);
        let schema = schema(3);
        let config = DiscoveryConfig::unrestricted();
        let mut table = Table::new(schema.clone());
        let mut shared = STopDown::new(&schema, config);
        let mut plain = TopDown::new(&schema, config);
        for _ in 0..120 {
            let dims = vec![
                rng.gen_range(0..4u32),
                rng.gen_range(0..4u32),
                rng.gen_range(0..3u32),
            ];
            let measures = (0..3).map(|_| rng.gen_range(0..8) as f64).collect();
            let t = Tuple::new(dims, measures);
            let mut a = shared.discover(&table, &t);
            let mut b = plain.discover(&table, &t);
            canonical_sort(&mut a);
            canonical_sort(&mut b);
            assert_eq!(a, b);
            table.append(t).unwrap();
        }
        assert_eq!(
            shared.store_stats().stored_entries,
            plain.store_stats().stored_entries
        );
        assert!(
            shared.work_stats().comparisons < plain.work_stats().comparisons,
            "sharing should reduce comparisons: {} vs {}",
            shared.work_stats().comparisons,
            plain.work_stats().comparisons
        );
    }

    #[test]
    fn skyline_cardinality_matches_ground_truth() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(233);
        let schema = schema(2);
        let mut table = Table::new(schema.clone());
        let mut algo = STopDown::new(&schema, DiscoveryConfig::unrestricted());
        for _ in 0..60 {
            let dims = vec![
                rng.gen_range(0..2u32),
                rng.gen_range(0..2u32),
                rng.gen_range(0..2u32),
            ];
            let measures = vec![rng.gen_range(0..4) as f64, rng.gen_range(0..4) as f64];
            let t = Tuple::new(dims, measures);
            let _ = algo.discover(&table, &t);
            table.append(t).unwrap();
        }
        let directions = table.schema().directions().to_vec();
        let sample = table.tuple(15);
        for mask in sitfact_core::ConstraintLattice::unrestricted(3).enumerate_top_down() {
            let c = Constraint::from_tuple_mask(sample, mask);
            for m in SubspaceMask::enumerate(2, 2) {
                let expected = dominance::skyline_of(table.context(&c), m, &directions).len();
                assert_eq!(algo.skyline_cardinality(&table, &c, m), expected);
            }
        }
    }

    /// The batched driving protocol — window appended to the table up front,
    /// then `discover_at` with explicit ids between `begin_batch`/`end_batch`
    /// — must produce exactly the per-arrival results of the sequential
    /// protocol, for the shared variant and for a scanning baseline (whose
    /// table scans must self-limit to ids before the arrival).
    #[test]
    fn batched_protocol_matches_sequential() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(241);
        let schema = schema(2);
        let config = DiscoveryConfig::unrestricted();
        let window: Vec<Tuple> = (0..50)
            .map(|_| {
                let dims = vec![
                    rng.gen_range(0..3u32),
                    rng.gen_range(0..2u32),
                    rng.gen_range(0..3u32),
                ];
                let measures = (0..2).map(|_| rng.gen_range(0..5) as f64).collect();
                Tuple::new(dims, measures)
            })
            .collect();

        // Sequential protocol: discover against history, then append.
        let mut seq_table = Table::new(schema.clone());
        let mut seq_std = STopDown::new(&schema, config);
        let mut seq_bf = crate::brute_force::BruteForce::new(&schema, config);
        let mut seq_results = Vec::new();
        for t in &window {
            let mut a = seq_std.discover(&seq_table, t);
            let mut b = seq_bf.discover(&seq_table, t);
            canonical_sort(&mut a);
            canonical_sort(&mut b);
            assert_eq!(a, b);
            seq_results.push(a);
            seq_table.append(t.clone()).unwrap();
        }

        // Batched protocol: the whole window lands in the table first.
        let mut batch_table = Table::new(schema.clone());
        let first = batch_table.next_id();
        batch_table.append_batch_slice(&window).unwrap();
        let mut batch_std = STopDown::new(&schema, config);
        let mut batch_bf = crate::brute_force::BruteForce::new(&schema, config);
        batch_std.begin_batch(window.len());
        batch_bf.begin_batch(window.len());
        for (i, t) in window.iter().enumerate() {
            let t_id = first + i as TupleId;
            let mut a = batch_std.discover_at(&batch_table, t, t_id);
            let mut b = batch_bf.discover_at(&batch_table, t, t_id);
            canonical_sort(&mut a);
            canonical_sort(&mut b);
            assert_eq!(a, seq_results[i], "arrival {i} diverged (STopDown)");
            assert_eq!(b, seq_results[i], "arrival {i} diverged (BruteForce)");
        }
        batch_std.end_batch();
        batch_bf.end_batch();
        assert_eq!(
            batch_std.store_stats().stored_entries,
            seq_std.store_stats().stored_entries
        );
    }

    /// Invariant-2 repair: expiring a prefix must leave the maximal-constraint
    /// store identical to one rebuilt from only the surviving suffix — the
    /// promotion cascade moves survivors up to their new maximal constraints.
    #[test]
    fn retraction_matches_rebuild_from_suffix() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(251);
        let schema = schema(2);
        let config = DiscoveryConfig::unrestricted();
        let random_tuple = |rng: &mut StdRng| {
            let dims = vec![
                rng.gen_range(0..3u32),
                rng.gen_range(0..2u32),
                rng.gen_range(0..3u32),
            ];
            let measures = (0..2).map(|_| rng.gen_range(0..5) as f64).collect();
            Tuple::new(dims, measures)
        };
        let mut table = Table::new(schema.clone());
        let mut algo = STopDown::new(&schema, config);
        let mut tuples = Vec::new();
        for _ in 0..60 {
            let t = random_tuple(&mut rng);
            let _ = algo.discover(&table, &t);
            table.append(t.clone()).unwrap();
            tuples.push(t);
        }
        assert_eq!(table.retract_prefix(25), 25);
        for id in 0..25u32 {
            algo.retract(&table, id).unwrap();
        }
        table.compact_retracted();
        table.audit().unwrap();

        let mut fresh_table = Table::with_base(schema.clone(), 25);
        let mut fresh = STopDown::new(&schema, config);
        for t in &tuples[25..] {
            let _ = fresh.discover(&fresh_table, t);
            fresh_table.append(t.clone()).unwrap();
        }
        let sort_cells = |mut cells: Vec<StoreCell>| {
            for cell in &mut cells {
                cell.entries.sort_by_key(|(id, _)| *id);
            }
            cells.sort_by(|a, b| (&a.constraint, a.subspace).cmp(&(&b.constraint, b.subspace)));
            cells
        };
        assert_eq!(
            sort_cells(algo.store().dump_cells().unwrap()),
            sort_cells(fresh.store().dump_cells().unwrap()),
        );
        for _ in 0..10 {
            let t = random_tuple(&mut rng);
            let mut a = algo.discover(&table, &t);
            let mut b = fresh.discover(&fresh_table, &t);
            canonical_sort(&mut a);
            canonical_sort(&mut b);
            assert_eq!(a, b);
            table.append(t.clone()).unwrap();
            fresh_table.append(t).unwrap();
        }
    }

    /// The file-backed instantiation (`FSTopDown`) produces identical results.
    #[test]
    fn file_backed_variant_agrees() {
        use rand::prelude::*;
        use sitfact_storage::FileSkylineStore;
        let dir = std::env::temp_dir().join(format!("sitfact-fstd-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut rng = StdRng::seed_from_u64(239);
        let schema = schema(2);
        let config = DiscoveryConfig::unrestricted();
        let mut table = Table::new(schema.clone());
        let store = FileSkylineStore::new(&dir).unwrap();
        let mut subject = STopDown::with_store(&schema, config, store);
        let mut reference = BruteForce::new(&schema, config);
        for _ in 0..40 {
            let dims = vec![
                rng.gen_range(0..3u32),
                rng.gen_range(0..2u32),
                rng.gen_range(0..2u32),
            ];
            let measures = vec![rng.gen_range(0..5) as f64, rng.gen_range(0..5) as f64];
            let t = Tuple::new(dims, measures);
            let mut expected = reference.discover(&table, &t);
            let mut actual = subject.discover(&table, &t);
            canonical_sort(&mut expected);
            canonical_sort(&mut actual);
            assert_eq!(expected, actual);
            table.append(t).unwrap();
        }
        assert!(subject.store_stats().file_writes > 0);
        drop(subject);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
