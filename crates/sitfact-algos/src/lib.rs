//! # sitfact-algos
//!
//! The discovery algorithms of *Incremental Discovery of Prominent
//! Situational Facts* (Sultana et al., ICDE 2014): given an append-only table
//! and a newly arrived tuple `t`, find every constraint–measure pair `(C, M)`
//! that qualifies `t` as a contextual skyline tuple.
//!
//! | Algorithm | Paper | Idea |
//! |-----------|-------|------|
//! | [`BruteForce`] | Alg. 2 | compare with every tuple, for every constraint, in every subspace |
//! | [`BaselineSeq`] | Alg. 3 | one scan of `R` per subspace, pruning `C^{t,t'}` per dominator |
//! | [`BaselineIdx`] | Sec. IV | like `BaselineSeq` but dominators come from a k-d tree range query |
//! | [`CCsc`] | Sec. II/VI | a Compressed Skycube maintained per context (the adapted competitor) |
//! | [`BottomUp`] | Alg. 4 | store skyline tuples at every skyline constraint; traverse `C^t` bottom-up |
//! | [`TopDown`] | Alg. 5 | store tuples only at maximal skyline constraints; traverse top-down |
//! | [`SBottomUp`] | Sec. V-C | `BottomUp` + sharing of comparisons across measure subspaces |
//! | [`STopDown`] | Sec. V-C | `TopDown` + sharing of comparisons across measure subspaces |
//! | [`FsBottomUp`] / [`FsTopDown`] | Sec. VI-C | the shared variants over the file-backed store |
//!
//! All algorithms implement the [`Discovery`] trait and are exercised by a
//! common equivalence test-suite that checks their output against
//! [`BruteForce`] on randomized workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline_idx;
pub mod baseline_seq;
pub mod bottom_up;
pub mod brute_force;
pub mod common;
pub mod csc;
pub mod s_bottom_up;
pub mod s_top_down;
pub mod top_down;
pub mod traits;

pub use baseline_idx::BaselineIdx;
pub use baseline_seq::BaselineSeq;
pub use bottom_up::BottomUp;
pub use brute_force::BruteForce;
pub use csc::CCsc;
pub use s_bottom_up::SBottomUp;
pub use s_top_down::STopDown;
pub use top_down::TopDown;
pub use traits::{AlgorithmKind, Discovery};

use sitfact_storage::FileSkylineStore;

/// `SBottomUp` running over the file-backed skyline store (the paper's
/// `FSBottomUp`, Section VI-C).
pub type FsBottomUp = SBottomUp<FileSkylineStore>;

/// `STopDown` running over the file-backed skyline store (the paper's
/// `FSTopDown`, Section VI-C).
pub type FsTopDown = STopDown<FileSkylineStore>;
