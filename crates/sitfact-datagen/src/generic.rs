//! Generic skyline workloads: correlated, independent and anti-correlated
//! measures with configurable dimension cardinalities.
//!
//! These are the standard synthetic workload families of the skyline
//! literature (Börzsönyi et al., ICDE 2001); they are used by the ablation
//! benches and by tests that need workloads with a controllable number of
//! skyline tuples.

use crate::rand_util::normal;
use crate::{DataGenerator, Row};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sitfact_core::{Direction, Schema, SchemaBuilder};

/// Correlation structure of the generated measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Correlation {
    /// Measures rise and fall together (few skyline tuples).
    Correlated,
    /// Measures are independent.
    Independent,
    /// Good values on one measure imply bad values on the others (many
    /// skyline tuples — the hardest case for skyline maintenance).
    AntiCorrelated,
}

/// Configuration of a [`GenericGenerator`].
#[derive(Debug, Clone, PartialEq)]
pub struct GenericConfig {
    /// Cardinality of each dimension attribute (its active domain size).
    pub dim_cardinalities: Vec<usize>,
    /// Number of measure attributes.
    pub measures: usize,
    /// Correlation family of the measures.
    pub correlation: Correlation,
    /// RNG seed (generation is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for GenericConfig {
    fn default() -> Self {
        GenericConfig {
            dim_cardinalities: vec![10, 10, 10],
            measures: 3,
            correlation: Correlation::Independent,
            seed: 42,
        }
    }
}

/// Generator of generic skyline workloads.
#[derive(Debug)]
pub struct GenericGenerator {
    schema: Schema,
    config: GenericConfig,
    rng: StdRng,
}

impl GenericGenerator {
    /// Creates the generator; the schema's dimensions are named `d0, d1, …`
    /// and its measures `m0, m1, …` (all higher-is-better).
    pub fn new(config: GenericConfig) -> Self {
        let mut builder = SchemaBuilder::new("generic");
        for i in 0..config.dim_cardinalities.len() {
            builder = builder.dimension(format!("d{i}"));
        }
        for i in 0..config.measures {
            builder = builder.measure(format!("m{i}"), Direction::HigherIsBetter);
        }
        // audit: allow(no-panic): schema built from loop-generated unique names, cannot collide
        let schema = builder.build().expect("generic schema is valid");
        let rng = StdRng::seed_from_u64(config.seed);
        GenericGenerator {
            schema,
            config,
            rng,
        }
    }

    fn measures(&mut self) -> Vec<f64> {
        let m = self.config.measures;
        match self.config.correlation {
            Correlation::Independent => (0..m)
                .map(|_| (self.rng.gen_range(0.0..1000.0f64)).round())
                .collect(),
            Correlation::Correlated => {
                let base: f64 = self.rng.gen_range(0.0..1000.0);
                (0..m)
                    .map(|_| {
                        (base + normal(&mut self.rng, 0.0, 50.0))
                            .clamp(0.0, 1000.0)
                            .round()
                    })
                    .collect()
            }
            Correlation::AntiCorrelated => {
                // Points near a hyperplane x0 + x1 + … = constant: being good
                // somewhere forces being bad elsewhere.
                let mut values: Vec<f64> = (0..m).map(|_| self.rng.gen_range(0.0..1.0)).collect();
                let sum: f64 = values.iter().sum();
                let scale = if sum > 0.0 { 1000.0 / sum } else { 0.0 };
                for v in &mut values {
                    *v = (*v * scale * (m as f64) / 2.0 + normal(&mut self.rng, 0.0, 20.0))
                        .clamp(0.0, 2000.0)
                        .round();
                }
                values
            }
        }
    }
}

impl DataGenerator for GenericGenerator {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_row(&mut self) -> Row {
        let dims = self
            .config
            .dim_cardinalities
            .iter()
            .enumerate()
            .map(|(i, &card)| format!("d{i}_v{}", self.rng.gen_range(0..card.max(1))))
            .collect();
        Row {
            dims,
            measures: self.measures(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitfact_core::{dominance, SubspaceMask};

    fn skyline_size(correlation: Correlation) -> usize {
        let mut gen = GenericGenerator::new(GenericConfig {
            dim_cardinalities: vec![2],
            measures: 3,
            correlation,
            seed: 7,
        });
        let table = gen.table_of(600).unwrap();
        let dirs = table.schema().directions().to_vec();
        dominance::skyline_of(table.iter(), SubspaceMask::full(3), &dirs).len()
    }

    #[test]
    fn correlation_controls_skyline_size() {
        let correlated = skyline_size(Correlation::Correlated);
        let independent = skyline_size(Correlation::Independent);
        let anti = skyline_size(Correlation::AntiCorrelated);
        assert!(
            correlated < independent && independent < anti,
            "expected correlated ({correlated}) < independent ({independent}) < anti ({anti})"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GenericConfig::default();
        let mut a = GenericGenerator::new(cfg.clone());
        let mut b = GenericGenerator::new(cfg);
        assert_eq!(a.take_rows(20), b.take_rows(20));
    }

    #[test]
    fn dims_respect_cardinality() {
        let mut gen = GenericGenerator::new(GenericConfig {
            dim_cardinalities: vec![2, 3],
            measures: 1,
            correlation: Correlation::Independent,
            seed: 9,
        });
        let table = gen.table_of(200).unwrap();
        assert!(table.schema().dictionary(0).len() <= 2);
        assert!(table.schema().dictionary(1).len() <= 3);
        assert_eq!(table.schema().num_measures(), 1);
    }
}
