//! Zipf-skewed high-cardinality workload (the ROADMAP's "adversarial
//! workload diversity" item).
//!
//! Every dimension draws its value from an independent Zipf distribution over
//! a configurable domain: a handful of head values dominate the stream while
//! a long tail of values appears once or twice. That is the adversarial shape
//! for the context index — posting lists range from table-sized (head values,
//! highly compressible small gaps) to singletons (tail values, pure per-entry
//! overhead) — and for discovery, because high-cardinality columns spawn many
//! one-off contexts. The `fig_postings` benchmark uses this generator as its
//! second workload next to the NBA shape.

use crate::rand_util::ZipfSampler;
use crate::{DataGenerator, Row};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sitfact_core::{Direction, Schema, SchemaBuilder};

/// Configuration of a [`ZipfGenerator`].
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfConfig {
    /// Domain size of each dimension attribute. High cardinalities (thousands
    /// of values) make the workload adversarial: most values map to tiny
    /// posting lists.
    pub dim_cardinalities: Vec<usize>,
    /// Zipf exponent shared by all dimensions; larger is more skewed. The
    /// default 1.2 concentrates roughly half the draws on the top ~1% of a
    /// 5000-value domain.
    pub exponent: f64,
    /// Number of measure attributes (independent uniform integers, all
    /// higher-is-better).
    pub measures: usize,
    /// RNG seed (generation is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for ZipfConfig {
    fn default() -> Self {
        ZipfConfig {
            dim_cardinalities: vec![5000, 500, 32, 8],
            exponent: 1.2,
            measures: 3,
            seed: 42,
        }
    }
}

/// Generator of Zipf-skewed rows; see the [module docs](self).
#[derive(Debug)]
pub struct ZipfGenerator {
    schema: Schema,
    samplers: Vec<ZipfSampler>,
    measures: usize,
    rng: StdRng,
}

impl ZipfGenerator {
    /// Creates the generator; the schema's dimensions are named `d0, d1, …`
    /// and its measures `m0, m1, …`. Dimension value `i` of attribute `a` is
    /// rendered as `d{a}_v{i}`, so value popularity ranks are stable across
    /// runs and seeds.
    pub fn new(config: ZipfConfig) -> Self {
        let mut builder = SchemaBuilder::new("zipf");
        for i in 0..config.dim_cardinalities.len() {
            builder = builder.dimension(format!("d{i}"));
        }
        for i in 0..config.measures {
            builder = builder.measure(format!("m{i}"), Direction::HigherIsBetter);
        }
        // audit: allow(no-panic): schema built from loop-generated unique names, cannot collide
        let schema = builder.build().expect("zipf schema is valid");
        let samplers = config
            .dim_cardinalities
            .iter()
            .map(|&card| ZipfSampler::new(card.max(1), config.exponent))
            .collect();
        ZipfGenerator {
            schema,
            samplers,
            measures: config.measures,
            rng: StdRng::seed_from_u64(config.seed),
        }
    }
}

impl DataGenerator for ZipfGenerator {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_row(&mut self) -> Row {
        let dims = self
            .samplers
            .iter()
            .enumerate()
            .map(|(a, sampler)| format!("d{a}_v{}", sampler.sample(&mut self.rng)))
            .collect();
        let measures = (0..self.measures)
            .map(|_| self.rng.gen_range(0.0..1000.0f64).round())
            .collect();
        Row { dims, measures }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = ZipfConfig::default();
        let mut a = ZipfGenerator::new(cfg.clone());
        let mut b = ZipfGenerator::new(cfg);
        assert_eq!(a.take_rows(50), b.take_rows(50));
    }

    #[test]
    fn dims_respect_cardinality_and_schema_shape() {
        let mut gen = ZipfGenerator::new(ZipfConfig {
            dim_cardinalities: vec![10, 3],
            exponent: 1.0,
            measures: 2,
            seed: 5,
        });
        let table = gen.table_of(300).unwrap();
        assert_eq!(table.schema().num_dimensions(), 2);
        assert_eq!(table.schema().num_measures(), 2);
        assert!(table.schema().dictionary(0).len() <= 10);
        assert!(table.schema().dictionary(1).len() <= 3);
    }

    #[test]
    fn head_values_dominate_the_stream() {
        let mut gen = ZipfGenerator::new(ZipfConfig {
            dim_cardinalities: vec![1000],
            exponent: 1.2,
            measures: 1,
            seed: 11,
        });
        let rows = gen.take_rows(2000);
        let head = rows.iter().filter(|r| r.dims[0] == "d0_v0").count();
        let mid = rows.iter().filter(|r| r.dims[0] == "d0_v100").count();
        // The rank-0 value must be drawn far more often than a mid-rank one.
        assert!(
            head > 100 && head > 10 * mid.max(1),
            "head {head}, mid {mid}"
        );
    }
}
