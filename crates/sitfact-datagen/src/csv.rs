//! Minimal CSV import/export so the library can be run over user-provided
//! datasets (e.g. real box scores) without further dependencies.
//!
//! Format: a header row with the attribute names, then one row per tuple.
//! Dimension columns are arbitrary strings (commas are not supported inside
//! values); measure columns must parse as floating-point numbers. Column
//! order must match the schema (dimensions first, then measures).

use crate::Row;
use sitfact_core::{Result, Schema, SitFactError};
use sitfact_storage::Table;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Writes a table to a CSV file (header + one line per tuple, dimension
/// values resolved through the dictionaries).
pub fn write_csv(table: &Table, path: impl AsRef<Path>) -> Result<()> {
    let schema = table.schema();
    let file = File::create(path)?;
    let mut out = BufWriter::new(file);
    let mut header: Vec<String> = schema.dimension_names().to_vec();
    header.extend(schema.measures().iter().map(|m| m.name.clone()));
    writeln!(out, "{}", header.join(","))?;
    for (_, tuple) in table.iter() {
        let mut fields: Vec<String> = Vec::with_capacity(header.len());
        for (i, &id) in tuple.dims().iter().enumerate() {
            fields.push(schema.resolve_dim(i, id).unwrap_or("?").to_string());
        }
        for &m in tuple.measures() {
            fields.push(format_measure(m));
        }
        writeln!(out, "{}", fields.join(","))?;
    }
    out.flush()?;
    Ok(())
}

fn format_measure(m: f64) -> String {
    if m.fract().abs() < 1e-9 {
        format!("{}", m as i64)
    } else {
        format!("{m}")
    }
}

/// Parses a CSV file into [`Row`]s under the given schema. The header must
/// contain exactly the schema's attribute names in order.
pub fn read_csv_rows(schema: &Schema, path: impl AsRef<Path>) -> Result<Vec<Row>> {
    let file = File::open(&path)?;
    let reader = BufReader::new(file);
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| SitFactError::Parse("empty CSV file".into()))??;
    let mut expected: Vec<String> = schema.dimension_names().to_vec();
    expected.extend(schema.measures().iter().map(|m| m.name.clone()));
    let found: Vec<&str> = header.trim().split(',').collect();
    if found != expected.iter().map(String::as_str).collect::<Vec<_>>() {
        return Err(SitFactError::Parse(format!(
            "CSV header {found:?} does not match schema attributes {expected:?}"
        )));
    }
    let n_dims = schema.num_dimensions();
    let n_measures = schema.num_measures();
    let mut rows = Vec::new();
    for (line_no, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != n_dims + n_measures {
            return Err(SitFactError::Parse(format!(
                "line {}: expected {} fields, found {}",
                line_no + 2,
                n_dims + n_measures,
                fields.len()
            )));
        }
        let dims = fields[..n_dims]
            .iter()
            .map(|s| s.trim().to_string())
            .collect();
        let measures = fields[n_dims..]
            .iter()
            .map(|s| {
                s.trim().parse::<f64>().map_err(|_| {
                    SitFactError::Parse(format!(
                        "line {}: `{}` is not a number",
                        line_no + 2,
                        s.trim()
                    ))
                })
            })
            .collect::<Result<Vec<f64>>>()?;
        rows.push(Row { dims, measures });
    }
    Ok(rows)
}

/// Loads a CSV file directly into a fresh [`Table`] under `schema`.
pub fn read_csv(schema: &Schema, path: impl AsRef<Path>) -> Result<Table> {
    let rows = read_csv_rows(schema, path)?;
    let mut table = Table::with_capacity(schema.clone(), rows.len());
    for row in rows {
        let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
        table.append_raw(&dims, row.measures)?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitfact_core::{Direction, SchemaBuilder};
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sitfact-csv-{tag}-{}.csv", std::process::id()))
    }

    fn schema() -> Schema {
        SchemaBuilder::new("gamelog")
            .dimension("player")
            .dimension("team")
            .measure("points", Direction::HigherIsBetter)
            .measure("assists", Direction::HigherIsBetter)
            .build()
            .unwrap()
    }

    #[test]
    fn round_trip() {
        let path = temp_path("roundtrip");
        let mut table = Table::new(schema());
        table
            .append_raw(&["Wesley", "Celtics"], vec![12.0, 13.5])
            .unwrap();
        table
            .append_raw(&["Bogues", "Hornets"], vec![4.0, 12.0])
            .unwrap();
        write_csv(&table, &path).unwrap();

        let loaded = read_csv(&schema(), &path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.tuple(0).measures(), &[12.0, 13.5]);
        assert_eq!(
            loaded.schema().resolve_dim(0, loaded.tuple(1).dim(0)),
            Some("Bogues")
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_wrong_header_and_bad_numbers() {
        let path = temp_path("badheader");
        std::fs::write(&path, "a,b,c,d\nx,y,1,2\n").unwrap();
        assert!(read_csv(&schema(), &path).is_err());

        std::fs::write(&path, "player,team,points,assists\nx,y,notanumber,2\n").unwrap();
        let err = read_csv(&schema(), &path).unwrap_err();
        assert!(matches!(err, SitFactError::Parse(_)));

        std::fs::write(&path, "player,team,points,assists\nx,y,1\n").unwrap();
        assert!(read_csv(&schema(), &path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn skips_blank_lines_and_handles_empty_file() {
        let path = temp_path("blank");
        std::fs::write(&path, "player,team,points,assists\n\nx,y,1,2\n\n").unwrap();
        let rows = read_csv_rows(&schema(), &path).unwrap();
        assert_eq!(rows.len(), 1);

        std::fs::write(&path, "").unwrap();
        assert!(read_csv_rows(&schema(), &path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
