//! Small sampling helpers built on `rand`'s uniform primitives (the workspace
//! deliberately avoids a separate distributions crate).

use rand::Rng;

/// Samples a standard-normal variate via the Box–Muller transform.
pub fn normal<R: Rng>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std_dev * z
}

/// Samples a Poisson variate with rate `lambda` (Knuth's method; adequate for
/// the small rates used by the generators).
pub fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0f64);
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // Safety valve for absurd rates.
        }
    }
}

/// A Zipf-like sampler over `0..n`: index `i` is drawn with probability
/// proportional to `1 / (i + 1)^exponent`. Used to skew dimension-value
/// popularity (a few star players appear in many box scores).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` items with the given exponent.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "ZipfSampler requires at least one item");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(exponent);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        ZipfSampler { cumulative }
    }

    /// Draws an index in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self.cumulative.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler has no items (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

/// Clamps and rounds a sampled value into a non-negative integer-valued
/// measure (box-score statistics are small non-negative integers).
pub fn clamp_round(value: f64, max: f64) -> f64 {
    value.max(0.0).min(max).round()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn normal_has_roughly_correct_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn poisson_has_roughly_correct_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<u64> = (0..20_000).map(|_| poisson(&mut rng, 2.5)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((mean - 2.5).abs() < 0.1, "mean {mean}");
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let sampler = ZipfSampler::new(100, 1.0);
        assert_eq!(sampler.len(), 100);
        assert!(!sampler.is_empty());
        let mut counts = vec![0u64; 100];
        for _ in 0..50_000 {
            let i = sampler.sample(&mut rng);
            assert!(i < 100);
            counts[i] += 1;
        }
        // The most popular item must be drawn far more often than the median one.
        assert!(counts[0] > counts[50] * 5);
    }

    #[test]
    fn clamp_round_bounds() {
        assert_eq!(clamp_round(-3.2, 100.0), 0.0);
        assert_eq!(clamp_round(12.6, 100.0), 13.0);
        assert_eq!(clamp_round(400.0, 100.0), 100.0);
    }
}
