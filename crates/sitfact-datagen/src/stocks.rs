//! A small synthetic stock-tick generator, used by the `stock_alerts`
//! example (the paper's introduction motivates situational facts on stock
//! data: "Stock A becomes the first stock in history with price over $300 and
//! market cap over $400 billion").

use crate::rand_util::normal;
use crate::{DataGenerator, Row};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sitfact_core::{Direction, Schema, SchemaBuilder};

/// Configuration of the [`StockGenerator`].
#[derive(Debug, Clone, PartialEq)]
pub struct StockConfig {
    /// Number of distinct tickers.
    pub tickers: usize,
    /// Ticks generated per simulated trading day.
    pub ticks_per_day: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StockConfig {
    fn default() -> Self {
        StockConfig {
            tickers: 120,
            ticks_per_day: 120,
            seed: 2008,
        }
    }
}

const SECTORS: [&str; 8] = [
    "Tech",
    "Finance",
    "Energy",
    "Health",
    "Retail",
    "Industrial",
    "Utilities",
    "Media",
];
const EXCHANGES: [&str; 3] = ["NYSE", "NASDAQ", "LSE"];
const QUARTERS: [&str; 4] = ["Q1", "Q2", "Q3", "Q4"];

#[derive(Debug, Clone)]
struct TickerProfile {
    symbol: String,
    sector: usize,
    exchange: usize,
    price: f64,
    shares_billions: f64,
}

/// Generates a daily close stream: dimensions (ticker, sector, exchange,
/// quarter), measures (price, volume in millions, market cap in billions,
/// daily percent change; drawdown is lower-is-better).
#[derive(Debug)]
pub struct StockGenerator {
    schema: Schema,
    config: StockConfig,
    rng: StdRng,
    tickers: Vec<TickerProfile>,
    generated: usize,
}

impl StockGenerator {
    /// Creates a generator from a configuration.
    pub fn new(config: StockConfig) -> Self {
        let schema = SchemaBuilder::new("stock_ticks")
            .dimension("ticker")
            .dimension("sector")
            .dimension("exchange")
            .dimension("quarter")
            .measure("price", Direction::HigherIsBetter)
            .measure("volume_m", Direction::HigherIsBetter)
            .measure("market_cap_b", Direction::HigherIsBetter)
            .measure("drawdown_pct", Direction::LowerIsBetter)
            .build()
            .expect("stock schema is valid"); // audit: allow(no-panic): fixed name catalog, duplicates impossible
        let mut rng = StdRng::seed_from_u64(config.seed);
        let tickers = (0..config.tickers)
            .map(|i| TickerProfile {
                symbol: format!("TCK{i:03}"),
                sector: rng.gen_range(0..SECTORS.len()),
                exchange: rng.gen_range(0..EXCHANGES.len()),
                price: rng.gen_range(5.0..400.0),
                shares_billions: rng.gen_range(0.05..6.0),
            })
            .collect();
        StockGenerator {
            schema,
            config,
            rng,
            tickers,
            generated: 0,
        }
    }
}

impl DataGenerator for StockGenerator {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_row(&mut self) -> Row {
        let idx = self.rng.gen_range(0..self.tickers.len());
        // Random walk with slight upward drift.
        let drift = normal(&mut self.rng, 0.0005, 0.02);
        let (symbol, sector, exchange, price, cap) = {
            let ticker = &mut self.tickers[idx];
            ticker.price = (ticker.price * (1.0 + drift)).max(0.5);
            (
                ticker.symbol.clone(),
                ticker.sector,
                ticker.exchange,
                ticker.price,
                ticker.price * ticker.shares_billions,
            )
        };
        let day = self.generated / self.config.ticks_per_day.max(1);
        let quarter = QUARTERS[(day / 63) % QUARTERS.len()];
        let volume = normal(&mut self.rng, 30.0, 12.0).max(0.1);
        let drawdown = (-drift.min(0.0)) * 100.0;
        self.generated += 1;
        Row {
            dims: vec![
                symbol,
                SECTORS[sector].to_string(),
                EXCHANGES[exchange].to_string(),
                quarter.to_string(),
            ],
            measures: vec![
                (price * 100.0).round() / 100.0,
                volume.round(),
                (cap * 10.0).round() / 10.0,
                (drawdown * 100.0).round() / 100.0,
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_rows() {
        let mut gen = StockGenerator::new(StockConfig {
            tickers: 20,
            ticks_per_day: 20,
            seed: 1,
        });
        assert_eq!(gen.schema().num_dimensions(), 4);
        assert_eq!(gen.schema().num_measures(), 4);
        let table = gen.table_of(500).unwrap();
        assert_eq!(table.len(), 500);
        assert!(table.schema().dictionary(0).len() <= 20);
        for (_, t) in table.iter() {
            assert!(t.measure(0) > 0.0);
            assert!(t.measure(3) >= 0.0);
        }
    }

    #[test]
    fn prices_follow_a_random_walk_per_ticker() {
        let mut gen = StockGenerator::new(StockConfig {
            tickers: 1,
            ticks_per_day: 1,
            seed: 2,
        });
        let rows = gen.take_rows(100);
        let first = rows[0].measures[0];
        let last = rows[99].measures[0];
        assert_ne!(first, last);
        // Prices never collapse to zero.
        assert!(rows.iter().all(|r| r.measures[0] >= 0.5));
    }

    #[test]
    fn determinism_per_seed() {
        let cfg = StockConfig {
            tickers: 5,
            ticks_per_day: 5,
            seed: 3,
        };
        let mut a = StockGenerator::new(cfg.clone());
        let mut b = StockGenerator::new(cfg);
        assert_eq!(a.take_rows(25), b.take_rows(25));
    }
}
