//! Synthetic NBA box-score generator.
//!
//! Reproduces the shape of the paper's NBA dataset (317,371 box scores,
//! 1991–2004): the same dimension spaces (Table V) and measure spaces
//! (Table VI), realistic attribute cardinalities (~1,500 players, 29 teams,
//! 13 seasons, 8 months of play), star-player skew, and per-player skill
//! levels that correlate the counting stats. Fouls and turnovers are
//! lower-is-better, exercising mixed preference directions.

use crate::rand_util::{clamp_round, normal, poisson, ZipfSampler};
use crate::{DataGenerator, Row};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sitfact_core::{Direction, Schema, SchemaBuilder};

/// The dimension attributes used for each value of `d` in the paper's
/// experiments (Table V), plus the full 8-attribute space.
pub fn nba_dimension_names(d: usize) -> Vec<&'static str> {
    match d {
        4 => vec!["player", "season", "team", "opp_team"],
        5 => vec!["player", "season", "month", "team", "opp_team"],
        6 => vec!["position", "college", "state", "season", "team", "opp_team"],
        7 => vec![
            "position", "college", "state", "season", "month", "team", "opp_team",
        ],
        8 => vec![
            "player", "position", "college", "state", "season", "month", "team", "opp_team",
        ],
        // audit: allow(no-panic): documented precondition of the synthetic dataset catalog
        _ => panic!("the NBA dataset defines dimension spaces for d in 4..=8, got {d}"),
    }
}

/// The measure attributes used for each value of `m` (Table VI): the first
/// `m` of points, rebounds, assists, blocks, steals, fouls, turnovers.
/// Fouls and turnovers are lower-is-better.
pub fn nba_measure_names(m: usize) -> Vec<(&'static str, Direction)> {
    let all = [
        ("points", Direction::HigherIsBetter),
        ("rebounds", Direction::HigherIsBetter),
        ("assists", Direction::HigherIsBetter),
        ("blocks", Direction::HigherIsBetter),
        ("steals", Direction::HigherIsBetter),
        ("fouls", Direction::LowerIsBetter),
        ("turnovers", Direction::LowerIsBetter),
    ];
    assert!((1..=all.len()).contains(&m), "m must be in 1..=7, got {m}");
    all[..m].to_vec()
}

/// Builds the NBA schema for the given dimension / measure space sizes.
pub fn nba_schema(d: usize, m: usize) -> Schema {
    let mut builder = SchemaBuilder::new("nba_gamelog").dimensions(nba_dimension_names(d));
    for (name, dir) in nba_measure_names(m) {
        builder = builder.measure(name, dir);
    }
    builder.build().expect("NBA schema is valid") // audit: allow(no-panic): fixed name catalog, duplicates impossible
}

/// Configuration of the [`NbaGenerator`].
#[derive(Debug, Clone, PartialEq)]
pub struct NbaConfig {
    /// Number of dimension attributes (4–8, see [`nba_dimension_names`]).
    pub dimensions: usize,
    /// Number of measure attributes (1–7, see [`nba_measure_names`]).
    pub measures: usize,
    /// Number of distinct players across the whole stream.
    pub players: usize,
    /// Number of teams.
    pub teams: usize,
    /// Number of seasons the stream spans.
    pub seasons: usize,
    /// Box scores generated per season (controls how fast the `season`
    /// dimension advances and therefore how often new contexts appear).
    pub games_per_season: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NbaConfig {
    fn default() -> Self {
        NbaConfig {
            dimensions: 5,
            measures: 7,
            players: 1_500,
            teams: 29,
            seasons: 13,
            games_per_season: 25_000,
            seed: 1991,
        }
    }
}

#[derive(Debug, Clone)]
struct PlayerProfile {
    name: String,
    position: usize,
    college: usize,
    state: usize,
    team: usize,
    /// Scoring skill in [0.3, 2.5]; multiplies the baseline stat rates.
    skill: f64,
    /// First season in which the player appears (new players join over time,
    /// which is what keeps new contexts forming — Fig. 14's observation).
    debut_season: usize,
}

/// Streaming generator of synthetic box scores.
#[derive(Debug)]
pub struct NbaGenerator {
    schema: Schema,
    config: NbaConfig,
    rng: StdRng,
    players: Vec<PlayerProfile>,
    star_sampler: ZipfSampler,
    generated: usize,
}

const POSITIONS: [&str; 5] = ["PG", "SG", "SF", "PF", "C"];
const MONTHS: [&str; 8] = ["Nov", "Dec", "Jan", "Feb", "Mar", "Apr", "May", "Jun"];
const NUM_COLLEGES: usize = 280;
const NUM_STATES: usize = 50;

impl NbaGenerator {
    /// Creates a generator from a configuration.
    pub fn new(config: NbaConfig) -> Self {
        let schema = nba_schema(config.dimensions, config.measures);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let players = (0..config.players)
            .map(|i| PlayerProfile {
                name: format!("Player{i:04}"),
                position: rng.gen_range(0..POSITIONS.len()),
                college: rng.gen_range(0..NUM_COLLEGES),
                state: rng.gen_range(0..NUM_STATES),
                team: rng.gen_range(0..config.teams),
                skill: (0.3 + rng.gen_range(0.0..1.0f64).powf(2.0) * 2.2),
                debut_season: rng.gen_range(0..config.seasons.max(1)),
            })
            .collect();
        let star_sampler = ZipfSampler::new(config.players, 0.6);
        NbaGenerator {
            schema,
            config,
            rng,
            players,
            star_sampler,
            generated: 0,
        }
    }

    /// Convenience constructor matching the paper's default configuration
    /// (`d = 5`, `m = 7`).
    pub fn with_defaults(seed: u64) -> Self {
        Self::new(NbaConfig {
            seed,
            ..NbaConfig::default()
        })
    }

    fn current_season(&self) -> usize {
        (self.generated / self.config.games_per_season.max(1)).min(self.config.seasons - 1)
    }

    fn season_label(season: usize) -> String {
        let start = 1991 + season;
        format!("{start}-{:02}", (start + 1) % 100)
    }

    fn stat_line(&mut self, skill: f64, position: usize) -> Vec<f64> {
        // Baselines loosely modelled on box-score averages; skill scales the
        // ball-dominant stats, position shifts rebounds/assists/blocks.
        let rng = &mut self.rng;
        let minutes_factor: f64 = rng.gen_range(0.4..1.0);
        let points = clamp_round(normal(rng, 11.0 * skill * minutes_factor, 6.0), 81.0);
        let rebounds = clamp_round(
            normal(
                rng,
                (2.5 + position as f64 * 1.4) * minutes_factor * skill.sqrt(),
                2.5,
            ),
            35.0,
        );
        let assists = clamp_round(
            normal(
                rng,
                (5.5 - position as f64 * 1.0).max(0.8) * minutes_factor * skill.sqrt(),
                2.0,
            ),
            25.0,
        );
        let blocks = poisson(rng, 0.4 + position as f64 * 0.25) as f64;
        let steals = poisson(rng, 1.0 * minutes_factor + 0.2) as f64;
        let fouls = (poisson(rng, 2.2) as f64).min(6.0);
        let turnovers = poisson(rng, 1.2 + skill * 0.6) as f64;
        let all = [points, rebounds, assists, blocks, steals, fouls, turnovers];
        all[..self.config.measures].to_vec()
    }
}

impl DataGenerator for NbaGenerator {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_row(&mut self) -> Row {
        let season = self.current_season();
        // Prefer players who have already debuted; stars appear more often.
        let player_idx = loop {
            let idx = self.star_sampler.sample(&mut self.rng);
            if self.players[idx].debut_season <= season || self.rng.gen_bool(0.02) {
                break idx;
            }
        };
        let player = self.players[player_idx].clone();
        let month = MONTHS[self.rng.gen_range(0..MONTHS.len())];
        let opp_team = {
            let mut opp = self.rng.gen_range(0..self.config.teams);
            if opp == player.team {
                opp = (opp + 1) % self.config.teams;
            }
            opp
        };
        let measures = self.stat_line(player.skill, player.position);
        let season_label = Self::season_label(season);
        let mut dims = Vec::with_capacity(self.config.dimensions);
        for name in nba_dimension_names(self.config.dimensions) {
            let value = match name {
                "player" => player.name.clone(),
                "position" => POSITIONS[player.position].to_string(),
                "college" => format!("College{:03}", player.college),
                "state" => format!("State{:02}", player.state),
                "season" => season_label.clone(),
                "month" => month.to_string(),
                "team" => format!("Team{:02}", player.team),
                "opp_team" => format!("Team{:02}", opp_team),
                other => unreachable!("unknown NBA dimension {other}"),
            };
            dims.push(value);
        }
        self.generated += 1;
        Row { dims, measures }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_table_v_and_vi() {
        for d in 4..=8 {
            for m in 1..=7 {
                let schema = nba_schema(d, m);
                assert_eq!(schema.num_dimensions(), d);
                assert_eq!(schema.num_measures(), m);
            }
        }
        let s = nba_schema(5, 7);
        assert_eq!(
            s.dimension_names(),
            &["player", "season", "month", "team", "opp_team"]
        );
        assert_eq!(s.directions()[5], Direction::LowerIsBetter); // fouls
        assert_eq!(s.directions()[6], Direction::LowerIsBetter); // turnovers
        assert_eq!(s.directions()[0], Direction::HigherIsBetter); // points
    }

    #[test]
    #[should_panic(expected = "dimension spaces")]
    fn invalid_dimension_count_panics() {
        let _ = nba_dimension_names(3);
    }

    #[test]
    fn generates_valid_rows_with_plausible_cardinalities() {
        let mut gen = NbaGenerator::new(NbaConfig {
            players: 200,
            teams: 29,
            seasons: 3,
            games_per_season: 1_000,
            seed: 5,
            ..NbaConfig::default()
        });
        let table = gen.table_of(3_000).unwrap();
        assert_eq!(table.len(), 3_000);
        let schema = table.schema();
        // player, season, month, team, opp_team cardinalities.
        assert!(schema.dictionary(0).len() <= 200);
        assert!(
            schema.dictionary(0).len() > 50,
            "expected many distinct players"
        );
        assert_eq!(schema.dictionary(1).len(), 3); // seasons span the stream
        assert!(schema.dictionary(2).len() <= 8);
        assert!(schema.dictionary(3).len() <= 29);
        // All measures are finite and non-negative; fouls capped at 6.
        for (_, t) in table.iter() {
            for (i, &v) in t.measures().iter().enumerate() {
                assert!(v.is_finite() && v >= 0.0, "measure {i} = {v}");
            }
            assert!(t.measure(5) <= 6.0);
        }
    }

    #[test]
    fn seasons_advance_over_the_stream() {
        let mut gen = NbaGenerator::new(NbaConfig {
            players: 50,
            seasons: 4,
            games_per_season: 100,
            seed: 6,
            ..NbaConfig::default()
        });
        let rows = gen.take_rows(400);
        let first_season = rows[0].dims[1].clone();
        let last_season = rows[399].dims[1].clone();
        assert_ne!(first_season, last_season);
        assert_eq!(first_season, "1991-92");
    }

    #[test]
    fn determinism_per_seed() {
        let cfg = NbaConfig {
            players: 30,
            seed: 77,
            ..NbaConfig::default()
        };
        let mut a = NbaGenerator::new(cfg.clone());
        let mut b = NbaGenerator::new(cfg);
        assert_eq!(a.take_rows(50), b.take_rows(50));
        let mut c = NbaGenerator::with_defaults(78);
        let mut d = NbaGenerator::with_defaults(79);
        assert_ne!(c.take_rows(50), d.take_rows(50));
    }

    #[test]
    fn star_players_appear_more_often() {
        let mut gen = NbaGenerator::new(NbaConfig {
            players: 300,
            seasons: 1,
            games_per_season: 10_000,
            seed: 8,
            ..NbaConfig::default()
        });
        let rows = gen.take_rows(5_000);
        let mut counts = std::collections::HashMap::new();
        for row in &rows {
            *counts.entry(row.dims[0].clone()).or_insert(0u32) += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        let mean = rows.len() as f64 / counts.len() as f64;
        assert!(max as f64 > mean * 3.0, "max {max} mean {mean}");
    }
}
