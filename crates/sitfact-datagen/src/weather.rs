//! Synthetic daily weather-forecast generator.
//!
//! Mirrors the paper's UK Met Office dataset: 7 dimension attributes
//! (location, country, month, time step, day/night wind direction, visibility
//! range) and 7 measure attributes (day/night wind speed, day/night
//! temperature, day/night humidity, wind gust), with thousands of locations in
//! six countries and a stream that advances through the months of a year. As
//! in the paper, all measures are treated as higher-is-better.

use crate::rand_util::normal;
use crate::{DataGenerator, Row};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sitfact_core::{Direction, Schema, SchemaBuilder};

/// The dimension attributes used for each value of `d` (the paper evaluates
/// the weather dataset at `d = 5`; smaller/larger spaces are nested subsets).
pub fn weather_dimension_names(d: usize) -> Vec<&'static str> {
    match d {
        4 => vec!["location", "country", "month", "visibility"],
        5 => vec!["location", "country", "month", "wind_dir_day", "visibility"],
        6 => vec![
            "location",
            "country",
            "month",
            "time_step",
            "wind_dir_day",
            "visibility",
        ],
        7 => vec![
            "location",
            "country",
            "month",
            "time_step",
            "wind_dir_day",
            "wind_dir_night",
            "visibility",
        ],
        // audit: allow(no-panic): documented precondition of the synthetic dataset catalog
        _ => panic!("the weather dataset defines dimension spaces for d in 4..=7, got {d}"),
    }
}

/// The first `m` of the weather measure attributes.
pub fn weather_measure_names(m: usize) -> Vec<(&'static str, Direction)> {
    let all = [
        "wind_speed_day",
        "wind_speed_night",
        "temperature_day",
        "temperature_night",
        "humidity_day",
        "humidity_night",
        "wind_gust",
    ];
    assert!((1..=all.len()).contains(&m), "m must be in 1..=7, got {m}");
    all[..m]
        .iter()
        .map(|&n| (n, Direction::HigherIsBetter))
        .collect()
}

/// Builds the weather schema for the given dimension / measure space sizes.
pub fn weather_schema(d: usize, m: usize) -> Schema {
    let mut builder = SchemaBuilder::new("uk_weather").dimensions(weather_dimension_names(d));
    for (name, dir) in weather_measure_names(m) {
        builder = builder.measure(name, dir);
    }
    builder.build().expect("weather schema is valid") // audit: allow(no-panic): fixed name catalog, duplicates impossible
}

/// Configuration of the [`WeatherGenerator`].
#[derive(Debug, Clone, PartialEq)]
pub struct WeatherConfig {
    /// Number of dimension attributes (4–7).
    pub dimensions: usize,
    /// Number of measure attributes (1–7).
    pub measures: usize,
    /// Number of forecast locations (the paper's dataset has 5,365).
    pub locations: usize,
    /// Forecast records per simulated day (controls how fast the `month`
    /// dimension advances).
    pub records_per_day: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WeatherConfig {
    fn default() -> Self {
        WeatherConfig {
            dimensions: 5,
            measures: 7,
            locations: 5_365,
            records_per_day: 5_365,
            seed: 2011,
        }
    }
}

const COUNTRIES: [&str; 6] = [
    "England",
    "Scotland",
    "Wales",
    "NorthernIreland",
    "IsleOfMan",
    "ChannelIslands",
];
const MONTHS: [&str; 12] = [
    "Dec", "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov",
];
const WIND_DIRS: [&str; 8] = ["N", "NE", "E", "SE", "S", "SW", "W", "NW"];
const VISIBILITY: [&str; 5] = ["VeryPoor", "Poor", "Moderate", "Good", "VeryGood"];
const TIME_STEPS: [&str; 2] = ["Day", "Night"];

#[derive(Debug, Clone)]
struct LocationProfile {
    name: String,
    country: usize,
    /// Base temperature offset (coastal vs inland, north vs south).
    temp_offset: f64,
    /// Base windiness.
    wind_factor: f64,
}

/// Streaming generator of synthetic forecast records.
#[derive(Debug)]
pub struct WeatherGenerator {
    schema: Schema,
    config: WeatherConfig,
    rng: StdRng,
    locations: Vec<LocationProfile>,
    generated: usize,
}

impl WeatherGenerator {
    /// Creates a generator from a configuration.
    pub fn new(config: WeatherConfig) -> Self {
        let schema = weather_schema(config.dimensions, config.measures);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let locations = (0..config.locations)
            .map(|i| LocationProfile {
                name: format!("Loc{i:04}"),
                country: rng.gen_range(0..COUNTRIES.len()),
                temp_offset: normal(&mut rng, 0.0, 2.0),
                wind_factor: rng.gen_range(0.6..1.6),
            })
            .collect();
        WeatherGenerator {
            schema,
            config,
            rng,
            locations,
            generated: 0,
        }
    }

    /// Convenience constructor matching the paper's configuration (`d = 5`,
    /// `m = 7`).
    pub fn with_defaults(seed: u64) -> Self {
        Self::new(WeatherConfig {
            seed,
            ..WeatherConfig::default()
        })
    }

    fn month_index(&self) -> usize {
        let day = self.generated / self.config.records_per_day.max(1);
        (day / 30) % MONTHS.len()
    }
}

impl DataGenerator for WeatherGenerator {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_row(&mut self) -> Row {
        let month = self.month_index();
        let loc_idx = self.rng.gen_range(0..self.locations.len());
        let loc = self.locations[loc_idx].clone();
        // Seasonal cycle: warm summers, windy winters.
        let season_phase = (month as f64 / 12.0) * std::f64::consts::TAU;
        let seasonal_temp = 9.0 - 7.0 * season_phase.cos();
        let seasonal_wind = 14.0 + 6.0 * season_phase.cos();

        let wind_day = normal(&mut self.rng, seasonal_wind * loc.wind_factor, 4.0).max(0.0);
        let wind_night = (wind_day * self.rng.gen_range(0.6..1.1)).max(0.0);
        let temp_day = normal(&mut self.rng, seasonal_temp + loc.temp_offset, 3.0);
        let temp_night = temp_day - self.rng.gen_range(2.0..8.0);
        let humidity_day = normal(&mut self.rng, 75.0, 10.0).clamp(20.0, 100.0);
        let humidity_night = (humidity_day + self.rng.gen_range(0.0..15.0)).min(100.0);
        let gust = wind_day * self.rng.gen_range(1.3..2.2);
        let all = [
            wind_day.round(),
            wind_night.round(),
            temp_day.round(),
            temp_night.round(),
            humidity_day.round(),
            humidity_night.round(),
            gust.round(),
        ];
        let measures = all[..self.config.measures].to_vec();

        let visibility = VISIBILITY[self
            .rng
            .gen_range(0..VISIBILITY.len())
            .min(VISIBILITY.len() - 1)];
        let mut dims = Vec::with_capacity(self.config.dimensions);
        for name in weather_dimension_names(self.config.dimensions) {
            let value = match name {
                "location" => loc.name.clone(),
                "country" => COUNTRIES[loc.country].to_string(),
                "month" => MONTHS[month].to_string(),
                "time_step" => TIME_STEPS[self.rng.gen_range(0..TIME_STEPS.len())].to_string(),
                "wind_dir_day" => WIND_DIRS[self.rng.gen_range(0..WIND_DIRS.len())].to_string(),
                "wind_dir_night" => WIND_DIRS[self.rng.gen_range(0..WIND_DIRS.len())].to_string(),
                "visibility" => visibility.to_string(),
                other => unreachable!("unknown weather dimension {other}"),
            };
            dims.push(value);
        }
        self.generated += 1;
        Row { dims, measures }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shapes() {
        for d in 4..=7 {
            for m in 1..=7 {
                let schema = weather_schema(d, m);
                assert_eq!(schema.num_dimensions(), d);
                assert_eq!(schema.num_measures(), m);
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimension spaces")]
    fn invalid_dimension_count_panics() {
        let _ = weather_dimension_names(9);
    }

    #[test]
    fn generates_valid_rows() {
        let mut gen = WeatherGenerator::new(WeatherConfig {
            locations: 100,
            records_per_day: 100,
            seed: 3,
            ..WeatherConfig::default()
        });
        let table = gen.table_of(2_000).unwrap();
        assert_eq!(table.len(), 2_000);
        let schema = table.schema();
        assert!(schema.dictionary(0).len() <= 100); // locations
        assert!(schema.dictionary(1).len() <= 6); // countries
        for (_, t) in table.iter() {
            for &v in t.measures() {
                assert!(v.is_finite());
            }
            assert!(t.measure(4) >= 20.0 && t.measure(4) <= 100.0); // humidity bounds
        }
    }

    #[test]
    fn months_advance_over_long_streams() {
        let mut gen = WeatherGenerator::new(WeatherConfig {
            locations: 10,
            records_per_day: 10,
            seed: 4,
            ..WeatherConfig::default()
        });
        // 10 records/day * 30 days = 300 records per month bucket.
        let rows = gen.take_rows(700);
        assert_eq!(rows[0].dims[2], "Dec");
        assert_ne!(rows[0].dims[2], rows[650].dims[2]);
    }

    #[test]
    fn determinism_per_seed() {
        let cfg = WeatherConfig {
            locations: 20,
            seed: 10,
            ..WeatherConfig::default()
        };
        let mut a = WeatherGenerator::new(cfg.clone());
        let mut b = WeatherGenerator::new(cfg);
        assert_eq!(a.take_rows(30), b.take_rows(30));
        let _ = WeatherGenerator::with_defaults(1).next_row();
    }
}
