//! # sitfact-datagen
//!
//! Synthetic workloads and data IO for situational-fact discovery.
//!
//! The paper evaluates on two real datasets (NBA box scores 1991–2004 and UK
//! Met Office forecasts) that are not redistributable here, so this crate
//! provides generators that reproduce their *shape*: the same schemas, similar
//! attribute cardinalities, skewed dimension-value popularity, and correlated
//! measures. The discovery algorithms only ever see dictionary-encoded
//! dimension ids and numeric measures, so these are the properties that drive
//! their cost and output volume (see DESIGN.md for the substitution argument).
//!
//! * [`nba`] — synthetic basketball box scores (Table V / Table VI schemas);
//! * [`weather`] — synthetic daily forecasts (7 dimension / 7 measure attributes);
//! * [`stocks`] — a small stock-tick generator used by the examples;
//! * [`generic`] — classic correlated / independent / anti-correlated skyline
//!   workloads with configurable dimensionality and cardinalities;
//! * [`zipf`] — Zipf-skewed high-cardinality dimensions, the adversarial
//!   shape for the compressed context index;
//! * [`csv`] — plain-text import/export so users can run the library on their
//!   own data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod generic;
pub mod nba;
pub mod rand_util;
pub mod stocks;
pub mod weather;
pub mod zipf;

use sitfact_core::{Result, Schema, Tuple};
use sitfact_storage::Table;

/// One generated record: raw dimension strings plus measure values.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Dimension attribute values, in schema order.
    pub dims: Vec<String>,
    /// Measure attribute values, in schema order.
    pub measures: Vec<f64>,
}

/// A source of synthetic rows under a fixed schema.
pub trait DataGenerator {
    /// The schema the generated rows conform to.
    fn schema(&self) -> &Schema;

    /// Generates the next row. Generators are infinite streams.
    fn next_row(&mut self) -> Row;

    /// Generates `n` rows.
    fn take_rows(&mut self, n: usize) -> Vec<Row> {
        (0..n).map(|_| self.next_row()).collect()
    }

    /// Generates `n` rows and loads them into a fresh [`Table`].
    fn table_of(&mut self, n: usize) -> Result<Table> {
        let mut table = Table::with_capacity(self.schema().clone(), n);
        for _ in 0..n {
            let row = self.next_row();
            let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
            table.append_raw(&dims, row.measures)?;
        }
        Ok(table)
    }
}

/// Encodes a [`Row`] against a table's schema (interning its dimension
/// strings) without appending it — handy when a row must be *discovered
/// against* the table before being added.
pub fn encode_row(table: &mut Table, row: &Row) -> Result<Tuple> {
    let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
    let ids = table.schema_mut().intern_dims(&dims)?;
    Tuple::validated(ids, row.measures.clone(), table.schema())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::{Correlation, GenericConfig, GenericGenerator};

    #[test]
    fn table_of_and_encode_row_round_trip() {
        let mut gen = GenericGenerator::new(GenericConfig {
            dim_cardinalities: vec![3, 4],
            measures: 2,
            correlation: Correlation::Independent,
            seed: 1,
        });
        let mut table = gen.table_of(50).unwrap();
        assert_eq!(table.len(), 50);
        let row = gen.next_row();
        let tuple = encode_row(&mut table, &row).unwrap();
        assert_eq!(tuple.num_dims(), 2);
        assert_eq!(tuple.num_measures(), 2);
    }
}
