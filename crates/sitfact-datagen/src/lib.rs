//! # sitfact-datagen
//!
//! Synthetic workloads and data IO for situational-fact discovery.
//!
//! The paper evaluates on two real datasets (NBA box scores 1991–2004 and UK
//! Met Office forecasts) that are not redistributable here, so this crate
//! provides generators that reproduce their *shape*: the same schemas, similar
//! attribute cardinalities, skewed dimension-value popularity, and correlated
//! measures. The discovery algorithms only ever see dictionary-encoded
//! dimension ids and numeric measures, so these are the properties that drive
//! their cost and output volume (see DESIGN.md for the substitution argument).
//!
//! * [`nba`] — synthetic basketball box scores (Table V / Table VI schemas);
//! * [`weather`] — synthetic daily forecasts (7 dimension / 7 measure attributes);
//! * [`stocks`] — a small stock-tick generator used by the examples;
//! * [`generic`] — classic correlated / independent / anti-correlated skyline
//!   workloads with configurable dimensionality and cardinalities;
//! * [`zipf`] — Zipf-skewed high-cardinality dimensions, the adversarial
//!   shape for the compressed context index;
//! * [`csv`] — plain-text import/export so users can run the library on their
//!   own data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod generic;
pub mod nba;
pub mod rand_util;
pub mod stocks;
pub mod weather;
pub mod zipf;

use sitfact_core::{Result, Schema, Tuple};
use sitfact_storage::Table;

/// One generated record: raw dimension strings plus measure values.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Dimension attribute values, in schema order.
    pub dims: Vec<String>,
    /// Measure attribute values, in schema order.
    pub measures: Vec<f64>,
}

/// A source of synthetic rows under a fixed schema.
pub trait DataGenerator {
    /// The schema the generated rows conform to.
    fn schema(&self) -> &Schema;

    /// Generates the next row. Generators are infinite streams.
    fn next_row(&mut self) -> Row;

    /// Generates `n` rows.
    fn take_rows(&mut self, n: usize) -> Vec<Row> {
        (0..n).map(|_| self.next_row()).collect()
    }

    /// Generates `n` rows and loads them into a fresh [`Table`].
    fn table_of(&mut self, n: usize) -> Result<Table> {
        let mut table = Table::with_capacity(self.schema().clone(), n);
        for _ in 0..n {
            let row = self.next_row();
            let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
            table.append_raw(&dims, row.measures)?;
        }
        Ok(table)
    }
}

/// Applies a seeded Fisher–Yates permutation to `rows` in place. The same
/// seed always yields the same permutation, so shuffled workloads replay
/// deterministically across runs and machines.
pub fn shuffle_rows(rows: &mut [Row], seed: u64) {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for i in (1..rows.len()).rev() {
        rows.swap(i, rng.gen_range(0..=i));
    }
}

/// Replays a seeded permutation of another generator's output — the
/// order-shuffled adversarial workload.
///
/// The base generators emit rows in a fixed stochastic order (hot players
/// early and often, measures drifting with the season clock), which can mask
/// order-sensitive bugs: a sliding-window monitor's report stream is a
/// function of *arrival order*, not just the row multiset. Wrapping a
/// generator in `ShuffledReplay` drives the same rows through an arbitrary
/// seeded order, so the windowed property tests can check that eviction
/// bookkeeping holds under any permutation. The replay cycles once the
/// permutation is exhausted, keeping the [`DataGenerator`] contract of an
/// infinite stream.
#[derive(Debug, Clone)]
pub struct ShuffledReplay {
    schema: Schema,
    rows: Vec<Row>,
    next: usize,
}

impl ShuffledReplay {
    /// Materialises `n` rows from `gen` and shuffles them with `seed`.
    pub fn new<G: DataGenerator + ?Sized>(gen: &mut G, n: usize, seed: u64) -> Self {
        assert!(n > 0, "ShuffledReplay requires at least one row");
        let mut rows = gen.take_rows(n);
        shuffle_rows(&mut rows, seed);
        ShuffledReplay {
            schema: gen.schema().clone(),
            rows,
            next: 0,
        }
    }

    /// The shuffled rows, in replay order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }
}

impl DataGenerator for ShuffledReplay {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_row(&mut self) -> Row {
        let row = self.rows[self.next % self.rows.len()].clone();
        self.next += 1;
        row
    }
}

/// Encodes a [`Row`] against a table's schema (interning its dimension
/// strings) without appending it — handy when a row must be *discovered
/// against* the table before being added.
pub fn encode_row(table: &mut Table, row: &Row) -> Result<Tuple> {
    let dims: Vec<&str> = row.dims.iter().map(String::as_str).collect();
    let ids = table.schema_mut().intern_dims(&dims)?;
    Tuple::validated(ids, row.measures.clone(), table.schema())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::{Correlation, GenericConfig, GenericGenerator};

    #[test]
    fn table_of_and_encode_row_round_trip() {
        let mut gen = GenericGenerator::new(GenericConfig {
            dim_cardinalities: vec![3, 4],
            measures: 2,
            correlation: Correlation::Independent,
            seed: 1,
        });
        let mut table = gen.table_of(50).unwrap();
        assert_eq!(table.len(), 50);
        let row = gen.next_row();
        let tuple = encode_row(&mut table, &row).unwrap();
        assert_eq!(tuple.num_dims(), 2);
        assert_eq!(tuple.num_measures(), 2);
    }

    fn generator(seed: u64) -> GenericGenerator {
        GenericGenerator::new(GenericConfig {
            dim_cardinalities: vec![4, 3],
            measures: 2,
            correlation: Correlation::Independent,
            seed,
        })
    }

    #[test]
    fn shuffled_replay_is_a_deterministic_permutation() {
        let baseline = generator(7).take_rows(40);
        let mut replay_a = ShuffledReplay::new(&mut generator(7), 40, 11);
        let mut replay_b = ShuffledReplay::new(&mut generator(7), 40, 11);
        let rows_a = replay_a.take_rows(40);
        assert_eq!(rows_a, replay_b.take_rows(40), "same seed, same order");

        // A permutation of the base output: same multiset, different order.
        let mut sorted_base: Vec<String> = baseline.iter().map(|r| format!("{r:?}")).collect();
        let mut sorted_shuffled: Vec<String> = rows_a.iter().map(|r| format!("{r:?}")).collect();
        sorted_base.sort();
        sorted_shuffled.sort();
        assert_eq!(sorted_base, sorted_shuffled);
        assert_ne!(baseline, rows_a, "seed 11 must actually reorder 40 rows");

        // A different seed yields a different order over the same rows.
        let other = ShuffledReplay::new(&mut generator(7), 40, 12);
        assert_ne!(rows_a, other.rows());

        // The replay cycles: row n equals row 0 of the permutation.
        assert_eq!(replay_a.next_row(), rows_a[0]);
        assert_eq!(replay_a.schema().num_dimensions(), 2);
    }
}
