//! Counters behind the paper's work and memory experiments.

/// Work performed by a discovery algorithm, accumulated across all processed
/// tuples (Fig. 11 of the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkStats {
    /// Number of tuple-vs-tuple dominance comparisons (Fig. 11a).
    pub comparisons: u64,
    /// Number of constraint lattice nodes visited across all measure
    /// subspaces (Fig. 11b).
    pub traversed_constraints: u64,
    /// Number of `µ_{C,M}` cells read from the skyline store.
    pub store_reads: u64,
    /// Number of `µ_{C,M}` cell mutations (inserts + removes).
    pub store_writes: u64,
}

impl WorkStats {
    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = WorkStats::default();
    }

    /// Adds another stats record into this one.
    pub fn merge(&mut self, other: &WorkStats) {
        self.comparisons += other.comparisons;
        self.traversed_constraints += other.traversed_constraints;
        self.store_reads += other.store_reads;
        self.store_writes += other.store_writes;
    }
}

/// Storage consumed by a skyline store (Fig. 10 of the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Total number of skyline tuples stored across all `(C, M)` cells —
    /// the y-axis of Fig. 10b. A tuple stored in k cells counts k times.
    pub stored_entries: u64,
    /// Number of non-empty `(C, M)` cells.
    pub non_empty_cells: u64,
    /// Approximate heap (or file) bytes consumed — the y-axis of Fig. 10a.
    pub approx_bytes: u64,
    /// File read operations performed (0 for the in-memory backend).
    pub file_reads: u64,
    /// File write operations performed (0 for the in-memory backend).
    pub file_writes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_stats_merge_and_reset() {
        let mut a = WorkStats {
            comparisons: 10,
            traversed_constraints: 5,
            store_reads: 2,
            store_writes: 1,
        };
        let b = WorkStats {
            comparisons: 1,
            traversed_constraints: 2,
            store_reads: 3,
            store_writes: 4,
        };
        a.merge(&b);
        assert_eq!(a.comparisons, 11);
        assert_eq!(a.traversed_constraints, 7);
        assert_eq!(a.store_reads, 5);
        assert_eq!(a.store_writes, 5);
        a.reset();
        assert_eq!(a, WorkStats::default());
    }

    #[test]
    fn store_stats_default_is_zero() {
        let s = StoreStats::default();
        assert_eq!(s.stored_entries, 0);
        assert_eq!(s.approx_bytes, 0);
        assert_eq!(s.file_reads, 0);
    }
}
