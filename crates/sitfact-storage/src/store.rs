//! The `µ_{C,M}` skyline-tuple store abstraction.
//!
//! Every discovery algorithm of the paper conceptually maintains, for each
//! constraint–measure pair `(C, M)`, the set of tuples it has decided to keep
//! for that cell (all contextual skyline tuples for `BottomUp`-style
//! algorithms, only maximal-constraint occurrences for `TopDown`-style ones).
//! The [`SkylineStore`] trait captures the cell-level operations; it is
//! implemented by an in-memory backend and by the file-backed backend of the
//! paper's Section VI-C, so the same algorithm code runs over both.

use crate::stats::StoreStats;
use sitfact_core::{Constraint, DimValueId, Result, SitFactError, SubspaceMask, TupleId};
use std::sync::Arc;

/// One stored skyline tuple: its id plus a copy of its measure values.
///
/// Keeping the measures inline mirrors the paper's storage model (each cell
/// materialises its skyline tuples) and is what the file backend serialises;
/// it also spares the algorithms a table lookup per comparison. The measures
/// are reference-counted so that reading a large cell (skylines over 7
/// measures routinely hold thousands of tuples) costs a shallow copy per
/// entry rather than a heap allocation per entry.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredEntry {
    /// Id of the tuple in the append-only table.
    pub id: TupleId,
    /// The tuple's measure values (all of them, regardless of the cell's
    /// subspace, so one entry layout serves every cell).
    pub measures: Arc<[f64]>,
}

impl StoredEntry {
    /// Creates an entry from a tuple id and its measures.
    pub fn new(id: TupleId, measures: &[f64]) -> Self {
        StoredEntry {
            id,
            measures: measures.into(),
        }
    }
}

/// One dumped cell of a [`SkylineStore`] in plain-data form: the constraint's
/// raw value ids, the subspace bits and the entries (id plus measures), as
/// produced by [`SkylineStore::dump_cells`] and consumed by
/// [`SkylineStore::load_cells`]. This is the serialization surface of the
/// durability layer — see `crate::wal::encode_cells`.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreCell {
    /// The cell's constraint as raw dimension value ids
    /// ([`Constraint::values`]; `UNBOUND` marks free dimensions).
    pub constraint: Vec<DimValueId>,
    /// The cell's measure subspace bits ([`SubspaceMask`]`::0`).
    pub subspace: u32,
    /// The stored entries, in the cell's insertion order.
    pub entries: Vec<(TupleId, Vec<f64>)>,
}

/// Cell-level access to the skyline tuples stored per `(C, M)` pair.
///
/// All methods take `&mut self` because the file-backed implementation keeps
/// per-cell buffers and I/O counters that mutate even on reads.
pub trait SkylineStore {
    /// Reads the entries of cell `(constraint, subspace)`; the returned value
    /// is a snapshot (mutations go through [`SkylineStore::insert`] /
    /// [`SkylineStore::remove`], which copy-on-write under the hood), so the
    /// caller may keep iterating it while mutating the same cell. Reading a
    /// cell is O(1) for the in-memory backend.
    fn read(&mut self, constraint: &Constraint, subspace: SubspaceMask) -> Arc<Vec<StoredEntry>>;

    /// Inserts an entry into a cell. The caller guarantees the entry is not
    /// already present.
    fn insert(&mut self, constraint: &Constraint, subspace: SubspaceMask, entry: StoredEntry);

    /// Removes a tuple from a cell, returning whether it was present.
    fn remove(&mut self, constraint: &Constraint, subspace: SubspaceMask, id: TupleId) -> bool;

    /// Whether the cell contains the given tuple id.
    fn contains(&mut self, constraint: &Constraint, subspace: SubspaceMask, id: TupleId) -> bool;

    /// Storage statistics (entries, bytes, I/O counters).
    fn stats(&self) -> StoreStats;

    /// Removes every cell.
    fn clear(&mut self);

    /// Persists any buffered state (a no-op for purely in-memory backends;
    /// the file-backed store writes back its dirty cell buffer).
    fn flush(&mut self) {}

    /// Dumps every cell in plain-data form for a durability snapshot, or
    /// `None` when this backend does not support state export (the default —
    /// callers then fall back to full-log replay).
    fn dump_cells(&self) -> Option<Vec<StoreCell>> {
        None
    }

    /// Replaces this store's contents with previously dumped cells. The
    /// default refuses, matching the default [`SkylineStore::dump_cells`].
    fn load_cells(&mut self, _cells: Vec<StoreCell>) -> Result<()> {
        Err(SitFactError::InvalidConfig(
            "this skyline store does not support state import".to_string(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stored_entry_round_trip() {
        let e = StoredEntry::new(7, &[1.0, 2.0, 3.0]);
        assert_eq!(e.id, 7);
        assert_eq!(&*e.measures, &[1.0, 2.0, 3.0]);
        let f = e.clone();
        assert_eq!(e, f);
    }
}
