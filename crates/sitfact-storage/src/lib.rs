//! # sitfact-storage
//!
//! Storage substrates for incremental situational-fact discovery:
//!
//! * [`Table`] — the append-only relation `R` holding the historical tuples;
//! * [`CompressedPostings`] — delta-packed block posting lists with a
//!   galloping skip index, the representation behind the table's context
//!   index;
//! * [`ContextCounter`] — incremental maintenance of the context cardinalities
//!   `|σ_C(R)|` needed by the prominence measure;
//! * [`SkylineStore`] — the `µ_{C,M}` abstraction of the paper (one cell of
//!   skyline tuples per constraint–measure pair) with an in-memory backend
//!   ([`MemorySkylineStore`]) and a file-backed backend ([`FileSkylineStore`],
//!   Section VI-C of the paper);
//! * [`KdTree`] — the k-d tree used by the `BaselineIdx` algorithm for
//!   one-sided ("who dominates me") range queries over the measure space;
//! * [`WorkStats`] / [`StoreStats`] — the counters behind the paper's
//!   work/memory experiments (Figs. 10–11);
//! * [`wal`] — the write-ahead arrival log and the snapshot state codecs
//!   behind the durability layer (checksummed frames, segmented log files,
//!   torn-tail truncation, native table/store serialization).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod file_store;
pub mod kdtree;
pub mod memory_store;
pub mod postings;
pub mod stats;
pub mod store;
pub mod table;
pub mod wal;

pub use context::ContextCounter;
pub use file_store::FileSkylineStore;
pub use kdtree::KdTree;
pub use memory_store::MemorySkylineStore;
pub use postings::{CompressedPostings, PostingsCursor};
pub use stats::{StoreStats, WorkStats};
pub use store::{SkylineStore, StoreCell, StoredEntry};
pub use table::{PostingIndexStats, Table};
pub use wal::{ArrivalLog, LoggedRow, ScannedLog, SyncPolicy, WalStats, WindowRecord};
