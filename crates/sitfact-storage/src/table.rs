//! The append-only relation `R(D; M)`, stored column-wise with an inverted
//! context index.
//!
//! ## Storage layout
//!
//! The table is a struct-of-arrays: instead of one heap-allocated [`Tuple`]
//! per row (two allocations each), all dimension values live in a single flat
//! `Vec<DimValueId>` and all measure values in a single flat `Vec<f64>`, both
//! row-major with fixed stride. Row access is pure slicing — [`Table::tuple`]
//! hands out a zero-copy [`TupleRef`] — and an append is amortised O(1) with
//! no per-row allocation.
//!
//! On top of the columns the table maintains, per dimension attribute, an
//! inverted index of posting lists: `DimValueId → CompressedPostings`, each
//! list ascending because tuple ids are assigned in arrival order and stored
//! as delta-packed 128-id blocks with a skip index (see
//! [`crate::postings`]). The context `σ_C(R)` of a conjunctive constraint is
//! then the intersection of the posting lists of its bound values — driven
//! from the shortest list, *galloping* through the others via their block
//! maxima so only candidate blocks are decoded. The top constraint `⊤` stays
//! a plain range iterator over all rows.

use crate::postings::{CompressedPostings, PostingsCursor};
use sitfact_core::{
    Constraint, DimValueId, FxHashMap, Result, Schema, SitFactError, Tuple, TupleId, TupleRef,
    UNBOUND,
};
use std::ops::Range;

/// Posting lists of one dimension attribute: every value id observed in that
/// column maps to the compressed ascending ids of the tuples carrying it.
/// Crate-visible so the snapshot codec in [`crate::wal`] can serialize the
/// index natively.
pub(crate) type PostingMap = FxHashMap<DimValueId, CompressedPostings>;

/// Cap on the per-column distinct-value hint derived from a row-capacity
/// hint: dictionary-encoded columns typically hold far fewer distinct values
/// than rows (hundreds of players across tens of thousands of box scores), so
/// pre-sizing each posting map for one entry per row would waste memory.
const POSTING_MAP_HINT_CAP: usize = 1 << 10;

/// An append-at-the-end table of tuples under a fixed [`Schema`], stored as
/// flat columns plus per-dimension posting lists.
///
/// The table owns the schema (and therefore the dimension dictionaries), so
/// raw string records can be ingested with [`Table::append_raw`]; already
/// encoded tuples are appended with [`Table::append`]. Tuples are never
/// updated — the paper's model is an ever-growing relation whose appends
/// correspond to real-world events — but sliding-window workloads may
/// *retract* the oldest rows with [`Table::retract_prefix`]: expired rows are
/// tombstoned (a bitmap over the physical columns plus a lazy dead counter
/// per posting list) and physically dropped by
/// [`Table::compact_retracted`]. Tuple ids stay stable for the table's whole
/// life; [`Table::len`] keeps counting every id ever assigned, while
/// [`Table::live_rows`] counts the surviving suffix.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    n_dims: usize,
    n_measures: usize,
    /// Total ids ever assigned (`next_id`), retracted rows included — ids are
    /// stable, so this never decreases.
    len: usize,
    /// Rows physically removed from the front of the columns. The physical
    /// row of tuple `id` is `id - evicted`.
    evicted: usize,
    /// Lowest live id. Retraction is prefix-only, so ids in
    /// `[evicted, watermark)` are tombstoned but still physically present
    /// (readable during skyline repair) until [`Table::compact_retracted`].
    watermark: usize,
    /// Tombstone bitmap over physical rows: bit `k` set means row
    /// `evicted + k` is retracted. Lazily allocated on first retraction and
    /// cleared by compaction, so an append-only table pays zero bytes.
    tombstones: Vec<u64>,
    /// All dimension values, row-major (`(len - evicted) * n_dims` entries).
    dims: Vec<DimValueId>,
    /// All measure values, row-major (`(len - evicted) * n_measures` entries).
    measures: Vec<f64>,
    /// One posting map per dimension attribute.
    postings: Vec<PostingMap>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: Schema) -> Self {
        Self::with_capacity(schema, 0)
    }

    /// Creates an empty table whose next id is `base` — as if `base` rows had
    /// arrived, been retracted and been compacted away already. This is the
    /// reference construction behind the `windowed ≡ rebuild-from-scratch`
    /// property: a fresh monitor over `with_base(schema, watermark)` fed only
    /// the surviving suffix assigns the survivors the ids they already hold
    /// in the windowed table, so reports can be compared byte for byte.
    pub fn with_base(schema: Schema, base: TupleId) -> Self {
        let mut table = Self::with_capacity(schema, 0);
        table.len = base as usize;
        table.evicted = base as usize;
        table.watermark = base as usize;
        table
    }

    /// Creates an empty table with pre-allocated capacity (in rows).
    ///
    /// The hint pre-sizes every layer of the storage: the flat dimension and
    /// measure columns get one reservation each, and every dimension's posting
    /// map is sized for up to `POSTING_MAP_HINT_CAP` (1024) distinct values (a
    /// dictionary-encoded column rarely holds more; the map grows normally if
    /// it does). Individual posting lists need no row-proportional
    /// reservation: a [`CompressedPostings`] arena never buffers more than
    /// one raw block of tail ids before sealing, so lists start small and the
    /// batch path hints each list with its per-value run length instead.
    pub fn with_capacity(schema: Schema, capacity: usize) -> Self {
        let n_dims = schema.num_dimensions();
        let n_measures = schema.num_measures();
        let distinct_hint = capacity.min(POSTING_MAP_HINT_CAP);
        Table {
            schema,
            n_dims,
            n_measures,
            len: 0,
            evicted: 0,
            watermark: 0,
            tombstones: Vec::new(),
            dims: Vec::with_capacity(capacity * n_dims),
            measures: Vec::with_capacity(capacity * n_measures),
            postings: vec![
                PostingMap::with_capacity_and_hasher(distinct_hint, Default::default());
                n_dims
            ],
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Mutable access to the schema (needed to intern new dictionary values
    /// when tuples are produced outside [`Table::append_raw`]).
    pub fn schema_mut(&mut self) -> &mut Schema {
        &mut self.schema
    }

    /// Number of tuple ids ever assigned, retracted rows included. Ids are
    /// stable across retraction, so this is also the id the next append
    /// receives — the live population is [`Table::live_rows`].
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table has never stored a tuple.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The id that the *next* appended tuple will receive.
    pub fn next_id(&self) -> TupleId {
        self.len as TupleId
    }

    /// Number of live (non-retracted) rows.
    pub fn live_rows(&self) -> usize {
        self.len - self.watermark
    }

    /// The lowest live id: every id below it has been retracted. Equals 0
    /// until the first [`Table::retract_prefix`].
    pub fn watermark(&self) -> TupleId {
        self.watermark as TupleId
    }

    /// Rows retracted *and* physically dropped by
    /// [`Table::compact_retracted`].
    pub fn evicted_rows(&self) -> usize {
        self.evicted
    }

    /// Rows tombstoned but not yet physically compacted (the
    /// `[evicted, watermark)` id range).
    pub fn tombstone_rows(&self) -> usize {
        self.watermark - self.evicted
    }

    /// Whether `id` names a live (assigned and not retracted) row.
    pub fn is_live(&self, id: TupleId) -> bool {
        let id = id as usize;
        id >= self.watermark && id < self.len
    }

    /// Retracts every row with id below `up_to` (clamped to the table
    /// length): the expired prefix of a sliding window. Idempotent — ids
    /// already retracted stay retracted — and returns how many rows this
    /// call newly tombstoned.
    ///
    /// Tombstoned rows disappear from [`Table::get`], [`Table::iter`],
    /// [`Table::context`] and [`Table::context_scan`] immediately, but stay
    /// readable through [`Table::tuple`] until [`Table::compact_retracted`]
    /// physically drops them — skyline repair needs the expired points'
    /// coordinates while it re-promotes their dominated regions. Each posting
    /// list tracks its dead ids lazily and is rebuilt without them once they
    /// reach half the list ([`CompressedPostings::live_len`] /
    /// `should_rebuild`); fully-dead lists are removed outright.
    pub fn retract_prefix(&mut self, up_to: usize) -> usize {
        let new_watermark = up_to.min(self.len);
        if new_watermark <= self.watermark {
            return 0;
        }
        let newly = new_watermark - self.watermark;
        // Mark the tombstone bitmap for the newly dead physical rows.
        let dead_rows = new_watermark - self.evicted;
        self.tombstones.resize(dead_rows.div_ceil(64), 0);
        for row in (self.watermark - self.evicted)..dead_rows {
            self.tombstones[row / 64] |= 1u64 << (row % 64);
        }
        // Count the dead ids into their posting lists (one bump per
        // occurrence; a value appears at most once per row per attribute).
        for id in self.watermark..new_watermark {
            let row = id - self.evicted;
            for attr in 0..self.n_dims {
                let value = self.dims[row * self.n_dims + attr];
                if let Some(list) = self.postings[attr].get_mut(&value) {
                    list.mark_dead();
                }
            }
        }
        self.watermark = new_watermark;
        // Lazy-deletion maintenance: drop fully-dead lists, rebuild lists
        // whose dead fraction crossed the threshold. Done after all marks so
        // a rebuild never races the counting above.
        let watermark = self.watermark as TupleId;
        for map in &mut self.postings {
            map.retain(|_, list| {
                if list.live_len() == 0 {
                    return false;
                }
                if list.should_rebuild() {
                    list.rebuild_below(watermark);
                }
                true
            });
        }
        newly
    }

    /// Physically drops the tombstoned prefix from the flat columns and
    /// clears the bitmap, reclaiming the memory [`Table::retract_prefix`]
    /// only marked. Returns the number of rows dropped. Ids below the
    /// watermark stop being readable even through [`Table::tuple`], so
    /// callers must finish any retraction repair first.
    pub fn compact_retracted(&mut self) -> usize {
        let dead = self.watermark - self.evicted;
        if dead == 0 {
            return 0;
        }
        self.dims.drain(..dead * self.n_dims);
        self.measures.drain(..dead * self.n_measures);
        self.evicted = self.watermark;
        self.tombstones = Vec::new();
        // Lists below the lazy-deletion threshold may still carry ids of the
        // rows just dropped; those ids now point below `evicted`, so force
        // the rebuild the threshold deferred.
        let watermark = self.watermark as TupleId;
        for map in &mut self.postings {
            for list in map.values_mut() {
                if list.dead_len() > 0 {
                    list.rebuild_below(watermark);
                }
            }
        }
        dead
    }

    /// Appends an already-encoded tuple after validating it against the
    /// schema. The tuple is consumed — its vectors are drained into the
    /// columns without re-cloning. Returns the assigned [`TupleId`].
    pub fn append(&mut self, tuple: Tuple) -> Result<TupleId> {
        tuple.validate(&self.schema)?;
        let (dims, measures) = tuple.into_parts();
        Ok(self.push_row(dims, measures))
    }

    /// Interns the dimension strings, validates the measures and appends the
    /// resulting tuple. Validation happens once, inside [`Table::append`].
    pub fn append_raw(&mut self, dims: &[&str], measures: Vec<f64>) -> Result<TupleId> {
        let ids = self.schema.intern_dims(dims)?;
        self.append(Tuple::new(ids, measures))
    }

    /// Appends a whole window of already-encoded tuples, amortising the
    /// per-row costs of [`Table::append`] across the batch:
    ///
    /// * every tuple is validated against the schema in one up-front pass
    ///   (the batch is all-or-nothing — an invalid tuple rejects the whole
    ///   window and leaves the table untouched, whereas a loop of `append`
    ///   would have kept the valid prefix);
    /// * the flat dimension and measure columns are extended column-wise
    ///   after a single `reserve` each;
    /// * each dimension's posting lists are updated by bucketing the window's
    ///   ids by value — a counting sort over the (dense, dictionary-assigned)
    ///   value ids — and splicing whole runs per distinct value: one map
    ///   lookup per *distinct* value instead of one per row, and no
    ///   comparison sort anywhere.
    ///
    /// Returns the contiguous id range assigned to the window (ids are
    /// assigned in window order, so the result is identical to a loop of
    /// [`Table::append`]). An empty batch is a no-op returning an empty
    /// range.
    pub fn append_batch(&mut self, tuples: Vec<Tuple>) -> Result<Range<TupleId>> {
        self.append_batch_slice(&tuples)
    }

    /// Borrowing form of [`Table::append_batch`]: the columnar layout copies
    /// every value into the flat columns anyway, so batch callers that still
    /// need the tuples afterwards (e.g. a monitor that appends the window
    /// first and then discovers each arrival) can keep ownership.
    pub fn append_batch_slice(&mut self, tuples: &[Tuple]) -> Result<Range<TupleId>> {
        let first = self.next_id();
        if tuples.is_empty() {
            return Ok(first..first);
        }
        // One validation pass before any mutation keeps the batch atomic.
        for tuple in tuples {
            tuple.validate(&self.schema)?;
        }
        let window = tuples.len();
        let old_dims_len = self.dims.len();
        self.dims.reserve(window * self.n_dims);
        self.measures.reserve(window * self.n_measures);
        for tuple in tuples {
            self.dims.extend_from_slice(tuple.dims());
            self.measures.extend_from_slice(tuple.measures());
        }
        // Posting maintenance. The window's dimension values are first
        // transposed into per-attribute contiguous columns (one sequential
        // pass over the freshly extended row-major region), then each
        // attribute is processed with sequential scans only:
        //
        // 1. find the window's value range for this attribute;
        // 2. counting-sort the window's ids into per-value buckets — stable,
        //    so each bucket stays ascending — O(window + range), no
        //    comparisons;
        // 3. splice each non-empty bucket into its posting list with a single
        //    map lookup and one `extend`.
        //
        // Dictionary-interned value ids are dense, so the range is almost
        // always tiny; raw tuples with pathological ids (sparse range much
        // larger than the window) fall back to a comparison sort of
        // (value, id) pairs, which needs no range-sized scratch.
        let mut cols: Vec<DimValueId> = vec![0; window * self.n_dims];
        for (k, row) in self.dims[old_dims_len..]
            .chunks_exact(self.n_dims.max(1))
            .enumerate()
        {
            for (a, &v) in row.iter().enumerate() {
                cols[a * window + k] = v;
            }
        }
        let mut counts: Vec<u32> = Vec::new();
        let mut bucketed: Vec<TupleId> = vec![0; window];
        for attr in 0..self.n_dims {
            let col = &cols[attr * window..(attr + 1) * window];
            let mut min = DimValueId::MAX;
            let mut max = DimValueId::MIN;
            for &v in col {
                min = min.min(v);
                max = max.max(v);
            }
            let range = (max - min) as usize + 1;
            if range <= 4 * window + 1024 {
                counts.clear();
                counts.resize(range, 0);
                for &v in col {
                    counts[(v - min) as usize] += 1;
                }
                // Prefix sums: counts[j] becomes bucket j's start cursor …
                let mut running = 0u32;
                for c in counts.iter_mut() {
                    let n = *c;
                    *c = running;
                    running += n;
                }
                // … the scatter advances each cursor, so afterwards counts[j]
                // is bucket j's end (= bucket j+1's start).
                for (k, &v) in col.iter().enumerate() {
                    let j = (v - min) as usize;
                    bucketed[counts[j] as usize] = first + k as TupleId;
                    counts[j] += 1;
                }
                let mut start = 0usize;
                for (j, &end) in counts.iter().enumerate() {
                    let end = end as usize;
                    if end > start {
                        let list = self.postings[attr]
                            .entry(min + j as DimValueId)
                            .or_insert_with(|| CompressedPostings::with_capacity(end - start));
                        list.extend_from_slice(&bucketed[start..end]);
                        start = end;
                    }
                }
            } else {
                let mut pairs: Vec<(DimValueId, TupleId)> = col
                    .iter()
                    .enumerate()
                    .map(|(k, &v)| (v, first + k as TupleId))
                    .collect();
                pairs.sort_unstable();
                let mut run_start = 0;
                while run_start < pairs.len() {
                    let value = pairs[run_start].0;
                    let run_end =
                        run_start + pairs[run_start..].partition_point(|&(v, _)| v == value);
                    let list = self.postings[attr].entry(value).or_default();
                    for &(_, id) in &pairs[run_start..run_end] {
                        list.push(id);
                    }
                    run_start = run_end;
                }
            }
        }
        self.len += window;
        Ok(first..self.next_id())
    }

    /// Batched form of [`Table::append_raw`]: interns every row's dimension
    /// strings, then appends the encoded window through
    /// [`Table::append_batch`]. Interning happens row by row before the
    /// batch validation pass, so a row that fails to intern leaves earlier
    /// rows' dictionary entries in place (exactly as a loop of `append_raw`
    /// would) but appends nothing.
    pub fn append_batch_raw<'a, I>(&mut self, rows: I) -> Result<Range<TupleId>>
    where
        I: IntoIterator<Item = (&'a [&'a str], Vec<f64>)>,
    {
        let rows = rows.into_iter();
        let mut tuples = Vec::with_capacity(rows.size_hint().0);
        for (dims, measures) in rows {
            let ids = self.schema.intern_dims(dims)?;
            tuples.push(Tuple::new(ids, measures));
        }
        self.append_batch(tuples)
    }

    /// Unconditional append of validated parts: extend the columns and the
    /// posting lists. Ids grow monotonically, so every posting list stays
    /// sorted by construction.
    fn push_row(&mut self, dims: Vec<DimValueId>, measures: Vec<f64>) -> TupleId {
        let id = self.next_id();
        for (attr, &value) in dims.iter().enumerate() {
            self.postings[attr].entry(value).or_default().push(id);
        }
        self.dims.extend_from_slice(&dims);
        self.measures.extend_from_slice(&measures);
        self.len += 1;
        id
    }

    /// A zero-copy view of the *live* row with the given id, if it exists.
    /// Retracted ids return `None`, exactly like ids never assigned.
    pub fn get(&self, id: TupleId) -> Option<TupleRef<'_>> {
        if self.is_live(id) {
            Some(self.view_of(id))
        } else {
            None
        }
    }

    /// A zero-copy view of the row with the given id; panics when the row is
    /// not physically present. Unlike [`Table::get`] this still reads
    /// tombstoned rows (ids in `[evicted, watermark)`) — retraction repair
    /// needs the expired points' coordinates until
    /// [`Table::compact_retracted`] drops them.
    pub fn tuple(&self, id: TupleId) -> TupleRef<'_> {
        let id = id as usize;
        assert!(
            id >= self.evicted && id < self.len,
            "tuple id {id} not physically present (evicted {}, len {})",
            self.evicted,
            self.len
        );
        self.row(id - self.evicted)
    }

    #[inline]
    fn row(&self, row: usize) -> TupleRef<'_> {
        TupleRef::new(
            &self.dims[row * self.n_dims..(row + 1) * self.n_dims],
            &self.measures[row * self.n_measures..(row + 1) * self.n_measures],
        )
    }

    /// View of the row holding tuple `id`, which must be physically present.
    #[inline]
    fn view_of(&self, id: TupleId) -> TupleRef<'_> {
        self.row(id as usize - self.evicted)
    }

    /// Iterates `(id, tuple)` pairs of the *live* rows in arrival order. The
    /// iterator knows its exact length, so collecting all rows allocates
    /// once.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (TupleId, TupleRef<'_>)> {
        (self.watermark..self.len).map(|id| (id as TupleId, self.view_of(id as TupleId)))
    }

    /// Iterates only the tuples that satisfy `constraint` — the context
    /// `σ_C(R)` of the paper — via the inverted index.
    ///
    /// For the top constraint this is a range iterator over every row; one
    /// bound attribute streams its posting list; several bound attributes run
    /// a k-way *galloping* intersection: the shortest list drives, and every
    /// candidate is probed in the other lists by binary-searching their block
    /// maxima and decoding only the one candidate block
    /// ([`PostingsCursor::seek`]), so the cost scales with the most selective
    /// bound value instead of the table size. A bound value that was never
    /// observed yields an empty context immediately.
    pub fn context<'a>(&'a self, constraint: &Constraint) -> ContextIter<'a> {
        debug_assert_eq!(constraint.num_dims(), self.n_dims);
        let mut lists: Vec<&'a CompressedPostings> = Vec::new();
        for (attr, &value) in constraint.values().iter().enumerate() {
            if value == UNBOUND {
                continue;
            }
            match self.postings.get(attr).and_then(|p| p.get(&value)) {
                Some(list) => lists.push(list),
                // A bound value never observed: the context is empty.
                None => return ContextIter::empty(self),
            }
        }
        if lists.is_empty() {
            return ContextIter::all(self);
        }
        // Driving the intersection from the shortest list bounds the number
        // of candidates by the most selective bound value. Dead ids are a
        // prefix (retraction is prefix-only), so seeking every cursor to the
        // watermark once skips all tombstones without per-id filtering —
        // `seek` peeks, leaving the first live id ready for `next`.
        lists.sort_unstable_by_key(|l| l.live_len());
        let watermark = self.watermark as TupleId;
        let cursor_at_watermark = |list: &'a CompressedPostings| {
            let mut cursor = list.cursor();
            if watermark > 0 {
                cursor.seek(watermark);
            }
            cursor
        };
        let state = if lists.len() == 1 {
            ContextState::Single {
                cursor: cursor_at_watermark(lists[0]),
                remaining: lists[0].live_len(),
            }
        } else {
            ContextState::Gallop {
                driver: cursor_at_watermark(lists[0]),
                others: lists[1..].iter().map(|l| cursor_at_watermark(l)).collect(),
            }
        };
        ContextIter { table: self, state }
    }

    /// Reference implementation of [`Table::context`]: a full scan filtered by
    /// [`Constraint::matches`]. Kept as the ground truth for the equivalence
    /// property tests and as the baseline leg of the `context_scan` vs
    /// `context_indexed` benchmark.
    pub fn context_scan<'a>(
        &'a self,
        constraint: &'a Constraint,
    ) -> impl Iterator<Item = (TupleId, TupleRef<'a>)> + 'a {
        self.iter().filter(move |(_, t)| constraint.matches(t))
    }

    /// Number of tuples satisfying `constraint` (`|σ_C(R)|`), computed through
    /// the inverted index. The incremental
    /// [`ContextCounter`](crate::ContextCounter) should still be preferred on
    /// hot paths that repeatedly ask about the same constraints.
    pub fn context_cardinality(&self, constraint: &Constraint) -> usize {
        self.context(constraint).count()
    }

    /// Upper bound on the rows the indexed [`Table::context`] will examine:
    /// the length of the shortest posting list among the constraint's bound
    /// values (`0` for a never-observed value, the table length for `⊤`).
    ///
    /// This is the work counter behind the sub-linearity assertions — a
    /// selective constraint must probe far fewer rows than a full scan. Its
    /// block-level companion is [`ContextIter::blocks_decoded`], which counts
    /// the sealed blocks an intersection actually decompressed.
    pub fn context_probe_bound(&self, constraint: &Constraint) -> usize {
        let mut bound = usize::MAX;
        for (attr, &value) in constraint.values().iter().enumerate() {
            if value == UNBOUND {
                continue;
            }
            let len = self
                .postings
                .get(attr)
                .and_then(|p| p.get(&value))
                .map_or(0, CompressedPostings::live_len);
            bound = bound.min(len);
        }
        if bound == usize::MAX {
            self.live_rows()
        } else {
            bound
        }
    }

    /// The compressed posting list of one `(dimension, value)` pair, if that
    /// value has ever been observed in that column. Its ids are ascending;
    /// use [`CompressedPostings::iter`] or
    /// [`CompressedPostings::to_vec`] to read them.
    pub fn posting_list(&self, attr: usize, value: DimValueId) -> Option<&CompressedPostings> {
        self.postings.get(attr).and_then(|p| p.get(&value))
    }

    /// Seals every posting list's tail where the packed form is smaller (see
    /// [`CompressedPostings::compact`]).
    ///
    /// A bulk-load finisher: appends deliberately leave sub-block tails raw
    /// so the representation stays a pure function of the id sequence, and
    /// this pass squeezes those tails once loading settles. Later appends
    /// simply start new tails.
    pub fn compact_postings(&mut self) {
        for map in &mut self.postings {
            for list in map.values_mut() {
                list.compact();
            }
        }
    }

    /// Aggregate footprint counters of the inverted index, for the memory
    /// benchmarks.
    pub fn posting_index_stats(&self) -> PostingIndexStats {
        let mut stats = PostingIndexStats::default();
        for map in &self.postings {
            for list in map.values() {
                stats.lists += 1;
                stats.ids += list.len();
                stats.sealed_blocks += list.num_blocks();
                stats.tail_ids += list.tail_len();
                stats.compressed_bytes += list.approx_heap_bytes();
                stats.uncompressed_bytes += list.uncompressed_bytes();
            }
        }
        stats
    }

    /// Approximate heap usage of the columnar storage (flat columns plus the
    /// inverted index) and the schema dictionaries, used by the memory
    /// experiment (Fig. 10a).
    ///
    /// Derived entirely from `size_of` so the estimate tracks the layout:
    /// * the dimension column holds `(len - evicted) * n_dims` value ids;
    /// * the measure column holds `(len - evicted) * n_measures` floats;
    /// * the tombstone bitmap holds one `u64` word per 64 physical dead rows
    ///   (zero until the first retraction);
    /// * every posting list is accounted at its compressed footprint — arena
    ///   words plus skip entries ([`CompressedPostings::approx_heap_bytes`]);
    /// * each distinct `(dimension, value)` pair costs one map entry (key +
    ///   [`CompressedPostings`] header).
    pub fn approx_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let physical = self.len - self.evicted;
        let columns = physical * self.n_dims * size_of::<DimValueId>()
            + physical * self.n_measures * size_of::<f64>();
        let posting_lists: usize = self
            .postings
            .iter()
            .flat_map(PostingMap::values)
            .map(CompressedPostings::approx_heap_bytes)
            .sum();
        let distinct_values: usize = self.postings.iter().map(PostingMap::len).sum();
        let posting_entries =
            distinct_values * (size_of::<DimValueId>() + size_of::<CompressedPostings>());
        columns
            + self.tombstones.len() * size_of::<u64>()
            + posting_lists
            + posting_entries
            + self.schema.approx_heap_bytes()
    }

    /// Crate-internal view of the table's primary state — schema, length,
    /// retraction bounds, flat columns and posting maps — for the snapshot
    /// codec in [`crate::wal`]. The tombstone bitmap is not part of the
    /// state: it is a pure function of `evicted` and `watermark`.
    #[allow(clippy::type_complexity)]
    pub(crate) fn state_parts(
        &self,
    ) -> (
        &Schema,
        usize,
        usize,
        usize,
        &[DimValueId],
        &[f64],
        &[PostingMap],
    ) {
        (
            &self.schema,
            self.len,
            self.evicted,
            self.watermark,
            &self.dims,
            &self.measures,
            &self.postings,
        )
    }

    /// Crate-internal inverse of [`Table::state_parts`], rebuilding a table
    /// from decoded snapshot state. Re-checks the cheap cross-structure
    /// invariants (column strides, posting arity and per-attribute id
    /// coverage) so a corrupted snapshot surfaces as a typed error; the
    /// per-list structure was already validated during posting decode.
    pub(crate) fn from_state_parts(
        schema: Schema,
        len: usize,
        evicted: usize,
        watermark: usize,
        dims: Vec<DimValueId>,
        measures: Vec<f64>,
        postings: Vec<PostingMap>,
    ) -> Result<Table> {
        let n_dims = schema.num_dimensions();
        let n_measures = schema.num_measures();
        let corrupt = |detail: String| SitFactError::Parse(format!("table snapshot: {detail}"));
        if evicted > watermark || watermark > len {
            return Err(corrupt(format!(
                "retraction bounds must nest: evicted {evicted} <= watermark {watermark} <= \
                 len {len}"
            )));
        }
        let physical = len - evicted;
        if dims.len() != physical * n_dims {
            return Err(corrupt(format!(
                "dims column holds {} ids, want {physical} × {n_dims}",
                dims.len()
            )));
        }
        if measures.len() != physical * n_measures {
            return Err(corrupt(format!(
                "measures column holds {} values, want {physical} × {n_measures}",
                measures.len()
            )));
        }
        if postings.len() != n_dims {
            return Err(corrupt(format!(
                "{} posting maps for {n_dims} dimension attributes",
                postings.len()
            )));
        }
        for (attr, map) in postings.iter().enumerate() {
            let live: usize = map.values().map(CompressedPostings::live_len).sum();
            if live != len - watermark {
                return Err(corrupt(format!(
                    "attr {attr}: posting lists hold {live} live ids in total, want {}",
                    len - watermark
                )));
            }
        }
        // The tombstone bitmap is derived state: every physical row below the
        // watermark is dead.
        let dead_rows = watermark - evicted;
        let mut tombstones = vec![0u64; dead_rows.div_ceil(64)];
        for row in 0..dead_rows {
            tombstones[row / 64] |= 1u64 << (row % 64);
        }
        Ok(Table {
            schema,
            n_dims,
            n_measures,
            len,
            evicted,
            watermark,
            tombstones,
            dims,
            measures,
            postings,
        })
    }

    /// Validation helper: returns an error when `id` does not exist.
    pub fn require(&self, id: TupleId) -> Result<TupleRef<'_>> {
        self.get(id)
            .ok_or_else(|| SitFactError::InvalidTuple(format!("tuple id {id} out of range")))
    }

    /// Deep structural self-check; see [`sitfact_core::audit::Audit`].
    #[cfg(any(test, debug_assertions, feature = "deep-audit"))]
    pub fn audit(&self) -> std::result::Result<(), sitfact_core::AuditViolation> {
        sitfact_core::Audit::check(self)
    }
}

/// Re-derives every piece of denormalized table state from the primary
/// columns: column strides, posting-list sortedness/dedup/exact coverage of
/// the dimension columns, measure validity and the heap-bytes formula.
#[cfg(any(test, debug_assertions, feature = "deep-audit"))]
impl sitfact_core::Audit for Table {
    fn check(&self) -> std::result::Result<(), sitfact_core::AuditViolation> {
        use sitfact_core::AuditViolation;
        let fail = |invariant: &'static str, detail: String| {
            Err(AuditViolation::new("Table", invariant, detail))
        };

        // Retraction bounds nest and the tombstone bitmap mirrors them
        // exactly: bit k set iff physical row k is below the watermark, with
        // the minimal word count (empty when nothing is tombstoned, so an
        // append-only table provably pays no bitmap bytes).
        if self.evicted > self.watermark || self.watermark > self.len {
            return fail(
                "retraction-bounds",
                format!(
                    "evicted {} <= watermark {} <= len {} must nest",
                    self.evicted, self.watermark, self.len
                ),
            );
        }
        let dead_rows = self.watermark - self.evicted;
        if self.tombstones.len() != dead_rows.div_ceil(64) {
            return fail(
                "tombstone-bitmap",
                format!(
                    "{} bitmap words for {dead_rows} tombstoned rows, want {}",
                    self.tombstones.len(),
                    dead_rows.div_ceil(64)
                ),
            );
        }
        for row in 0..self.tombstones.len() * 64 {
            let set = self.tombstones[row / 64] & (1u64 << (row % 64)) != 0;
            if set != (row < dead_rows) {
                return fail(
                    "tombstone-bitmap",
                    format!(
                        "physical row {row}: bitmap says dead={set}, watermark says \
                         dead={}",
                        row < dead_rows
                    ),
                );
            }
        }
        // Columns are flat row-major arrays: exactly one stride per
        // physically present row.
        let physical = self.len - self.evicted;
        if self.dims.len() != physical * self.n_dims {
            return fail(
                "column-stride",
                format!(
                    "dims column holds {} ids, want physical × n_dims = {} × {} = {}",
                    self.dims.len(),
                    physical,
                    self.n_dims,
                    physical * self.n_dims
                ),
            );
        }
        if self.measures.len() != physical * self.n_measures {
            return fail(
                "column-stride",
                format!(
                    "measures column holds {} values, want physical × n_measures = {} × {} = {}",
                    self.measures.len(),
                    physical,
                    self.n_measures,
                    physical * self.n_measures
                ),
            );
        }
        // Append-time validation rejects NaN measures; none may sneak in.
        if let Some(pos) = self.measures.iter().position(|m| m.is_nan()) {
            return fail(
                "measures-not-nan",
                format!(
                    "measures[{pos}] (row {}, attr {}) is NaN",
                    pos / self.n_measures.max(1),
                    pos % self.n_measures.max(1)
                ),
            );
        }

        // One posting map per dimension attribute.
        if self.postings.len() != self.n_dims {
            return fail(
                "posting-arity",
                format!(
                    "{} posting maps for {} dimension attributes",
                    self.postings.len(),
                    self.n_dims
                ),
            );
        }
        for (attr, map) in self.postings.iter().enumerate() {
            let mut live_total = 0usize;
            for (&value, list) in map {
                // Fully-dead lists are removed by the retraction maintenance
                // pass, so every surviving list carries at least one live id.
                if list.live_len() == 0 {
                    return fail(
                        "posting-list-nonempty",
                        format!(
                            "attr {attr} value {value} maps to a posting list with no \
                             live ids"
                        ),
                    );
                }
                // Delegate the compressed-layout invariants (block chaining,
                // skip-entry agreement, decode-roundtrip ascent) to the
                // list's own validator.
                if let Err(inner) = sitfact_core::Audit::check(list) {
                    return fail(
                        "posting-list-structure",
                        format!("attr {attr} value {value}: {}", inner.explain()),
                    );
                }
                // Every decoded id must be physically present and carry this
                // value in its column — combined with the per-attribute live
                // count below, the live suffix of the column is exactly
                // reconstructible from the posting lists. Dead ids below the
                // watermark must be exactly the ones the list's lazy-deletion
                // counter claims.
                let mut dead_ids = 0usize;
                for id in list.iter() {
                    let row = id as usize;
                    if row < self.evicted || row >= self.len {
                        return fail(
                            "posting-id-in-range",
                            format!(
                                "attr {attr} value {value}: id {id} outside physical range \
                                 [{}, {})",
                                self.evicted, self.len
                            ),
                        );
                    }
                    if row < self.watermark {
                        dead_ids += 1;
                    }
                    let stored = self.dims[(row - self.evicted) * self.n_dims + attr];
                    if stored != value {
                        return fail(
                            "posting-reconstructible",
                            format!(
                                "attr {attr}: posting list of value {value} contains row \
                                 {row}, whose column holds value {stored}"
                            ),
                        );
                    }
                }
                if dead_ids != list.dead_len() {
                    return fail(
                        "posting-dead-counter",
                        format!(
                            "attr {attr} value {value}: {dead_ids} stored ids below \
                             watermark {}, but the list counts {} dead",
                            self.watermark,
                            list.dead_len()
                        ),
                    );
                }
                live_total += list.live_len();
            }
            // Every live row appears in exactly one list per attribute (lists
            // are duplicate-free by strict ascent, and the value check above
            // pins each row to the single list its column names).
            if live_total != self.len - self.watermark {
                return fail(
                    "posting-coverage",
                    format!(
                        "attr {attr}: posting lists hold {live_total} live ids in total, \
                         want one per live row = {}",
                        self.len - self.watermark
                    ),
                );
            }
        }

        // The documented memory formula must track the actual layout.
        let distinct: usize = self.postings.iter().map(PostingMap::len).sum();
        let lists: usize = self
            .postings
            .iter()
            .flat_map(PostingMap::values)
            .map(CompressedPostings::approx_heap_bytes)
            .sum();
        let expect = physical * self.n_dims * std::mem::size_of::<DimValueId>()
            + physical * self.n_measures * std::mem::size_of::<f64>()
            + self.tombstones.len() * std::mem::size_of::<u64>()
            + lists
            + distinct
                * (std::mem::size_of::<DimValueId>() + std::mem::size_of::<CompressedPostings>())
            + self.schema.approx_heap_bytes();
        if self.approx_heap_bytes() != expect {
            return fail(
                "heap-bytes-formula",
                format!(
                    "approx_heap_bytes() = {}, independent recomputation = {expect}",
                    self.approx_heap_bytes()
                ),
            );
        }
        Ok(())
    }
}

/// Aggregate footprint of the inverted index, from
/// [`Table::posting_index_stats`]. All byte counters cover the posting lists
/// only — the columns, map-entry overhead and schema dictionaries are
/// reported by [`Table::approx_heap_bytes`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PostingIndexStats {
    /// Number of posting lists (= distinct `(dimension, value)` pairs).
    pub lists: usize,
    /// Total ids across all lists (= rows × dimensions).
    pub ids: usize,
    /// Sealed compressed blocks across all lists.
    pub sealed_blocks: usize,
    /// Ids still sitting in uncompressed tails.
    pub tail_ids: usize,
    /// Compressed heap bytes: arena words plus skip entries.
    pub compressed_bytes: usize,
    /// Bytes the same ids would occupy as plain `Vec<TupleId>` data.
    pub uncompressed_bytes: usize,
}

/// Iterator over a context `σ_C(R)`, yielding `(id, view)` pairs in arrival
/// order. Produced by [`Table::context`].
#[derive(Debug)]
pub struct ContextIter<'a> {
    table: &'a Table,
    state: ContextState<'a>,
}

#[derive(Debug)]
enum ContextState<'a> {
    /// Top constraint: every live id qualifies.
    All(Range<usize>),
    /// A bound value was never observed.
    Empty,
    /// One bound attribute: its posting list is streamed from the watermark
    /// on. `remaining` counts the live ids left (the cursor's own upper
    /// bound still includes the skipped dead prefix).
    Single {
        cursor: PostingsCursor<'a>,
        remaining: usize,
    },
    /// Galloping intersection of two or more posting lists: the shortest
    /// drives, the others (ascending by length) confirm candidates via
    /// [`PostingsCursor::seek`].
    Gallop {
        driver: PostingsCursor<'a>,
        others: Vec<PostingsCursor<'a>>,
    },
}

/// One leapfrog round: pull a candidate from the driving (shortest) list and
/// seek every other list to it. An overshoot in any list becomes the next
/// target for the driver itself — the driver gallops too — and the round
/// restarts; agreement across all lists yields the candidate.
fn gallop_next(
    driver: &mut PostingsCursor<'_>,
    others: &mut [PostingsCursor<'_>],
) -> Option<TupleId> {
    let mut candidate = driver.next()?;
    'candidates: loop {
        for other in others.iter_mut() {
            match other.seek(candidate)? {
                id if id == candidate => {}
                id => {
                    // Seek peeks: consume the driver's copy of the new
                    // candidate so the next round advances past it.
                    candidate = driver.seek(id)?;
                    let _ = driver.next();
                    continue 'candidates;
                }
            }
        }
        return Some(candidate);
    }
}

impl<'a> ContextIter<'a> {
    fn all(table: &'a Table) -> Self {
        ContextIter {
            table,
            state: ContextState::All(table.watermark..table.len),
        }
    }

    fn empty(table: &'a Table) -> Self {
        ContextIter {
            table,
            state: ContextState::Empty,
        }
    }

    /// Whether [`Iterator::size_hint`] is currently exact (lower bound equals
    /// upper bound): true for the top constraint (a plain row range), for a
    /// never-observed bound value (empty) and for a single bound attribute
    /// (the posting list itself). A multi-attribute intersection cannot know
    /// its length without running, so only its upper bound is tight — which
    /// is why `ContextIter` does not implement [`ExactSizeIterator`]
    /// wholesale.
    pub fn is_exact(&self) -> bool {
        let (lower, upper) = self.size_hint();
        upper == Some(lower)
    }

    /// Sealed posting blocks decompressed so far, across every cursor the
    /// iterator drives. The block-level work counter behind the
    /// sub-linearity assertions: a selective galloping intersection must
    /// decode far fewer blocks than the bound lists hold in total.
    pub fn blocks_decoded(&self) -> usize {
        match &self.state {
            ContextState::All(_) | ContextState::Empty => 0,
            ContextState::Single { cursor, .. } => cursor.blocks_decoded(),
            ContextState::Gallop { driver, others } => {
                driver.blocks_decoded()
                    + others
                        .iter()
                        .map(PostingsCursor::blocks_decoded)
                        .sum::<usize>()
            }
        }
    }
}

impl<'a> Iterator for ContextIter<'a> {
    type Item = (TupleId, TupleRef<'a>);

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.state {
            ContextState::All(range) => {
                let id = range.next()?;
                Some((id as TupleId, self.table.view_of(id as TupleId)))
            }
            ContextState::Empty => None,
            // Posting-list ids are in range by construction; `view_of` skips
            // the public accessor's bounds assertion on the hot path.
            ContextState::Single { cursor, remaining } => {
                let id = cursor.next()?;
                *remaining -= 1;
                Some((id, self.table.view_of(id)))
            }
            ContextState::Gallop { driver, others } => {
                let id = gallop_next(driver, others)?;
                Some((id, self.table.view_of(id)))
            }
        }
    }

    /// Internal iteration for whole-context drains (`sum`, `for_each`, every
    /// `fold`-based consumer): the single-list and top-constraint states walk
    /// the decoded buffers slice-wise instead of re-entering the state
    /// machine per id, which is what keeps streaming a compressed list
    /// competitive with iterating a raw `Vec<TupleId>`.
    fn fold<B, F>(self, init: B, mut f: F) -> B
    where
        F: FnMut(B, Self::Item) -> B,
    {
        let table = self.table;
        match self.state {
            ContextState::All(range) => range.fold(init, |acc, id| {
                f(acc, (id as TupleId, table.view_of(id as TupleId)))
            }),
            ContextState::Empty => init,
            ContextState::Single { cursor, .. } => {
                cursor.fold(init, |acc, id| f(acc, (id, table.view_of(id))))
            }
            ContextState::Gallop {
                mut driver,
                mut others,
            } => {
                let mut acc = init;
                while let Some(id) = gallop_next(&mut driver, &mut others) {
                    acc = f(acc, (id, table.view_of(id)));
                }
                acc
            }
        }
    }

    /// Tight bounds so collectors (`skyline_of`, `Vec::from_iter`) size their
    /// buffers up front instead of growing incrementally:
    ///
    /// * top constraint — the remaining row range, exact;
    /// * never-observed bound value — `(0, Some(0))`, exact;
    /// * one bound attribute — the remaining posting list is the context,
    ///   exact;
    /// * several bound attributes — at most the shortest list's remaining
    ///   ids, at least zero.
    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.state {
            ContextState::All(range) => range.size_hint(),
            ContextState::Empty => (0, Some(0)),
            ContextState::Single { remaining, .. } => {
                // Exactly the live ids left: the construction-time watermark
                // seek skipped the dead prefix without consuming it, so the
                // tracked count — not the cursor's upper bound — is exact.
                (*remaining, Some(*remaining))
            }
            ContextState::Gallop { driver, others } => {
                let shortest = others
                    .iter()
                    .map(PostingsCursor::remaining_upper_bound)
                    .fold(driver.remaining_upper_bound(), usize::min);
                (0, Some(shortest))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitfact_core::{Direction, SchemaBuilder, UNBOUND};

    fn schema() -> Schema {
        SchemaBuilder::new("gamelog")
            .dimension("player")
            .dimension("team")
            .measure("points", Direction::HigherIsBetter)
            .measure("assists", Direction::HigherIsBetter)
            .build()
            .unwrap()
    }

    #[test]
    fn append_assigns_sequential_ids() {
        let mut t = Table::new(schema());
        assert!(t.is_empty());
        let a = t
            .append_raw(&["Wesley", "Celtics"], vec![12.0, 13.0])
            .unwrap();
        let b = t
            .append_raw(&["Bogues", "Hornets"], vec![4.0, 12.0])
            .unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.next_id(), 2);
        assert_eq!(t.tuple(0).measures(), &[12.0, 13.0]);
        assert!(t.get(5).is_none());
        assert!(t.require(5).is_err());
        assert!(t.require(1).is_ok());
    }

    #[test]
    fn audit_passes_on_real_tables_and_catches_corrupted_postings() {
        let mut t = Table::new(schema());
        t.append_raw(&["Wesley", "Celtics"], vec![12.0, 13.0])
            .unwrap();
        t.append_raw(&["Bogues", "Hornets"], vec![4.0, 12.0])
            .unwrap();
        t.append_raw(&["Wesley", "Hornets"], vec![7.0, 9.0])
            .unwrap();
        assert!(t.audit().is_ok());

        // Corrupt one posting list behind the index's back: row 2's entry for
        // ("player" == "Wesley") now points at row 1, which holds "Bogues".
        let wesley = t.schema().dictionary(0).lookup("Wesley").unwrap();
        let list = t.postings[0].get_mut(&wesley).unwrap();
        assert_eq!(list.to_vec(), vec![0, 2]);
        let mut wrong = CompressedPostings::new();
        wrong.push(0);
        wrong.push(1);
        *list = wrong;
        let violation = t.audit().expect_err("corruption must be caught");
        let explained = violation.explain();
        assert!(
            explained.contains("Table") && explained.contains("posting"),
            "explain must name the structure and the broken invariant: {explained}"
        );
    }

    #[test]
    fn append_validates_against_schema() {
        let mut t = Table::new(schema());
        assert!(t.append_raw(&["Wesley"], vec![12.0, 13.0]).is_err());
        assert!(t
            .append_raw(&["Wesley", "Celtics"], vec![f64::NAN, 1.0])
            .is_err());
        let bad = Tuple::new(vec![0, 0, 0], vec![1.0, 2.0]);
        assert!(t.append(bad).is_err());
        assert_eq!(t.len(), 0);
        // A rejected append must leave no trace in the index either.
        assert!(t.posting_list(0, 0).is_none());
    }

    #[test]
    fn context_selection_matches_constraint() {
        let mut t = Table::new(schema());
        t.append_raw(&["Wesley", "Celtics"], vec![2.0, 5.0])
            .unwrap();
        t.append_raw(&["Wesley", "Celtics"], vec![3.0, 5.0])
            .unwrap();
        t.append_raw(&["Sherman", "Celtics"], vec![13.0, 13.0])
            .unwrap();
        t.append_raw(&["Strickland", "Blazers"], vec![27.0, 18.0])
            .unwrap();

        let celtics = Constraint::parse(t.schema(), &[("team", "Celtics")]).unwrap();
        assert_eq!(t.context_cardinality(&celtics), 3);
        let wesley_celtics =
            Constraint::parse(t.schema(), &[("player", "Wesley"), ("team", "Celtics")]).unwrap();
        assert_eq!(t.context_cardinality(&wesley_celtics), 2);
        let ids: Vec<TupleId> = t.context(&wesley_celtics).map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1]);
        // The top constraint selects everything.
        let top = Constraint::from_values(vec![UNBOUND, UNBOUND]);
        assert_eq!(t.context_cardinality(&top), 4);
        // A combination of observed values that never co-occur is empty.
        let wesley_blazers =
            Constraint::parse(t.schema(), &[("player", "Wesley"), ("team", "Blazers")]).unwrap();
        assert_eq!(t.context_cardinality(&wesley_blazers), 0);
    }

    #[test]
    fn context_agrees_with_scan() {
        let mut t = Table::new(schema());
        let players = ["A", "B", "C"];
        let teams = ["X", "Y"];
        for i in 0..60usize {
            t.append_raw(
                &[players[i % 3], teams[i % 2]],
                vec![i as f64, (i * 7 % 13) as f64],
            )
            .unwrap();
        }
        for bindings in [
            vec![("player", "A")],
            vec![("team", "Y")],
            vec![("player", "B"), ("team", "X")],
            vec![("player", "C"), ("team", "Y")],
        ] {
            let c = Constraint::parse(t.schema(), &bindings).unwrap();
            let indexed: Vec<TupleId> = t.context(&c).map(|(id, _)| id).collect();
            let scanned: Vec<TupleId> = t.context_scan(&c).map(|(id, _)| id).collect();
            assert_eq!(indexed, scanned, "constraint {bindings:?}");
        }
    }

    #[test]
    fn context_never_observed_value_is_empty() {
        let mut t = Table::new(schema());
        t.append_raw(&["Wesley", "Celtics"], vec![1.0, 1.0])
            .unwrap();
        // A raw constraint with a value id no dictionary ever handed out.
        let c = Constraint::from_values(vec![999, UNBOUND]);
        assert_eq!(t.context(&c).count(), 0);
        assert_eq!(t.context_probe_bound(&c), 0);
    }

    #[test]
    fn iteration_is_in_arrival_order() {
        let mut t = Table::new(schema());
        for i in 0..10 {
            t.append_raw(&["p", "t"], vec![i as f64, 0.0]).unwrap();
        }
        let ids: Vec<TupleId> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn posting_lists_are_sorted_and_complete() {
        let mut t = Table::new(schema());
        for i in 0..30usize {
            let player = if i % 2 == 0 { "Even" } else { "Odd" };
            t.append_raw(&[player, "T"], vec![i as f64, 0.0]).unwrap();
        }
        let even_id = t.schema().dictionary(0).lookup("Even").unwrap();
        let list = t.posting_list(0, even_id).unwrap();
        assert_eq!(list.len(), 15);
        assert!(list.to_vec().windows(2).all(|w| w[0] < w[1]));
        assert!(list.iter().all(|id| id % 2 == 0));
        let team_id = t.schema().dictionary(1).lookup("T").unwrap();
        assert_eq!(t.posting_list(1, team_id).unwrap().len(), 30);
        assert!(t.posting_list(0, 999).is_none());
    }

    #[test]
    fn probe_bound_is_sublinear_for_selective_constraints() {
        let mut t = Table::new(schema());
        // One rare player amid a crowd of common ones.
        for i in 0..500usize {
            let player = if i == 250 { "Rare" } else { "Common" };
            t.append_raw(&[player, "T"], vec![i as f64, 0.0]).unwrap();
        }
        let rare = Constraint::parse(t.schema(), &[("player", "Rare")]).unwrap();
        assert_eq!(t.context_probe_bound(&rare), 1);
        assert_eq!(t.context(&rare).count(), 1);
        let top = Constraint::top(2);
        assert_eq!(t.context_probe_bound(&top), 500);
        // A multi-attribute constraint is bounded by its most selective value.
        let rare_t = Constraint::parse(t.schema(), &[("player", "Rare"), ("team", "T")]).unwrap();
        assert_eq!(t.context_probe_bound(&rare_t), 1);
    }

    #[test]
    fn append_batch_equals_append_loop() {
        let rows: Vec<(&str, &str, f64)> = (0..40)
            .map(|i| {
                let player = ["A", "B", "C"][i % 3];
                let team = ["X", "Y"][i % 2];
                (player, team, i as f64)
            })
            .collect();
        let mut looped = Table::new(schema());
        let mut tuples = Vec::new();
        let mut batched = Table::new(schema());
        for &(p, t, m) in &rows {
            looped.append_raw(&[p, t], vec![m, 0.0]).unwrap();
            let ids = batched.schema_mut().intern_dims(&[p, t]).unwrap();
            tuples.push(Tuple::new(ids, vec![m, 0.0]));
        }
        let range = batched.append_batch(tuples).unwrap();
        assert_eq!(range, 0..40);
        assert_eq!(batched.len(), looped.len());
        assert_eq!(batched.approx_heap_bytes(), looped.approx_heap_bytes());
        for (a, b) in batched.iter().zip(looped.iter()) {
            assert_eq!(a, b);
        }
        // Posting lists match per (attribute, value).
        for attr in 0..2 {
            for value in 0..4u32 {
                assert_eq!(
                    batched.posting_list(attr, value),
                    looped.posting_list(attr, value),
                    "attr {attr} value {value}"
                );
            }
        }
        // A second batch continues the id sequence.
        let more = batched
            .append_batch(vec![Tuple::new(vec![0, 0], vec![1.0, 2.0])])
            .unwrap();
        assert_eq!(more, 40..41);
    }

    #[test]
    fn append_batch_is_atomic_on_invalid_tuples() {
        let mut t = Table::new(schema());
        t.append_raw(&["A", "X"], vec![1.0, 1.0]).unwrap();
        let window = vec![
            Tuple::new(vec![0, 0], vec![2.0, 2.0]),
            Tuple::new(vec![0, 0, 0], vec![3.0, 3.0]), // bad arity
        ];
        assert!(t.append_batch(window).is_err());
        // Nothing from the window landed — not even the valid first tuple.
        assert_eq!(t.len(), 1);
        assert_eq!(t.posting_list(0, 0).unwrap().to_vec(), vec![0]);
        // NaN measures are caught by the same up-front pass.
        assert!(t
            .append_batch(vec![Tuple::new(vec![0, 0], vec![f64::NAN, 1.0])])
            .is_err());
        assert_eq!(t.len(), 1);
        // An empty batch is a no-op with an empty range.
        assert_eq!(t.append_batch(Vec::new()).unwrap(), 1..1);
    }

    #[test]
    fn append_batch_raw_interns_and_appends() {
        let mut batched = Table::new(schema());
        let rows: [(&[&str], Vec<f64>); 3] = [
            (&["Wesley", "Celtics"], vec![12.0, 13.0]),
            (&["Bogues", "Hornets"], vec![4.0, 12.0]),
            (&["Wesley", "Celtics"], vec![3.0, 5.0]),
        ];
        let range = batched.append_batch_raw(rows).unwrap();
        assert_eq!(range, 0..3);
        let mut looped = Table::new(schema());
        looped
            .append_raw(&["Wesley", "Celtics"], vec![12.0, 13.0])
            .unwrap();
        looped
            .append_raw(&["Bogues", "Hornets"], vec![4.0, 12.0])
            .unwrap();
        looped
            .append_raw(&["Wesley", "Celtics"], vec![3.0, 5.0])
            .unwrap();
        assert_eq!(batched.approx_heap_bytes(), looped.approx_heap_bytes());
        for (a, b) in batched.iter().zip(looped.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn context_size_hint_is_tight() {
        let mut t = Table::new(schema());
        for i in 0..20usize {
            let player = ["A", "B"][i % 2];
            t.append_raw(&[player, "X"], vec![i as f64, 0.0]).unwrap();
        }
        // Top constraint: exact full length, shrinking as it advances.
        let top = Constraint::top(2);
        let mut it = t.context(&top);
        assert_eq!(it.size_hint(), (20, Some(20)));
        assert!(it.is_exact());
        it.next();
        assert_eq!(it.size_hint(), (19, Some(19)));
        // Single bound attribute: the posting list is the context — exact.
        let a = Constraint::parse(t.schema(), &[("player", "A")]).unwrap();
        let it = t.context(&a);
        assert_eq!(it.size_hint(), (10, Some(10)));
        assert!(it.is_exact());
        // Two bound attributes: upper bound is the shortest posting list.
        let ax = Constraint::parse(t.schema(), &[("player", "A"), ("team", "X")]).unwrap();
        let it = t.context(&ax);
        assert_eq!(it.size_hint(), (0, Some(10)));
        assert!(!it.is_exact());
        assert_eq!(it.count(), 10);
        // Never-observed value: exact zero.
        let it = t.context(&Constraint::from_values(vec![999, UNBOUND]));
        assert_eq!(it.size_hint(), (0, Some(0)));
        assert!(it.is_exact());
    }

    #[test]
    fn with_capacity_presizes_all_layers() {
        let t = Table::with_capacity(schema(), 100);
        assert!(t.dims.capacity() >= 200);
        assert!(t.measures.capacity() >= 200);
        for posting in &t.postings {
            assert!(posting.capacity() >= 100);
        }
        // The hint on the posting maps is capped: a huge row capacity must not
        // translate into a huge distinct-value reservation.
        let t = Table::with_capacity(schema(), 1 << 20);
        for posting in &t.postings {
            assert!(posting.capacity() < (1 << 12));
        }
    }

    #[test]
    fn heap_estimate_pinned_after_batched_load() {
        use std::mem::size_of;
        let mut t = Table::with_capacity(schema(), 64);
        let tuples: Vec<Tuple> = (0..64u32)
            .map(|i| Tuple::new(vec![i % 2, 0], vec![1.0, 2.0]))
            .collect();
        t.append_batch(tuples).unwrap();
        // Same formula as the per-row test: the batch path must not change
        // the accounted layout (64 rows × 2 dims/measures, 3 distinct
        // (attribute, value) pairs; every list is shorter than a block, so
        // all ids still sit raw in the tails).
        let expected = 64 * 2 * size_of::<DimValueId>()
            + 64 * 2 * size_of::<f64>()
            + 64 * 2 * size_of::<TupleId>()
            + 3 * (size_of::<DimValueId>() + size_of::<CompressedPostings>())
            + t.schema().approx_heap_bytes();
        assert_eq!(t.approx_heap_bytes(), expected);
    }

    #[test]
    fn heap_estimate_matches_layout_formula() {
        use std::mem::size_of;
        let mut t = Table::new(schema());
        let before = t.approx_heap_bytes();
        for i in 0..100usize {
            let player = if i % 2 == 0 { "p0" } else { "p1" };
            t.append_raw(&[player, "t"], vec![1.0, 2.0]).unwrap();
        }
        assert!(t.approx_heap_bytes() > before);
        // Pin the formula to the columnar layout: 100 rows × 2 dims × u32,
        // 100 rows × 2 measures × f64, 100 × 2 raw tail ids (every list is
        // shorter than a block), and 3 distinct (dimension, value) pairs of
        // map-entry overhead.
        let expected = 100 * 2 * size_of::<DimValueId>()
            + 100 * 2 * size_of::<f64>()
            + 100 * 2 * size_of::<TupleId>()
            + 3 * (size_of::<DimValueId>() + size_of::<CompressedPostings>())
            + t.schema().approx_heap_bytes();
        assert_eq!(t.approx_heap_bytes(), expected);
    }

    #[test]
    fn heap_estimate_pinned_after_sealed_blocks() {
        use std::mem::size_of;
        let mut t = Table::new(schema());
        for i in 0..300usize {
            t.append_raw(&["p", "t"], vec![i as f64, 0.0]).unwrap();
        }
        // Each attribute holds one list of 300 consecutive ids: two sealed
        // width-0 blocks (10-byte skip entries, no payload) plus 44 raw tail
        // ids — far below the 300 × 4 bytes of the raw layout.
        let per_list = 2 * 10 + 44 * size_of::<TupleId>();
        let expected = 300 * 2 * size_of::<DimValueId>()
            + 300 * 2 * size_of::<f64>()
            + 2 * per_list
            + 2 * (size_of::<DimValueId>() + size_of::<CompressedPostings>())
            + t.schema().approx_heap_bytes();
        assert_eq!(t.approx_heap_bytes(), expected);
        // Compacting seals the remaining tails into one more skip entry each
        // and keeps the deep audit green.
        t.compact_postings();
        let expected = 300 * 2 * size_of::<DimValueId>()
            + 300 * 2 * size_of::<f64>()
            + 2 * (3 * 10)
            + 2 * (size_of::<DimValueId>() + size_of::<CompressedPostings>())
            + t.schema().approx_heap_bytes();
        assert_eq!(t.approx_heap_bytes(), expected);
        let stats = t.posting_index_stats();
        assert_eq!(stats.lists, 2);
        assert_eq!(stats.ids, 600);
        assert_eq!(stats.sealed_blocks, 6);
        assert_eq!(stats.tail_ids, 0);
        assert_eq!(stats.compressed_bytes, 2 * 3 * 10);
        assert_eq!(stats.uncompressed_bytes, 600 * size_of::<TupleId>());
        t.audit().unwrap();
    }

    #[test]
    fn gallop_context_decodes_sublinearly() {
        // 2000 rows: 500 players × 4 appearances each, one team. The
        // player ∧ team query has a 4-id driver, so the galloping
        // intersection must decode only a handful of the team list's ~15
        // sealed blocks.
        let mut t = Table::new(schema());
        for i in 0..2000usize {
            t.append_raw(&[&format!("p{}", i % 500), "T"], vec![i as f64, 0.0])
                .unwrap();
        }
        let c = Constraint::parse(t.schema(), &[("player", "p0"), ("team", "T")]).unwrap();
        let mut it = t.context(&c);
        let ids: Vec<TupleId> = it.by_ref().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 500, 1000, 1500]);
        let team_id = t.schema().dictionary(1).lookup("T").unwrap();
        let team_blocks = t.posting_list(1, team_id).unwrap().num_blocks();
        assert_eq!(team_blocks, 15);
        assert!(
            it.blocks_decoded() <= 5,
            "a 4-candidate gallop decoded {} blocks (team list has {team_blocks})",
            it.blocks_decoded()
        );
        t.audit().unwrap();
    }

    fn windowed_table(rows: usize) -> Table {
        let mut t = Table::new(schema());
        for i in 0..rows {
            t.append_raw(
                &[
                    &format!("p{}", i % 5),
                    if i % 2 == 0 { "East" } else { "West" },
                ],
                vec![i as f64, (rows - i) as f64],
            )
            .unwrap();
        }
        t
    }

    #[test]
    fn retract_prefix_tombstones_without_reassigning_ids() {
        let mut t = windowed_table(10);
        assert_eq!(t.retract_prefix(4), 4);
        assert_eq!(t.len(), 10, "len counts every id ever assigned");
        assert_eq!(t.next_id(), 10);
        assert_eq!(t.live_rows(), 6);
        assert_eq!(t.watermark(), 4);
        assert_eq!(t.evicted_rows(), 0);
        assert_eq!(t.tombstone_rows(), 4);
        // Dead ids disappear from lookups and iteration, but stay readable
        // through `tuple` for retraction repair.
        assert!(t.get(3).is_none());
        assert!(t.get(4).is_some());
        assert_eq!(t.tuple(3).measures()[0], 3.0);
        let ids: Vec<TupleId> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![4, 5, 6, 7, 8, 9]);
        // Repeating or shrinking the prefix is a no-op.
        assert_eq!(t.retract_prefix(4), 0);
        assert_eq!(t.retract_prefix(2), 0);
        t.audit().unwrap();
    }

    #[test]
    fn contexts_skip_tombstones_and_match_the_scan_oracle() {
        let mut t = windowed_table(40);
        t.retract_prefix(17);
        let schema = t.schema().clone();
        for constraint in [
            Constraint::top(schema.num_dimensions()),
            Constraint::parse(&schema, &[("player", "p2")]).unwrap(),
            Constraint::parse(&schema, &[("team", "East")]).unwrap(),
            Constraint::parse(&schema, &[("player", "p1"), ("team", "West")]).unwrap(),
        ] {
            let indexed: Vec<TupleId> = t.context(&constraint).map(|(id, _)| id).collect();
            let scanned: Vec<TupleId> = t.context_scan(&constraint).map(|(id, _)| id).collect();
            assert_eq!(indexed, scanned, "constraint {constraint:?}");
            assert!(indexed.iter().all(|&id| id >= 17));
            assert_eq!(t.context_cardinality(&constraint), scanned.len());
            assert!(t.context_probe_bound(&constraint) >= scanned.len());
        }
        t.audit().unwrap();
    }

    #[test]
    fn context_size_hint_is_exact_for_single_lists_after_retraction() {
        let mut t = windowed_table(30);
        t.retract_prefix(11);
        let c = Constraint::parse(t.schema(), &[("team", "West")]).unwrap();
        let it = t.context(&c);
        let (lo, hi) = it.size_hint();
        let n = it.count();
        assert_eq!((lo, hi), (n, Some(n)));
    }

    #[test]
    fn compact_reclaims_columns_and_forces_posting_rebuilds() {
        let mut t = windowed_table(20);
        let before = t.approx_heap_bytes();
        t.retract_prefix(8);
        assert_eq!(t.compact_retracted(), 8);
        assert_eq!(t.evicted_rows(), 8);
        assert_eq!(t.tombstone_rows(), 0);
        assert_eq!(t.len(), 20);
        assert_eq!(t.live_rows(), 12);
        assert!(
            t.approx_heap_bytes() < before,
            "compaction must reclaim column memory"
        );
        // Every surviving posting id is physically present and live.
        for attr in 0..t.schema().num_dimensions() {
            for (_, list) in t.postings[attr].iter() {
                assert_eq!(list.dead_len(), 0, "compaction leaves no lazy dead ids");
                assert!(list.iter().all(|id| id >= 8));
            }
        }
        // Ids below the eviction horizon are gone for good; appends continue
        // from the monotone id space.
        assert!(t.get(7).is_none());
        let id = t.append_raw(&["p0", "East"], vec![99.0, 1.0]).unwrap();
        assert_eq!(id, 20);
        assert!(t.is_live(20));
        assert_eq!(t.compact_retracted(), 0);
        t.audit().unwrap();
    }

    #[test]
    fn fully_dead_posting_lists_are_removed_on_retraction() {
        let mut t = Table::new(schema());
        t.append_raw(&["gone", "East"], vec![1.0, 1.0]).unwrap();
        t.append_raw(&["kept", "East"], vec![2.0, 2.0]).unwrap();
        let gone = t.schema().dictionary(0).lookup("gone").unwrap();
        assert!(t.posting_list(0, gone).is_some());
        t.retract_prefix(1);
        assert!(
            t.posting_list(0, gone).is_none(),
            "a list with no live ids must leave the posting map"
        );
        let c = Constraint::parse(t.schema(), &[("player", "gone")]).unwrap();
        assert_eq!(t.context(&c).count(), 0);
        t.audit().unwrap();
    }

    #[test]
    fn append_only_tables_pay_no_tombstone_bytes() {
        let t = windowed_table(100);
        assert_eq!(t.tombstones.len(), 0, "bitmap is lazily allocated");
        let mut u = windowed_table(100);
        u.retract_prefix(100);
        assert_eq!(u.live_rows(), 0);
        assert_eq!(u.tombstones.len(), 100usize.div_ceil(64));
        u.compact_retracted();
        assert_eq!(u.tombstones.len(), 0);
        // Columns, bitmap and postings are all gone; only the schema (with
        // its interned dictionaries) still occupies heap.
        assert_eq!(u.approx_heap_bytes(), u.schema().approx_heap_bytes());
        u.audit().unwrap();
    }

    #[test]
    fn retraction_state_survives_the_snapshot_round_trip() {
        let mut t = windowed_table(25);
        t.retract_prefix(9);
        // Leave a mix of lazily-dead and rebuilt lists, then round-trip
        // through the snapshot parts.
        let (schema, len, evicted, watermark, dims, measures, postings) = t.state_parts();
        let restored = Table::from_state_parts(
            schema.clone(),
            len,
            evicted,
            watermark,
            dims.to_vec(),
            measures.to_vec(),
            postings.to_vec(),
        )
        .unwrap();
        assert_eq!(restored.len(), t.len());
        assert_eq!(restored.live_rows(), t.live_rows());
        assert_eq!(restored.watermark(), t.watermark());
        assert_eq!(restored.tombstone_rows(), t.tombstone_rows());
        let a: Vec<TupleId> = t.iter().map(|(id, _)| id).collect();
        let b: Vec<TupleId> = restored.iter().map(|(id, _)| id).collect();
        assert_eq!(a, b);
        restored.audit().unwrap();
    }
}
