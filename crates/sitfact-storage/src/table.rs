//! The append-only relation `R(D; M)`.

use sitfact_core::{Constraint, Result, Schema, SitFactError, Tuple, TupleId};

/// An append-only table of tuples under a fixed [`Schema`].
///
/// The table owns the schema (and therefore the dimension dictionaries), so
/// raw string records can be ingested with [`Table::append_raw`]; already
/// encoded tuples are appended with [`Table::append`]. Tuples are never
/// updated or deleted — the paper's model is an ever-growing relation whose
/// appends correspond to real-world events.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    tuples: Vec<Tuple>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: Schema) -> Self {
        Table {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Creates an empty table with pre-allocated capacity.
    pub fn with_capacity(schema: Schema, capacity: usize) -> Self {
        Table {
            schema,
            tuples: Vec::with_capacity(capacity),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Mutable access to the schema (needed to intern new dictionary values
    /// when tuples are produced outside [`Table::append_raw`]).
    pub fn schema_mut(&mut self) -> &mut Schema {
        &mut self.schema
    }

    /// Number of tuples currently stored.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The id that the *next* appended tuple will receive.
    pub fn next_id(&self) -> TupleId {
        self.tuples.len() as TupleId
    }

    /// Appends an already-encoded tuple after validating it against the
    /// schema. Returns the assigned [`TupleId`].
    pub fn append(&mut self, tuple: Tuple) -> Result<TupleId> {
        let tuple = Tuple::validated(
            tuple.dims().to_vec(),
            tuple.measures().to_vec(),
            &self.schema,
        )?;
        let id = self.next_id();
        self.tuples.push(tuple);
        Ok(id)
    }

    /// Interns the dimension strings, validates the measures and appends the
    /// resulting tuple.
    pub fn append_raw(&mut self, dims: &[&str], measures: Vec<f64>) -> Result<TupleId> {
        let ids = self.schema.intern_dims(dims)?;
        let tuple = Tuple::validated(ids, measures, &self.schema)?;
        let id = self.next_id();
        self.tuples.push(tuple);
        Ok(id)
    }

    /// The tuple with the given id, if it exists.
    pub fn get(&self, id: TupleId) -> Option<&Tuple> {
        self.tuples.get(id as usize)
    }

    /// The tuple with the given id; panics when out of range.
    pub fn tuple(&self, id: TupleId) -> &Tuple {
        &self.tuples[id as usize]
    }

    /// Iterates `(id, tuple)` pairs in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &Tuple)> {
        self.tuples
            .iter()
            .enumerate()
            .map(|(i, t)| (i as TupleId, t))
    }

    /// Iterates only the tuples that satisfy `constraint` — the context
    /// `σ_C(R)` of the paper.
    pub fn context<'a>(
        &'a self,
        constraint: &'a Constraint,
    ) -> impl Iterator<Item = (TupleId, &'a Tuple)> + 'a {
        self.iter().filter(move |(_, t)| constraint.matches(t))
    }

    /// Number of tuples satisfying `constraint` (`|σ_C(R)|`), computed by a
    /// scan. The incremental [`ContextCounter`](crate::ContextCounter) should
    /// be preferred on hot paths; this method is the ground truth for tests.
    pub fn context_cardinality(&self, constraint: &Constraint) -> usize {
        self.context(constraint).count()
    }

    /// Approximate heap usage of the stored tuples plus dictionaries, used by
    /// the memory experiment (Fig. 10a).
    pub fn approx_heap_bytes(&self) -> usize {
        let per_tuple = self.schema.num_dimensions() * std::mem::size_of::<u32>()
            + self.schema.num_measures() * std::mem::size_of::<f64>()
            + 2 * std::mem::size_of::<Vec<u8>>();
        self.tuples.len() * per_tuple + self.schema.approx_heap_bytes()
    }

    /// Validation helper: returns an error when `id` does not exist.
    pub fn require(&self, id: TupleId) -> Result<&Tuple> {
        self.get(id)
            .ok_or_else(|| SitFactError::InvalidTuple(format!("tuple id {id} out of range")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitfact_core::{Direction, SchemaBuilder, UNBOUND};

    fn schema() -> Schema {
        SchemaBuilder::new("gamelog")
            .dimension("player")
            .dimension("team")
            .measure("points", Direction::HigherIsBetter)
            .measure("assists", Direction::HigherIsBetter)
            .build()
            .unwrap()
    }

    #[test]
    fn append_assigns_sequential_ids() {
        let mut t = Table::new(schema());
        assert!(t.is_empty());
        let a = t
            .append_raw(&["Wesley", "Celtics"], vec![12.0, 13.0])
            .unwrap();
        let b = t
            .append_raw(&["Bogues", "Hornets"], vec![4.0, 12.0])
            .unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.next_id(), 2);
        assert_eq!(t.tuple(0).measures(), &[12.0, 13.0]);
        assert!(t.get(5).is_none());
        assert!(t.require(5).is_err());
        assert!(t.require(1).is_ok());
    }

    #[test]
    fn append_validates_against_schema() {
        let mut t = Table::new(schema());
        assert!(t.append_raw(&["Wesley"], vec![12.0, 13.0]).is_err());
        assert!(t
            .append_raw(&["Wesley", "Celtics"], vec![f64::NAN, 1.0])
            .is_err());
        let bad = Tuple::new(vec![0, 0, 0], vec![1.0, 2.0]);
        assert!(t.append(bad).is_err());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn context_selection_matches_constraint() {
        let mut t = Table::new(schema());
        t.append_raw(&["Wesley", "Celtics"], vec![2.0, 5.0])
            .unwrap();
        t.append_raw(&["Wesley", "Celtics"], vec![3.0, 5.0])
            .unwrap();
        t.append_raw(&["Sherman", "Celtics"], vec![13.0, 13.0])
            .unwrap();
        t.append_raw(&["Strickland", "Blazers"], vec![27.0, 18.0])
            .unwrap();

        let celtics = Constraint::parse(t.schema(), &[("team", "Celtics")]).unwrap();
        assert_eq!(t.context_cardinality(&celtics), 3);
        let wesley_celtics =
            Constraint::parse(t.schema(), &[("player", "Wesley"), ("team", "Celtics")]).unwrap();
        assert_eq!(t.context_cardinality(&wesley_celtics), 2);
        let ids: Vec<TupleId> = t.context(&wesley_celtics).map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1]);
        // The top constraint selects everything.
        let top = Constraint::from_values(vec![UNBOUND, UNBOUND]);
        assert_eq!(t.context_cardinality(&top), 4);
    }

    #[test]
    fn iteration_is_in_arrival_order() {
        let mut t = Table::new(schema());
        for i in 0..10 {
            t.append_raw(&["p", "t"], vec![i as f64, 0.0]).unwrap();
        }
        let ids: Vec<TupleId> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn heap_estimate_grows_with_rows() {
        let mut t = Table::new(schema());
        let before = t.approx_heap_bytes();
        for _ in 0..100 {
            t.append_raw(&["p", "t"], vec![1.0, 2.0]).unwrap();
        }
        assert!(t.approx_heap_bytes() > before);
    }
}
