//! The append-only relation `R(D; M)`, stored column-wise with an inverted
//! context index.
//!
//! ## Storage layout
//!
//! The table is a struct-of-arrays: instead of one heap-allocated [`Tuple`]
//! per row (two allocations each), all dimension values live in a single flat
//! `Vec<DimValueId>` and all measure values in a single flat `Vec<f64>`, both
//! row-major with fixed stride. Row access is pure slicing — [`Table::tuple`]
//! hands out a zero-copy [`TupleRef`] — and an append is amortised O(1) with
//! no per-row allocation.
//!
//! On top of the columns the table maintains, per dimension attribute, an
//! inverted index of posting lists: `DimValueId → Vec<TupleId>`, each list
//! sorted ascending because tuple ids are assigned in arrival order. The
//! context `σ_C(R)` of a conjunctive constraint is then the intersection of
//! the posting lists of its bound values — a k-way sorted-list intersection
//! whose cost is governed by the *smallest* list, not the table size. The
//! top constraint `⊤` stays a plain range iterator over all rows.

use sitfact_core::{
    Constraint, DimValueId, FxHashMap, Result, Schema, SitFactError, Tuple, TupleId, TupleRef,
    UNBOUND,
};
use std::ops::Range;

/// Posting lists of one dimension attribute: every value id observed in that
/// column maps to the sorted ids of the tuples carrying it.
type PostingMap = FxHashMap<DimValueId, Vec<TupleId>>;

/// An append-only table of tuples under a fixed [`Schema`], stored as flat
/// columns plus per-dimension posting lists.
///
/// The table owns the schema (and therefore the dimension dictionaries), so
/// raw string records can be ingested with [`Table::append_raw`]; already
/// encoded tuples are appended with [`Table::append`]. Tuples are never
/// updated or deleted — the paper's model is an ever-growing relation whose
/// appends correspond to real-world events.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    n_dims: usize,
    n_measures: usize,
    len: usize,
    /// All dimension values, row-major (`len * n_dims` entries).
    dims: Vec<DimValueId>,
    /// All measure values, row-major (`len * n_measures` entries).
    measures: Vec<f64>,
    /// One posting map per dimension attribute.
    postings: Vec<PostingMap>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: Schema) -> Self {
        Self::with_capacity(schema, 0)
    }

    /// Creates an empty table with pre-allocated capacity (in rows).
    pub fn with_capacity(schema: Schema, capacity: usize) -> Self {
        let n_dims = schema.num_dimensions();
        let n_measures = schema.num_measures();
        Table {
            schema,
            n_dims,
            n_measures,
            len: 0,
            dims: Vec::with_capacity(capacity * n_dims),
            measures: Vec::with_capacity(capacity * n_measures),
            postings: vec![PostingMap::default(); n_dims],
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Mutable access to the schema (needed to intern new dictionary values
    /// when tuples are produced outside [`Table::append_raw`]).
    pub fn schema_mut(&mut self) -> &mut Schema {
        &mut self.schema
    }

    /// Number of tuples currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The id that the *next* appended tuple will receive.
    pub fn next_id(&self) -> TupleId {
        self.len as TupleId
    }

    /// Appends an already-encoded tuple after validating it against the
    /// schema. The tuple is consumed — its vectors are drained into the
    /// columns without re-cloning. Returns the assigned [`TupleId`].
    pub fn append(&mut self, tuple: Tuple) -> Result<TupleId> {
        tuple.validate(&self.schema)?;
        let (dims, measures) = tuple.into_parts();
        Ok(self.push_row(dims, measures))
    }

    /// Interns the dimension strings, validates the measures and appends the
    /// resulting tuple. Validation happens once, inside [`Table::append`].
    pub fn append_raw(&mut self, dims: &[&str], measures: Vec<f64>) -> Result<TupleId> {
        let ids = self.schema.intern_dims(dims)?;
        self.append(Tuple::new(ids, measures))
    }

    /// Unconditional append of validated parts: extend the columns and the
    /// posting lists. Ids grow monotonically, so every posting list stays
    /// sorted by construction.
    fn push_row(&mut self, dims: Vec<DimValueId>, measures: Vec<f64>) -> TupleId {
        let id = self.next_id();
        for (attr, &value) in dims.iter().enumerate() {
            self.postings[attr].entry(value).or_default().push(id);
        }
        self.dims.extend_from_slice(&dims);
        self.measures.extend_from_slice(&measures);
        self.len += 1;
        id
    }

    /// A zero-copy view of the row with the given id, if it exists.
    pub fn get(&self, id: TupleId) -> Option<TupleRef<'_>> {
        let row = id as usize;
        if row < self.len {
            Some(self.row(row))
        } else {
            None
        }
    }

    /// A zero-copy view of the row with the given id; panics when out of
    /// range.
    pub fn tuple(&self, id: TupleId) -> TupleRef<'_> {
        let row = id as usize;
        assert!(
            row < self.len,
            "tuple id {id} out of range (len {})",
            self.len
        );
        self.row(row)
    }

    #[inline]
    fn row(&self, row: usize) -> TupleRef<'_> {
        TupleRef::new(
            &self.dims[row * self.n_dims..(row + 1) * self.n_dims],
            &self.measures[row * self.n_measures..(row + 1) * self.n_measures],
        )
    }

    /// Iterates `(id, tuple)` pairs in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, TupleRef<'_>)> {
        (0..self.len).map(|row| (row as TupleId, self.row(row)))
    }

    /// Iterates only the tuples that satisfy `constraint` — the context
    /// `σ_C(R)` of the paper — via the inverted index.
    ///
    /// For the top constraint this is a range iterator over every row; for any
    /// other constraint it is a k-way intersection of the sorted posting lists
    /// of the bound values, so the cost scales with the most selective bound
    /// value instead of the table size. A bound value that was never observed
    /// yields an empty context immediately.
    pub fn context<'a>(&'a self, constraint: &Constraint) -> ContextIter<'a> {
        debug_assert_eq!(constraint.num_dims(), self.n_dims);
        let mut lists: Vec<&'a [TupleId]> = Vec::new();
        for (attr, &value) in constraint.values().iter().enumerate() {
            if value == UNBOUND {
                continue;
            }
            match self.postings.get(attr).and_then(|p| p.get(&value)) {
                Some(list) => lists.push(list.as_slice()),
                // A bound value never observed: the context is empty.
                None => return ContextIter::empty(self),
            }
        }
        if lists.is_empty() {
            return ContextIter::all(self);
        }
        // Driving the intersection from the shortest list bounds the number
        // of candidates by the most selective bound value.
        lists.sort_unstable_by_key(|l| l.len());
        ContextIter {
            table: self,
            state: ContextState::Intersect(lists),
        }
    }

    /// Reference implementation of [`Table::context`]: a full scan filtered by
    /// [`Constraint::matches`]. Kept as the ground truth for the equivalence
    /// property tests and as the baseline leg of the `context_scan` vs
    /// `context_indexed` benchmark.
    pub fn context_scan<'a>(
        &'a self,
        constraint: &'a Constraint,
    ) -> impl Iterator<Item = (TupleId, TupleRef<'a>)> + 'a {
        self.iter().filter(move |(_, t)| constraint.matches(t))
    }

    /// Number of tuples satisfying `constraint` (`|σ_C(R)|`), computed through
    /// the inverted index. The incremental
    /// [`ContextCounter`](crate::ContextCounter) should still be preferred on
    /// hot paths that repeatedly ask about the same constraints.
    pub fn context_cardinality(&self, constraint: &Constraint) -> usize {
        self.context(constraint).count()
    }

    /// Upper bound on the rows the indexed [`Table::context`] will examine:
    /// the length of the shortest posting list among the constraint's bound
    /// values (`0` for a never-observed value, the table length for `⊤`).
    ///
    /// This is the work counter behind the sub-linearity assertions — a
    /// selective constraint must probe far fewer rows than a full scan.
    pub fn context_probe_bound(&self, constraint: &Constraint) -> usize {
        let mut bound = usize::MAX;
        for (attr, &value) in constraint.values().iter().enumerate() {
            if value == UNBOUND {
                continue;
            }
            let len = self
                .postings
                .get(attr)
                .and_then(|p| p.get(&value))
                .map_or(0, Vec::len);
            bound = bound.min(len);
        }
        if bound == usize::MAX {
            self.len
        } else {
            bound
        }
    }

    /// The sorted posting list of one `(dimension, value)` pair, if that value
    /// has ever been observed in that column.
    pub fn posting_list(&self, attr: usize, value: DimValueId) -> Option<&[TupleId]> {
        self.postings
            .get(attr)
            .and_then(|p| p.get(&value))
            .map(Vec::as_slice)
    }

    /// Approximate heap usage of the columnar storage (flat columns plus the
    /// inverted index) and the schema dictionaries, used by the memory
    /// experiment (Fig. 10a).
    ///
    /// Derived entirely from `size_of` so the estimate tracks the layout:
    /// * the dimension column holds `len * n_dims` value ids;
    /// * the measure column holds `len * n_measures` floats;
    /// * every row id appears in exactly one posting list per dimension
    ///   (`len * n_dims` tuple ids in total);
    /// * each distinct `(dimension, value)` pair costs one map entry (key +
    ///   `Vec` header).
    pub fn approx_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let columns = self.len * self.n_dims * size_of::<DimValueId>()
            + self.len * self.n_measures * size_of::<f64>();
        let posting_ids = self.len * self.n_dims * size_of::<TupleId>();
        let distinct_values: usize = self.postings.iter().map(PostingMap::len).sum();
        let posting_entries =
            distinct_values * (size_of::<DimValueId>() + size_of::<Vec<TupleId>>());
        columns + posting_ids + posting_entries + self.schema.approx_heap_bytes()
    }

    /// Validation helper: returns an error when `id` does not exist.
    pub fn require(&self, id: TupleId) -> Result<TupleRef<'_>> {
        self.get(id)
            .ok_or_else(|| SitFactError::InvalidTuple(format!("tuple id {id} out of range")))
    }
}

/// Iterator over a context `σ_C(R)`, yielding `(id, view)` pairs in arrival
/// order. Produced by [`Table::context`].
#[derive(Debug)]
pub struct ContextIter<'a> {
    table: &'a Table,
    state: ContextState<'a>,
}

#[derive(Debug)]
enum ContextState<'a> {
    /// Top constraint: every row qualifies.
    All(Range<usize>),
    /// Intersection of the bound values' posting lists, shortest first. The
    /// slices shrink from the front as the intersection advances.
    Intersect(Vec<&'a [TupleId]>),
    /// A bound value was never observed.
    Empty,
}

impl<'a> ContextIter<'a> {
    fn all(table: &'a Table) -> Self {
        ContextIter {
            table,
            state: ContextState::All(0..table.len),
        }
    }

    fn empty(table: &'a Table) -> Self {
        ContextIter {
            table,
            state: ContextState::Empty,
        }
    }
}

impl<'a> Iterator for ContextIter<'a> {
    type Item = (TupleId, TupleRef<'a>);

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.state {
            ContextState::All(range) => {
                let row = range.next()?;
                Some((row as TupleId, self.table.row(row)))
            }
            ContextState::Empty => None,
            ContextState::Intersect(lists) => 'candidates: loop {
                let (first, rest) = lists.split_first_mut()?;
                let (&candidate, remainder) = first.split_first()?;
                *first = remainder;
                for list in rest.iter_mut() {
                    // Binary-search forward to the first id >= candidate; the
                    // slices only ever shrink, so total work per list is
                    // O(|candidates| * log |list|).
                    let skip = list.partition_point(|&id| id < candidate);
                    *list = &list[skip..];
                    match list.first() {
                        Some(&id) if id == candidate => {}
                        Some(_) => continue 'candidates,
                        None => {
                            self.state = ContextState::Empty;
                            return None;
                        }
                    }
                }
                // Posting-list ids are in range by construction; skip the
                // public accessor's bounds assertion on the hot path.
                return Some((candidate, self.table.row(candidate as usize)));
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitfact_core::{Direction, SchemaBuilder, UNBOUND};

    fn schema() -> Schema {
        SchemaBuilder::new("gamelog")
            .dimension("player")
            .dimension("team")
            .measure("points", Direction::HigherIsBetter)
            .measure("assists", Direction::HigherIsBetter)
            .build()
            .unwrap()
    }

    #[test]
    fn append_assigns_sequential_ids() {
        let mut t = Table::new(schema());
        assert!(t.is_empty());
        let a = t
            .append_raw(&["Wesley", "Celtics"], vec![12.0, 13.0])
            .unwrap();
        let b = t
            .append_raw(&["Bogues", "Hornets"], vec![4.0, 12.0])
            .unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.next_id(), 2);
        assert_eq!(t.tuple(0).measures(), &[12.0, 13.0]);
        assert!(t.get(5).is_none());
        assert!(t.require(5).is_err());
        assert!(t.require(1).is_ok());
    }

    #[test]
    fn append_validates_against_schema() {
        let mut t = Table::new(schema());
        assert!(t.append_raw(&["Wesley"], vec![12.0, 13.0]).is_err());
        assert!(t
            .append_raw(&["Wesley", "Celtics"], vec![f64::NAN, 1.0])
            .is_err());
        let bad = Tuple::new(vec![0, 0, 0], vec![1.0, 2.0]);
        assert!(t.append(bad).is_err());
        assert_eq!(t.len(), 0);
        // A rejected append must leave no trace in the index either.
        assert!(t.posting_list(0, 0).is_none());
    }

    #[test]
    fn context_selection_matches_constraint() {
        let mut t = Table::new(schema());
        t.append_raw(&["Wesley", "Celtics"], vec![2.0, 5.0])
            .unwrap();
        t.append_raw(&["Wesley", "Celtics"], vec![3.0, 5.0])
            .unwrap();
        t.append_raw(&["Sherman", "Celtics"], vec![13.0, 13.0])
            .unwrap();
        t.append_raw(&["Strickland", "Blazers"], vec![27.0, 18.0])
            .unwrap();

        let celtics = Constraint::parse(t.schema(), &[("team", "Celtics")]).unwrap();
        assert_eq!(t.context_cardinality(&celtics), 3);
        let wesley_celtics =
            Constraint::parse(t.schema(), &[("player", "Wesley"), ("team", "Celtics")]).unwrap();
        assert_eq!(t.context_cardinality(&wesley_celtics), 2);
        let ids: Vec<TupleId> = t.context(&wesley_celtics).map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1]);
        // The top constraint selects everything.
        let top = Constraint::from_values(vec![UNBOUND, UNBOUND]);
        assert_eq!(t.context_cardinality(&top), 4);
        // A combination of observed values that never co-occur is empty.
        let wesley_blazers =
            Constraint::parse(t.schema(), &[("player", "Wesley"), ("team", "Blazers")]).unwrap();
        assert_eq!(t.context_cardinality(&wesley_blazers), 0);
    }

    #[test]
    fn context_agrees_with_scan() {
        let mut t = Table::new(schema());
        let players = ["A", "B", "C"];
        let teams = ["X", "Y"];
        for i in 0..60usize {
            t.append_raw(
                &[players[i % 3], teams[i % 2]],
                vec![i as f64, (i * 7 % 13) as f64],
            )
            .unwrap();
        }
        for bindings in [
            vec![("player", "A")],
            vec![("team", "Y")],
            vec![("player", "B"), ("team", "X")],
            vec![("player", "C"), ("team", "Y")],
        ] {
            let c = Constraint::parse(t.schema(), &bindings).unwrap();
            let indexed: Vec<TupleId> = t.context(&c).map(|(id, _)| id).collect();
            let scanned: Vec<TupleId> = t.context_scan(&c).map(|(id, _)| id).collect();
            assert_eq!(indexed, scanned, "constraint {bindings:?}");
        }
    }

    #[test]
    fn context_never_observed_value_is_empty() {
        let mut t = Table::new(schema());
        t.append_raw(&["Wesley", "Celtics"], vec![1.0, 1.0])
            .unwrap();
        // A raw constraint with a value id no dictionary ever handed out.
        let c = Constraint::from_values(vec![999, UNBOUND]);
        assert_eq!(t.context(&c).count(), 0);
        assert_eq!(t.context_probe_bound(&c), 0);
    }

    #[test]
    fn iteration_is_in_arrival_order() {
        let mut t = Table::new(schema());
        for i in 0..10 {
            t.append_raw(&["p", "t"], vec![i as f64, 0.0]).unwrap();
        }
        let ids: Vec<TupleId> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn posting_lists_are_sorted_and_complete() {
        let mut t = Table::new(schema());
        for i in 0..30usize {
            let player = if i % 2 == 0 { "Even" } else { "Odd" };
            t.append_raw(&[player, "T"], vec![i as f64, 0.0]).unwrap();
        }
        let even_id = t.schema().dictionary(0).lookup("Even").unwrap();
        let list = t.posting_list(0, even_id).unwrap();
        assert_eq!(list.len(), 15);
        assert!(list.windows(2).all(|w| w[0] < w[1]));
        assert!(list.iter().all(|&id| id % 2 == 0));
        let team_id = t.schema().dictionary(1).lookup("T").unwrap();
        assert_eq!(t.posting_list(1, team_id).unwrap().len(), 30);
        assert!(t.posting_list(0, 999).is_none());
    }

    #[test]
    fn probe_bound_is_sublinear_for_selective_constraints() {
        let mut t = Table::new(schema());
        // One rare player amid a crowd of common ones.
        for i in 0..500usize {
            let player = if i == 250 { "Rare" } else { "Common" };
            t.append_raw(&[player, "T"], vec![i as f64, 0.0]).unwrap();
        }
        let rare = Constraint::parse(t.schema(), &[("player", "Rare")]).unwrap();
        assert_eq!(t.context_probe_bound(&rare), 1);
        assert_eq!(t.context(&rare).count(), 1);
        let top = Constraint::top(2);
        assert_eq!(t.context_probe_bound(&top), 500);
        // A multi-attribute constraint is bounded by its most selective value.
        let rare_t = Constraint::parse(t.schema(), &[("player", "Rare"), ("team", "T")]).unwrap();
        assert_eq!(t.context_probe_bound(&rare_t), 1);
    }

    #[test]
    fn heap_estimate_matches_layout_formula() {
        use std::mem::size_of;
        let mut t = Table::new(schema());
        let before = t.approx_heap_bytes();
        for i in 0..100usize {
            let player = if i % 2 == 0 { "p0" } else { "p1" };
            t.append_raw(&[player, "t"], vec![1.0, 2.0]).unwrap();
        }
        assert!(t.approx_heap_bytes() > before);
        // Pin the formula to the columnar layout: 100 rows × 2 dims × u32,
        // 100 rows × 2 measures × f64, 100 × 2 posting ids, and 3 distinct
        // (dimension, value) pairs of map-entry overhead.
        let expected = 100 * 2 * size_of::<DimValueId>()
            + 100 * 2 * size_of::<f64>()
            + 100 * 2 * size_of::<TupleId>()
            + 3 * (size_of::<DimValueId>() + size_of::<Vec<TupleId>>())
            + t.schema().approx_heap_bytes();
        assert_eq!(t.approx_heap_bytes(), expected);
    }
}
