//! File-backed skyline store (the paper's Section VI-C).
//!
//! Every non-empty `µ_{C,M}` cell is stored as one small binary file. When an
//! algorithm visits a cell, the file is read into an in-memory buffer;
//! insertions and deletions are applied to the buffer; when the algorithm
//! moves on to another cell (or the store is flushed), a dirty buffer is
//! written back, overwriting the file. The store keeps a lightweight index of
//! non-empty cells so that visiting an empty cell costs no I/O at all — the
//! property that makes `FSTopDown` beat `FSBottomUp` in the paper.

use crate::stats::StoreStats;
use crate::store::{SkylineStore, StoredEntry};
use bytes::{Buf, BufMut, BytesMut};
use sitfact_core::{Constraint, FxHashMap, SubspaceMask, TupleId, UNBOUND};
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CellKey {
    constraint: Constraint,
    subspace: SubspaceMask,
}

#[derive(Debug)]
struct CellBuffer {
    key: CellKey,
    entries: Vec<StoredEntry>,
    dirty: bool,
}

/// File-backed implementation of [`SkylineStore`].
#[derive(Debug)]
pub struct FileSkylineStore {
    dir: PathBuf,
    /// Entry counts of the non-empty cells (the index the paper implicitly
    /// maintains to know which pairs have a file at all).
    index: FxHashMap<CellKey, u32>,
    /// Single-cell write-back buffer: the cell currently being processed.
    buffer: Option<CellBuffer>,
    file_reads: u64,
    file_writes: u64,
    bytes_on_disk: u64,
}

impl FileSkylineStore {
    /// Creates a store rooted at `dir` (created if missing; existing cell
    /// files from a previous run are ignored).
    pub fn new(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(FileSkylineStore {
            dir,
            index: FxHashMap::default(),
            buffer: None,
            file_reads: 0,
            file_writes: 0,
            bytes_on_disk: 0,
        })
    }

    /// Directory holding the cell files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn key(constraint: &Constraint, subspace: SubspaceMask) -> CellKey {
        CellKey {
            constraint: constraint.clone(),
            subspace,
        }
    }

    fn file_name(key: &CellKey) -> String {
        let mut name = String::with_capacity(key.constraint.num_dims() * 9 + 12);
        for &v in key.constraint.values() {
            if v == UNBOUND {
                name.push('x');
            } else {
                name.push_str(&format!("{v:x}"));
            }
            name.push('-');
        }
        name.push_str(&format!("m{:x}.sky", key.subspace.0));
        name
    }

    fn path_for(&self, key: &CellKey) -> PathBuf {
        self.dir.join(Self::file_name(key))
    }

    fn encode(entries: &[StoredEntry]) -> BytesMut {
        let measures = entries.first().map_or(0, |e| e.measures.len());
        let mut buf = BytesMut::with_capacity(8 + entries.len() * (4 + measures * 8));
        buf.put_u32_le(entries.len() as u32);
        buf.put_u32_le(measures as u32);
        for e in entries {
            buf.put_u32_le(e.id);
            for &m in e.measures.iter() {
                buf.put_f64_le(m);
            }
        }
        buf
    }

    fn decode(mut data: &[u8]) -> Vec<StoredEntry> {
        if data.len() < 8 {
            return Vec::new();
        }
        let count = data.get_u32_le() as usize;
        let measures = data.get_u32_le() as usize;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            if data.remaining() < 4 + measures * 8 {
                break;
            }
            let id = data.get_u32_le();
            let mut values = Vec::with_capacity(measures);
            for _ in 0..measures {
                values.push(data.get_f64_le());
            }
            out.push(StoredEntry {
                id,
                measures: values.into(),
            });
        }
        out
    }

    /// Loads a cell into the write-back buffer, flushing any previously
    /// buffered cell first.
    fn load(&mut self, key: CellKey) {
        if let Some(buffer) = &self.buffer {
            if buffer.key == key {
                return;
            }
        }
        self.flush_buffer();
        let entries = if self.index.contains_key(&key) {
            let path = self.path_for(&key);
            match fs::File::open(&path) {
                Ok(mut file) => {
                    let mut data = Vec::new();
                    if file.read_to_end(&mut data).is_ok() {
                        self.file_reads += 1;
                        Self::decode(&data)
                    } else {
                        Vec::new()
                    }
                }
                Err(_) => Vec::new(),
            }
        } else {
            Vec::new()
        };
        self.buffer = Some(CellBuffer {
            key,
            entries,
            dirty: false,
        });
    }

    fn flush_buffer(&mut self) {
        let Some(buffer) = self.buffer.take() else {
            return;
        };
        if !buffer.dirty {
            return;
        }
        let path = self.path_for(&buffer.key);
        if buffer.entries.is_empty() {
            if self.index.remove(&buffer.key).is_some() {
                let _ = fs::remove_file(&path);
                self.file_writes += 1;
            }
            return;
        }
        let data = Self::encode(&buffer.entries);
        if let Ok(mut file) = fs::File::create(&path) {
            if file.write_all(&data).is_ok() {
                self.file_writes += 1;
                self.bytes_on_disk = self
                    .bytes_on_disk
                    .saturating_add(data.len() as u64)
                    .saturating_sub(
                        self.index
                            .get(&buffer.key)
                            .map(|&c| {
                                8 + c as u64
                                    * (4 + buffer
                                        .entries
                                        .first()
                                        .map_or(0, |e| e.measures.len() as u64)
                                        * 8)
                            })
                            .unwrap_or(0),
                    );
                self.index
                    .insert(buffer.key.clone(), buffer.entries.len() as u32);
            }
        }
    }

    /// Writes back any dirty buffered cell. Also called on drop.
    pub fn flush(&mut self) {
        self.flush_buffer();
    }

    /// Total number of cell files currently on disk.
    pub fn file_count(&self) -> usize {
        self.index.len()
    }

    /// Deep structural self-check; see [`sitfact_core::audit::Audit`].
    #[cfg(any(test, debug_assertions, feature = "deep-audit"))]
    pub fn audit(&self) -> Result<(), sitfact_core::AuditViolation> {
        sitfact_core::Audit::check(self)
    }
}

/// Checks the index-≡-disk invariant the store's "empty cells cost no I/O"
/// property rests on: every indexed cell decodes from its file to exactly
/// the indexed entry count with unique ids. The currently buffered cell is
/// checked against the buffer instead (a dirty buffer is deliberately ahead
/// of its file until the next flush).
#[cfg(any(test, debug_assertions, feature = "deep-audit"))]
impl sitfact_core::Audit for FileSkylineStore {
    fn check(&self) -> Result<(), sitfact_core::AuditViolation> {
        use sitfact_core::AuditViolation;
        let fail = |invariant: &'static str, detail: String| {
            Err(AuditViolation::new("FileSkylineStore", invariant, detail))
        };
        for (key, &count) in &self.index {
            if count == 0 {
                return fail(
                    "index-counts-positive",
                    format!(
                        "cell {:?} is indexed with zero entries",
                        Self::file_name(key)
                    ),
                );
            }
            let buffered = self.buffer.as_ref().filter(|b| b.key == *key);
            if let Some(buffer) = buffered {
                if !buffer.dirty && buffer.entries.len() != count as usize {
                    return fail(
                        "buffer-matches-index",
                        format!(
                            "clean buffer for cell {:?} holds {} entries, index says {count}",
                            Self::file_name(key),
                            buffer.entries.len()
                        ),
                    );
                }
                continue;
            }
            let path = self.path_for(key);
            let data = match fs::read(&path) {
                Ok(data) => data,
                Err(err) => {
                    return fail(
                        "index-has-file",
                        format!("indexed cell file {path:?} is unreadable: {err}"),
                    )
                }
            };
            let entries = Self::decode(&data);
            if entries.len() != count as usize {
                return fail(
                    "file-matches-index",
                    format!(
                        "cell file {path:?} decodes to {} entries, index says {count}",
                        entries.len()
                    ),
                );
            }
            for (pos, entry) in entries.iter().enumerate() {
                if entries[..pos].iter().any(|prior| prior.id == entry.id) {
                    return fail(
                        "unique-ids-per-cell",
                        format!("cell file {path:?} stores id {} twice", entry.id),
                    );
                }
            }
        }
        Ok(())
    }
}

impl Drop for FileSkylineStore {
    fn drop(&mut self) {
        self.flush_buffer();
    }
}

impl SkylineStore for FileSkylineStore {
    fn read(
        &mut self,
        constraint: &Constraint,
        subspace: SubspaceMask,
    ) -> std::sync::Arc<Vec<StoredEntry>> {
        let key = Self::key(constraint, subspace);
        self.load(key);
        std::sync::Arc::new(
            self.buffer
                .as_ref()
                .map(|b| b.entries.clone())
                .unwrap_or_default(),
        )
    }

    fn insert(&mut self, constraint: &Constraint, subspace: SubspaceMask, entry: StoredEntry) {
        let key = Self::key(constraint, subspace);
        self.load(key);
        if let Some(buffer) = &mut self.buffer {
            buffer.entries.push(entry);
            buffer.dirty = true;
        }
    }

    fn remove(&mut self, constraint: &Constraint, subspace: SubspaceMask, id: TupleId) -> bool {
        let key = Self::key(constraint, subspace);
        self.load(key);
        if let Some(buffer) = &mut self.buffer {
            if let Some(pos) = buffer.entries.iter().position(|e| e.id == id) {
                buffer.entries.swap_remove(pos);
                buffer.dirty = true;
                return true;
            }
        }
        false
    }

    fn contains(&mut self, constraint: &Constraint, subspace: SubspaceMask, id: TupleId) -> bool {
        let key = Self::key(constraint, subspace);
        self.load(key);
        self.buffer
            .as_ref()
            .is_some_and(|b| b.entries.iter().any(|e| e.id == id))
    }

    fn stats(&self) -> StoreStats {
        let stored_entries: u64 = self.index.values().map(|&c| c as u64).sum::<u64>()
            + self
                .buffer
                .as_ref()
                .map(|b| {
                    let indexed = self.index.get(&b.key).copied().unwrap_or(0) as i64;
                    (b.entries.len() as i64 - indexed).max(0) as u64
                })
                .unwrap_or(0);
        StoreStats {
            stored_entries,
            non_empty_cells: self.index.len() as u64,
            approx_bytes: self.bytes_on_disk,
            file_reads: self.file_reads,
            file_writes: self.file_writes,
        }
    }

    fn clear(&mut self) {
        self.buffer = None;
        for key in self.index.keys() {
            let _ = fs::remove_file(self.dir.join(Self::file_name(key)));
        }
        self.index.clear();
        self.bytes_on_disk = 0;
    }

    fn flush(&mut self) {
        FileSkylineStore::flush(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sitfact-filestore-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn constraint(values: Vec<u32>) -> Constraint {
        Constraint::from_values(values)
    }

    #[test]
    fn round_trip_through_files() {
        let dir = temp_dir("roundtrip");
        let mut store = FileSkylineStore::new(&dir).unwrap();
        let c = constraint(vec![1, UNBOUND]);
        let m = SubspaceMask(0b11);
        store.insert(&c, m, StoredEntry::new(0, &[1.0, 2.0]));
        store.insert(&c, m, StoredEntry::new(1, &[3.0, 4.0]));
        // Force the buffer out to disk, then read it back.
        store.flush();
        assert_eq!(store.file_count(), 1);
        let entries = store.read(&c, m);
        assert_eq!(entries.len(), 2);
        assert!(entries
            .iter()
            .any(|e| e.id == 0 && *e.measures == [1.0, 2.0]));
        assert!(entries
            .iter()
            .any(|e| e.id == 1 && *e.measures == [3.0, 4.0]));
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn persists_across_buffer_eviction() {
        let dir = temp_dir("evict");
        let mut store = FileSkylineStore::new(&dir).unwrap();
        let c1 = constraint(vec![1]);
        let c2 = constraint(vec![2]);
        store.insert(&c1, SubspaceMask(1), StoredEntry::new(0, &[1.0]));
        // Touching another cell evicts (and persists) the first one.
        store.insert(&c2, SubspaceMask(1), StoredEntry::new(1, &[2.0]));
        assert_eq!(store.read(&c1, SubspaceMask(1)).len(), 1);
        assert_eq!(store.read(&c2, SubspaceMask(1)).len(), 1);
        let stats = store.stats();
        assert!(stats.file_writes >= 1);
        assert!(stats.file_reads >= 1);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_and_contains() {
        let dir = temp_dir("remove");
        let mut store = FileSkylineStore::new(&dir).unwrap();
        let c = constraint(vec![7, 8]);
        let m = SubspaceMask(0b01);
        store.insert(&c, m, StoredEntry::new(5, &[9.0]));
        assert!(store.contains(&c, m, 5));
        assert!(!store.contains(&c, m, 6));
        assert!(store.remove(&c, m, 5));
        assert!(!store.remove(&c, m, 5));
        store.flush();
        // The now-empty cell's file must be gone.
        assert_eq!(store.file_count(), 0);
        assert!(store.read(&c, m).is_empty());
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_cells_cost_no_reads() {
        let dir = temp_dir("noreads");
        let mut store = FileSkylineStore::new(&dir).unwrap();
        let c = constraint(vec![1]);
        for i in 0..50u32 {
            let other = constraint(vec![100 + i]);
            let _ = store.read(&other, SubspaceMask(1));
        }
        assert_eq!(store.stats().file_reads, 0);
        store.insert(&c, SubspaceMask(1), StoredEntry::new(0, &[1.0]));
        store.flush();
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_count_entries_including_buffer() {
        let dir = temp_dir("stats");
        let mut store = FileSkylineStore::new(&dir).unwrap();
        let c = constraint(vec![1]);
        store.insert(&c, SubspaceMask(1), StoredEntry::new(0, &[1.0]));
        store.insert(&c, SubspaceMask(1), StoredEntry::new(1, &[2.0]));
        // Not yet flushed: entries still counted.
        assert_eq!(store.stats().stored_entries, 2);
        store.flush();
        assert_eq!(store.stats().stored_entries, 2);
        assert_eq!(store.stats().non_empty_cells, 1);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_removes_files() {
        let dir = temp_dir("clear");
        let mut store = FileSkylineStore::new(&dir).unwrap();
        let c = constraint(vec![1]);
        store.insert(&c, SubspaceMask(1), StoredEntry::new(0, &[1.0]));
        store.flush();
        assert_eq!(store.file_count(), 1);
        store.clear();
        assert_eq!(store.file_count(), 0);
        assert!(store.read(&c, SubspaceMask(1)).is_empty());
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn encode_decode_is_lossless() {
        let entries = vec![
            StoredEntry::new(1, &[1.5, -2.25, 0.0]),
            StoredEntry::new(42, &[7.0, 8.0, 9.0]),
        ];
        let encoded = FileSkylineStore::encode(&entries);
        let decoded = FileSkylineStore::decode(&encoded);
        assert_eq!(entries, decoded);
        assert!(FileSkylineStore::decode(&[]).is_empty());
        assert!(FileSkylineStore::decode(&[1, 2, 3]).is_empty());
    }
}
