//! Write-ahead arrival log and snapshot state codecs.
//!
//! A monitor's state is a deterministic function of its arrival sequence
//! (reports are canonically ordered, posting layouts are pure functions of
//! the id stream, dictionary ids follow interning order), so durability
//! reduces to durably recording the *raw* arrivals: the log stores each
//! accepted window as one length-prefixed, checksummed frame of raw string
//! rows, and recovery replays the tail through the ordinary batched ingest
//! path. Periodic full-state snapshots (see the codecs below and
//! `sitfact-prominence`'s `DurableMonitor`) bound how much of the log must be
//! replayed.
//!
//! ## Frame layout
//!
//! ```text
//! frame   := len:u32le crc:u32le payload[len]     crc = CRC-32 (IEEE) of payload
//! window  := first_id:u64 nrows:u32 row*
//! row     := ndims:u32 nmeasures:u32 dim_utf8* measure_f64bits*
//! ```
//!
//! A torn or corrupted frame ends the usable log: scanning stops at the
//! first frame whose length or checksum does not hold, reports how many
//! bytes were dropped, and reopening truncates the segment back to its last
//! valid frame (later segments, unreachable behind the tear, are removed).
//! All failures are typed [`SitFactError`]s — a damaged log must never
//! panic the process that is trying to recover from damage.
//!
//! The log is segmented (`wal-<seq>.log`): appends rotate to a fresh
//! segment once the current one exceeds the configured size, so recovery
//! tooling and tests can reason about bounded files.

use crate::postings::CompressedPostings;
use crate::store::StoreCell;
use crate::table::{PostingMap, Table};
use sitfact_core::{DimValueId, Direction, Result, Schema, SchemaBuilder, SitFactError};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Upper bound on a single frame's payload (64 MiB), mirroring the serve
/// crate's frame cap: a corrupt length field must not provoke a huge read.
pub const MAX_WAL_FRAME: usize = 64 * 1024 * 1024;

/// Bytes of frame header preceding every payload: `len:u32` + `crc:u32`.
const FRAME_HEADER: usize = 8;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven. Hand-rolled: the workspace vendors no
// checksum crate, and 20 lines of const-fn table building beat a dependency.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of a byte slice — the per-frame checksum of the arrival log
/// and the snapshot files.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Little-endian byte codec helpers shared by the log, the snapshot codecs
// and the prominence-level report codec.
// ---------------------------------------------------------------------------

/// Appends a `u32` in little-endian order.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern (byte-exact round trip, no
/// decimal rendering involved).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Forward-only reader over an encoded buffer. Every accessor returns a
/// typed [`SitFactError::Parse`] on truncation instead of panicking, so the
/// decode paths satisfy the `no-panic` audit rule by construction.
#[derive(Debug)]
pub struct ByteCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteCursor<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteCursor { buf, pos: 0 }
    }

    fn truncated(&self, what: &str) -> SitFactError {
        SitFactError::Parse(format!(
            "truncated record: {what} at offset {} of {}",
            self.pos,
            self.buf.len()
        ))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.truncated(what));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` stored as its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_u32()? as usize;
        self.take(len, "byte string")
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str> {
        let bytes = self.get_bytes()?;
        std::str::from_utf8(bytes)
            .map_err(|err| SitFactError::Parse(format!("invalid UTF-8 in record: {err}")))
    }

    /// Reads a length prefix that the caller will loop over, guarding
    /// against lengths that could not possibly fit in the remaining bytes
    /// (`min_item_bytes` is the smallest encoding of one item).
    pub fn get_count(&mut self, min_item_bytes: usize, what: &str) -> Result<usize> {
        let count = self.get_u32()? as usize;
        if count.saturating_mul(min_item_bytes.max(1)) > self.remaining() {
            return Err(SitFactError::Parse(format!(
                "implausible {what} count {count} with {} bytes remaining",
                self.remaining()
            )));
        }
        Ok(count)
    }
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// Writes one `len | crc | payload` frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_WAL_FRAME {
        return Err(SitFactError::Io(format!(
            "refusing to write a {}-byte frame (cap {MAX_WAL_FRAME})",
            payload.len()
        )));
    }
    let mut header = [0u8; FRAME_HEADER];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    Ok(())
}

/// Splits a buffer into its valid frame payloads.
///
/// Returns the payloads plus the offset where the valid prefix ends — the
/// position of the first torn frame (length running past the buffer) or
/// corrupted frame (checksum mismatch, implausible length). `valid_end ==
/// buf.len()` means the whole buffer scanned clean.
pub fn scan_frames(buf: &[u8]) -> (Vec<&[u8]>, usize) {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    while buf.len() - pos >= FRAME_HEADER {
        let len = u32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]) as usize;
        let crc = u32::from_le_bytes([buf[pos + 4], buf[pos + 5], buf[pos + 6], buf[pos + 7]]);
        let start = pos + FRAME_HEADER;
        if len > MAX_WAL_FRAME || start + len > buf.len() {
            break;
        }
        let payload = &buf[start..start + len];
        if crc32(payload) != crc {
            break;
        }
        frames.push(payload);
        pos = start + len;
    }
    (frames, pos)
}

// ---------------------------------------------------------------------------
// Window records
// ---------------------------------------------------------------------------

/// One raw arrival row exactly as the client submitted it: dimension value
/// strings plus measure values.
///
/// The log deliberately stores *strings*, not encoded
/// [`Tuple`](sitfact_core::Tuple)s: dictionary ids depend on interning
/// order, which a replay reproduces only if it re-interns the same raw
/// stream — and a raw log can also be replayed into a differently-sharded
/// monitor, whose shards intern independently.
#[derive(Debug, Clone, PartialEq)]
pub struct LoggedRow {
    /// Dimension values, one string per dimension attribute.
    pub dims: Vec<String>,
    /// Measure values, one per measure attribute.
    pub measures: Vec<f64>,
}

/// One logged ingest window: the id its first row received plus the raw
/// rows, in arrival order.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRecord {
    /// Tuple id assigned to the window's first row.
    pub first_id: u64,
    /// The window's rows, in arrival order.
    pub rows: Vec<LoggedRow>,
}

impl WindowRecord {
    /// Encodes the record into `out` (the payload of one log frame).
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.first_id);
        put_u32(out, self.rows.len() as u32);
        for row in &self.rows {
            put_u32(out, row.dims.len() as u32);
            put_u32(out, row.measures.len() as u32);
            for dim in &row.dims {
                put_str(out, dim);
            }
            for &m in &row.measures {
                put_f64(out, m);
            }
        }
    }

    /// Decodes a record from one frame payload.
    pub fn decode(payload: &[u8]) -> Result<WindowRecord> {
        let mut cur = ByteCursor::new(payload);
        let first_id = cur.get_u64()?;
        let nrows = cur.get_count(8, "window row")?;
        let mut rows = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            let ndims = cur.get_count(4, "row dimension")?;
            let nmeasures = cur.get_count(8, "row measure")?;
            let mut dims = Vec::with_capacity(ndims);
            for _ in 0..ndims {
                dims.push(cur.get_str()?.to_string());
            }
            let mut measures = Vec::with_capacity(nmeasures);
            for _ in 0..nmeasures {
                measures.push(cur.get_f64()?);
            }
            rows.push(LoggedRow { dims, measures });
        }
        if !cur.is_empty() {
            return Err(SitFactError::Parse(format!(
                "window record has {} trailing bytes",
                cur.remaining()
            )));
        }
        Ok(WindowRecord { first_id, rows })
    }
}

// ---------------------------------------------------------------------------
// The segmented arrival log
// ---------------------------------------------------------------------------

/// When the log forces appended frames onto stable storage.
///
/// Every append always *writes* the full frame (plain `write` syscalls), so
/// acked windows survive a process kill under either policy; the policy
/// decides whether each window additionally pays an `fsync`, which is what
/// survives power loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// `fsync` after every appended window (durable against power loss).
    #[default]
    Always,
    /// Leave flushing to the operating system (durable against process
    /// crashes only; the bench's fast leg).
    Os,
}

impl SyncPolicy {
    /// Stable lowercase name, recorded in `BENCH_wal.json`.
    pub fn name(self) -> &'static str {
        match self {
            SyncPolicy::Always => "always",
            SyncPolicy::Os => "os",
        }
    }
}

/// Aggregate counters of an arrival log, surfaced through the serve `STATS`
/// verb.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Number of live segment files.
    pub segments: u64,
    /// Total bytes across all live segments.
    pub bytes: u64,
    /// Rows durably appended to the log (the last synced id is
    /// `durable_rows - 1`).
    pub durable_rows: u64,
    /// Closed segment files deleted by [`ArrivalLog::retire_covered`]
    /// because a full-state snapshot covers every window they held. Counts
    /// this process's retirements (the counter restarts at zero on reopen —
    /// retired files are gone, so a fresh scan cannot see them).
    pub retired_segments: u64,
}

/// What scanning an existing log directory found.
#[derive(Debug, Clone, PartialEq)]
pub struct ScannedLog {
    /// Every valid window, across segments, in append order.
    pub windows: Vec<WindowRecord>,
    /// Bytes dropped behind the first torn or corrupted frame (0 for a
    /// clean log).
    pub dropped_bytes: u64,
}

/// Segment file name for sequence number `seq`.
fn segment_name(seq: u64) -> String {
    format!("wal-{seq:010}.log")
}

/// Sorted `(seq, path)` pairs of the segment files present in `dir`.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            segments.push((seq, entry.path()));
        }
    }
    segments.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(segments)
}

/// Reads every window of the log in `dir` without modifying anything on
/// disk — the replay entry point for re-sharding ("replay the same log
/// through a router with a new shard count") and for read-only inspection.
///
/// Scanning stops at the first torn or corrupted frame; everything behind
/// it (including whole later segments) is counted into
/// [`ScannedLog::dropped_bytes`].
pub fn scan_log(dir: &Path) -> Result<ScannedLog> {
    let mut windows = Vec::new();
    let mut dropped = 0u64;
    let segments = list_segments(dir)?;
    let mut torn = false;
    for (_, path) in &segments {
        let buf = std::fs::read(path)?;
        if torn {
            dropped += buf.len() as u64;
            continue;
        }
        let (frames, valid_end) = scan_frames(&buf);
        for payload in frames {
            windows.push(WindowRecord::decode(payload)?);
        }
        if valid_end != buf.len() {
            dropped += (buf.len() - valid_end) as u64;
            torn = true;
        }
    }
    Ok(ScannedLog {
        windows,
        dropped_bytes: dropped,
    })
}

/// The append side of the segmented write-ahead arrival log.
///
/// [`ArrivalLog::open`] scans whatever the directory already holds (see
/// [`scan_log`]), truncates the first damaged segment back to its last
/// valid frame, removes unreachable later segments, and positions the
/// writer after the last valid record.
#[derive(Debug)]
pub struct ArrivalLog {
    dir: PathBuf,
    file: File,
    segment_seq: u64,
    segment_bytes: u64,
    segment_limit: u64,
    closed: Vec<ClosedSegment>,
    retired: u64,
    durable_rows: u64,
    sync: SyncPolicy,
}

/// A rotated-out (no longer written) segment, remembered so snapshots can
/// retire it once they cover every window it holds.
#[derive(Debug, Clone, Copy)]
struct ClosedSegment {
    seq: u64,
    bytes: u64,
    /// Id one past the last row whose window ends in this segment (windows
    /// never straddle a rotation). A snapshot covering `rows_end` rows makes
    /// the whole segment redundant.
    rows_end: u64,
}

impl ArrivalLog {
    /// Opens (or creates) the log in `dir`, returning the writer plus the
    /// scan of what already existed. `segment_limit` is the byte size past
    /// which appends rotate to a fresh segment.
    pub fn open(dir: &Path, sync: SyncPolicy, segment_limit: u64) -> Result<(Self, ScannedLog)> {
        std::fs::create_dir_all(dir)?;
        let mut scanned = ScannedLog {
            windows: Vec::new(),
            dropped_bytes: 0,
        };
        let segments = list_segments(dir)?;
        let mut keep: Vec<ClosedSegment> = Vec::new();
        let mut torn = false;
        // Retired logs no longer start at row 0: track the running
        // high-water id from the records themselves, not a sum of lengths.
        let mut rows_end = 0u64;
        for (seq, path) in &segments {
            let buf = std::fs::read(path)?;
            if torn {
                scanned.dropped_bytes += buf.len() as u64;
                std::fs::remove_file(path)?;
                continue;
            }
            let (frames, valid_end) = scan_frames(&buf);
            for payload in frames {
                let window = WindowRecord::decode(payload)?;
                rows_end = window.first_id + window.rows.len() as u64;
                scanned.windows.push(window);
            }
            if valid_end != buf.len() {
                scanned.dropped_bytes += (buf.len() - valid_end) as u64;
                torn = true;
                // Truncate the damaged segment back to its valid prefix so
                // future appends continue from the last good frame.
                let file = OpenOptions::new().write(true).open(path)?;
                file.set_len(valid_end as u64)?;
                file.sync_data()?;
            }
            keep.push(ClosedSegment {
                seq: *seq,
                bytes: valid_end as u64,
                rows_end,
            });
        }
        let (segment_seq, segment_bytes) = keep
            .last()
            .map(|active| (active.seq, active.bytes))
            .unwrap_or((0, 0));
        keep.truncate(keep.len().saturating_sub(1));
        let path = dir.join(segment_name(segment_seq));
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok((
            ArrivalLog {
                dir: dir.to_path_buf(),
                file,
                segment_seq,
                segment_bytes,
                segment_limit: segment_limit.max(1),
                closed: keep,
                retired: 0,
                durable_rows: rows_end,
                sync,
            },
            scanned,
        ))
    }

    /// Appends one window record as a checksummed frame, flushing it to the
    /// OS unconditionally and to stable storage per the [`SyncPolicy`].
    pub fn append(&mut self, record: &WindowRecord) -> Result<()> {
        if self.segment_bytes >= self.segment_limit {
            self.rotate()?;
        }
        let mut payload = Vec::with_capacity(64 + 16 * record.rows.len());
        record.encode(&mut payload);
        write_frame(&mut self.file, &payload)?;
        if matches!(self.sync, SyncPolicy::Always) {
            self.file.sync_data()?;
        }
        self.segment_bytes += (FRAME_HEADER + payload.len()) as u64;
        self.durable_rows = record.first_id + record.rows.len() as u64;
        Ok(())
    }

    fn rotate(&mut self) -> Result<()> {
        self.file.sync_data()?;
        self.closed.push(ClosedSegment {
            seq: self.segment_seq,
            bytes: self.segment_bytes,
            rows_end: self.durable_rows,
        });
        self.segment_seq += 1;
        let path = self.dir.join(segment_name(self.segment_seq));
        self.file = OpenOptions::new().create(true).append(true).open(&path)?;
        self.segment_bytes = 0;
        Ok(())
    }

    /// Deletes every *closed* segment whose windows all end at or before
    /// `covered_rows` — the row count a committed snapshot fully captures.
    /// The active segment is never touched, so the log keeps accepting
    /// appends and a later [`ArrivalLog::open`] still finds a writable
    /// tail. Returns the number of files deleted.
    pub fn retire_covered(&mut self, covered_rows: u64) -> Result<u64> {
        let mut kept = Vec::with_capacity(self.closed.len());
        let mut retired = 0u64;
        let mut failure: Option<std::io::Error> = None;
        for segment in std::mem::take(&mut self.closed) {
            if failure.is_none() && segment.rows_end <= covered_rows {
                match std::fs::remove_file(self.dir.join(segment_name(segment.seq))) {
                    Ok(()) => retired += 1,
                    Err(err) => {
                        // Keep the segment in the books; a later snapshot
                        // retries the deletion.
                        failure = Some(err);
                        kept.push(segment);
                    }
                }
            } else {
                kept.push(segment);
            }
        }
        self.closed = kept;
        self.retired += retired;
        match failure {
            Some(err) => Err(err.into()),
            None => Ok(retired),
        }
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current counters (segments, bytes, durably appended rows).
    pub fn stats(&self) -> WalStats {
        WalStats {
            segments: self.closed.len() as u64 + 1,
            bytes: self.closed.iter().map(|s| s.bytes).sum::<u64>() + self.segment_bytes,
            durable_rows: self.durable_rows,
            retired_segments: self.retired,
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot state codecs: Table and skyline-store cells
// ---------------------------------------------------------------------------

/// Encodes a [`Schema`] — names, directions and the dimension dictionaries
/// in id order — so a snapshot restores the exact interning state.
fn encode_schema(schema: &Schema, out: &mut Vec<u8>) {
    put_str(out, schema.name());
    put_u32(out, schema.num_dimensions() as u32);
    for name in schema.dimension_names() {
        put_str(out, name);
    }
    put_u32(out, schema.num_measures() as u32);
    for measure in schema.measures() {
        put_str(out, &measure.name);
        out.push(match measure.direction {
            Direction::HigherIsBetter => 0,
            Direction::LowerIsBetter => 1,
        });
    }
    for dim in 0..schema.num_dimensions() {
        let dict = schema.dictionary(dim);
        put_u32(out, dict.len() as u32);
        for (_, value) in dict.iter() {
            put_str(out, value);
        }
    }
}

fn decode_schema(cur: &mut ByteCursor<'_>) -> Result<Schema> {
    let name = cur.get_str()?.to_string();
    let ndims = cur.get_count(1, "dimension name")?;
    let mut builder = SchemaBuilder::new(name);
    for _ in 0..ndims {
        builder = builder.dimension(cur.get_str()?);
    }
    let nmeasures = cur.get_count(1, "measure")?;
    for _ in 0..nmeasures {
        let name = cur.get_str()?.to_string();
        let direction = match cur.get_u8()? {
            0 => Direction::HigherIsBetter,
            1 => Direction::LowerIsBetter,
            other => {
                return Err(SitFactError::Parse(format!(
                    "unknown measure direction tag {other}"
                )))
            }
        };
        builder = builder.measure(name, direction);
    }
    let mut schema = builder.build()?;
    for dim in 0..ndims {
        let count = cur.get_count(1, "dictionary entry")?;
        for expect in 0..count {
            let value = cur.get_str()?;
            let id = schema.dictionary_mut(dim).intern(value);
            if id as usize != expect {
                return Err(SitFactError::Parse(format!(
                    "dictionary of dimension {dim} re-interned \"{value}\" to id {id}, \
                     expected {expect} (duplicate entry in snapshot?)"
                )));
            }
        }
    }
    Ok(schema)
}

/// Encodes a [`Table`]'s full state: schema (with dictionaries), the flat
/// columns, and every posting list in its *native* compressed
/// representation. Serializing the representation — not just the ids —
/// keeps post-recovery posting statistics (sealed blocks, tail ids,
/// compressed bytes) byte-identical to the never-crashed monitor's, which
/// the serve `STATS` equality checks pin.
pub fn encode_table(table: &Table, out: &mut Vec<u8>) {
    let (schema, len, evicted, watermark, dims, measures, postings) = table.state_parts();
    encode_schema(schema, out);
    put_u64(out, len as u64);
    // Retraction bounds travel with the columns; the tombstone bitmap is
    // derived from them on decode rather than serialized.
    put_u64(out, evicted as u64);
    put_u64(out, watermark as u64);
    for &d in dims {
        put_u32(out, d);
    }
    for &m in measures {
        put_f64(out, m);
    }
    for map in postings {
        // Deterministic order (sorted by value id) so identical tables
        // encode to identical bytes regardless of hash-map iteration order.
        let mut values: Vec<DimValueId> = map.keys().copied().collect();
        values.sort_unstable();
        put_u32(out, values.len() as u32);
        for value in values {
            put_u32(out, value);
            // Indexing is safe: `value` came from this map's keys.
            map[&value].encode_state(out);
        }
    }
}

/// Decodes a table encoded by [`encode_table`], validating the structural
/// invariants (column strides, posting-arena consistency) so a corrupted
/// snapshot surfaces as a typed error rather than a later panic.
pub fn decode_table(cur: &mut ByteCursor<'_>) -> Result<Table> {
    let schema = decode_schema(cur)?;
    let n_dims = schema.num_dimensions();
    let n_measures = schema.num_measures();
    let len = cur.get_u64()? as usize;
    let evicted = cur.get_u64()? as usize;
    let watermark = cur.get_u64()? as usize;
    if evicted > watermark || watermark > len {
        return Err(SitFactError::Parse(format!(
            "retraction bounds do not nest in snapshot: evicted {evicted} <= watermark \
             {watermark} <= len {len} violated"
        )));
    }
    let physical = len - evicted;
    let n_dim_cells = physical.checked_mul(n_dims).ok_or_else(|| {
        SitFactError::Parse(format!("implausible table length {len} in snapshot"))
    })?;
    if n_dim_cells.saturating_mul(4) > cur.remaining() {
        return Err(SitFactError::Parse(format!(
            "implausible table length {len} with {} bytes remaining",
            cur.remaining()
        )));
    }
    let mut dims = Vec::with_capacity(n_dim_cells);
    for _ in 0..n_dim_cells {
        dims.push(cur.get_u32()?);
    }
    let mut measures = Vec::with_capacity(physical * n_measures);
    for _ in 0..physical * n_measures {
        measures.push(cur.get_f64()?);
    }
    let mut postings = Vec::with_capacity(n_dims);
    for _ in 0..n_dims {
        let lists = cur.get_count(4, "posting list")?;
        let mut map = PostingMap::default();
        map.reserve(lists);
        for _ in 0..lists {
            let value = cur.get_u32()?;
            let list = CompressedPostings::decode_state(cur)?;
            if map.insert(value, list).is_some() {
                return Err(SitFactError::Parse(format!(
                    "duplicate posting list for value {value} in snapshot"
                )));
            }
        }
        postings.push(map);
    }
    Table::from_state_parts(schema, len, evicted, watermark, dims, measures, postings)
}

/// Encodes dumped skyline-store cells ([`StoreCell`]) in a deterministic
/// order (sorted by constraint values, then subspace).
pub fn encode_cells(cells: &[StoreCell], out: &mut Vec<u8>) {
    let mut order: Vec<usize> = (0..cells.len()).collect();
    order.sort_by(|&a, &b| {
        (&cells[a].constraint, cells[a].subspace).cmp(&(&cells[b].constraint, cells[b].subspace))
    });
    put_u32(out, cells.len() as u32);
    for index in order {
        let cell = &cells[index];
        put_u32(out, cell.constraint.len() as u32);
        for &v in &cell.constraint {
            put_u32(out, v);
        }
        put_u32(out, cell.subspace);
        put_u32(out, cell.entries.len() as u32);
        for (id, measures) in &cell.entries {
            put_u32(out, *id);
            put_u32(out, measures.len() as u32);
            for &m in measures {
                put_f64(out, m);
            }
        }
    }
}

/// Decodes cells encoded by [`encode_cells`].
pub fn decode_cells(cur: &mut ByteCursor<'_>) -> Result<Vec<StoreCell>> {
    let ncells = cur.get_count(12, "store cell")?;
    let mut cells = Vec::with_capacity(ncells);
    for _ in 0..ncells {
        let nvalues = cur.get_count(4, "constraint value")?;
        let mut constraint = Vec::with_capacity(nvalues);
        for _ in 0..nvalues {
            constraint.push(cur.get_u32()?);
        }
        let subspace = cur.get_u32()?;
        let nentries = cur.get_count(8, "cell entry")?;
        let mut entries = Vec::with_capacity(nentries);
        for _ in 0..nentries {
            let id = cur.get_u32()?;
            let nmeasures = cur.get_count(8, "entry measure")?;
            let mut measures = Vec::with_capacity(nmeasures);
            for _ in 0..nmeasures {
                measures.push(cur.get_f64()?);
            }
            entries.push((id, measures));
        }
        cells.push(StoreCell {
            constraint,
            subspace,
            entries,
        });
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory_store::MemorySkylineStore;
    use crate::store::{SkylineStore, StoredEntry};
    use sitfact_core::{Constraint, SubspaceMask, Tuple};

    fn sample_window(first_id: u64, rows: usize) -> WindowRecord {
        WindowRecord {
            first_id,
            rows: (0..rows)
                .map(|i| LoggedRow {
                    dims: vec![format!("p{i}"), "team".to_string()],
                    measures: vec![i as f64, 0.5 + i as f64],
                })
                .collect(),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sitfact-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip_and_reject_corruption() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"world!").unwrap();
        let (frames, end) = scan_frames(&buf);
        assert_eq!(frames, vec![&b"hello"[..], &b""[..], &b"world!"[..]]);
        assert_eq!(end, buf.len());

        // Flip one payload byte of the middle... the last frame: the scan
        // must stop exactly at that frame's header.
        let mut corrupt = buf.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        let (frames, end) = scan_frames(&corrupt);
        assert_eq!(frames.len(), 2);
        assert_eq!(end, buf.len() - (FRAME_HEADER + 6));

        // Truncate mid-frame: same stop-at-last-valid behaviour.
        let torn = &buf[..buf.len() - 3];
        let (frames, end) = scan_frames(torn);
        assert_eq!(frames.len(), 2);
        assert_eq!(end, torn.len() - (FRAME_HEADER + 3));
    }

    #[test]
    fn window_records_round_trip() {
        let record = sample_window(42, 5);
        let mut payload = Vec::new();
        record.encode(&mut payload);
        let decoded = WindowRecord::decode(&payload).unwrap();
        assert_eq!(decoded, record);
        // NaN-free exactness is bit-level: a tricky float survives.
        let tricky = WindowRecord {
            first_id: 0,
            rows: vec![LoggedRow {
                dims: vec!["x".into()],
                measures: vec![0.1 + 0.2, f64::MIN_POSITIVE, -0.0],
            }],
        };
        let mut payload = Vec::new();
        tricky.encode(&mut payload);
        let decoded = WindowRecord::decode(&payload).unwrap();
        assert_eq!(
            decoded.rows[0].measures[0].to_bits(),
            (0.1f64 + 0.2).to_bits()
        );
        assert_eq!(decoded.rows[0].measures[2].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn truncated_window_record_is_a_parse_error() {
        let record = sample_window(0, 3);
        let mut payload = Vec::new();
        record.encode(&mut payload);
        for cut in [1, payload.len() / 2, payload.len() - 1] {
            let err = WindowRecord::decode(&payload[..cut]).expect_err("truncated");
            assert!(matches!(err, SitFactError::Parse(_)), "cut at {cut}: {err}");
        }
        // Trailing garbage is rejected too.
        let mut extended = payload.clone();
        extended.push(7);
        assert!(WindowRecord::decode(&extended).is_err());
    }

    #[test]
    fn log_appends_and_reopens_cleanly() {
        let dir = temp_dir("clean");
        let (mut log, scanned) = ArrivalLog::open(&dir, SyncPolicy::Os, 1 << 20).unwrap();
        assert!(scanned.windows.is_empty());
        assert_eq!(scanned.dropped_bytes, 0);
        log.append(&sample_window(0, 3)).unwrap();
        log.append(&sample_window(3, 2)).unwrap();
        let stats = log.stats();
        assert_eq!(stats.segments, 1);
        assert_eq!(stats.durable_rows, 5);
        assert!(stats.bytes > 0);
        drop(log);

        let (log, scanned) = ArrivalLog::open(&dir, SyncPolicy::Always, 1 << 20).unwrap();
        assert_eq!(scanned.windows.len(), 2);
        assert_eq!(scanned.windows[0], sample_window(0, 3));
        assert_eq!(scanned.windows[1].first_id, 3);
        assert_eq!(scanned.dropped_bytes, 0);
        assert_eq!(log.stats().durable_rows, 5);
        assert_eq!(log.stats().bytes, stats.bytes);
        drop(log);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn log_rotates_segments_at_the_limit() {
        let dir = temp_dir("rotate");
        // A tiny limit: every append lands in a fresh segment after the 1st.
        let (mut log, _) = ArrivalLog::open(&dir, SyncPolicy::Os, 16).unwrap();
        for i in 0..4 {
            log.append(&sample_window(i * 2, 2)).unwrap();
        }
        assert_eq!(log.stats().segments, 4);
        assert_eq!(log.stats().durable_rows, 8);
        drop(log);
        // All segments scan back in order.
        let scanned = scan_log(&dir).unwrap();
        assert_eq!(scanned.windows.len(), 4);
        assert_eq!(
            scanned
                .windows
                .iter()
                .map(|w| w.first_id)
                .collect::<Vec<_>>(),
            vec![0, 2, 4, 6]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = temp_dir("torn");
        let (mut log, _) = ArrivalLog::open(&dir, SyncPolicy::Os, 1 << 20).unwrap();
        log.append(&sample_window(0, 3)).unwrap();
        log.append(&sample_window(3, 3)).unwrap();
        drop(log);
        // Tear the last frame: chop 5 bytes off the segment.
        let path = dir.join(segment_name(0));
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 5).unwrap();
        drop(file);

        let (mut log, scanned) = ArrivalLog::open(&dir, SyncPolicy::Os, 1 << 20).unwrap();
        assert_eq!(scanned.windows.len(), 1, "only the intact window survives");
        assert!(scanned.dropped_bytes > 0);
        assert_eq!(log.stats().durable_rows, 3);
        // The log keeps working after truncation, and the re-appended
        // window replaces the torn one cleanly.
        log.append(&sample_window(3, 3)).unwrap();
        drop(log);
        let rescanned = scan_log(&dir).unwrap();
        assert_eq!(rescanned.windows.len(), 2);
        assert_eq!(rescanned.dropped_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_checksum_stops_the_scan_without_panicking() {
        let dir = temp_dir("crc");
        let (mut log, _) = ArrivalLog::open(&dir, SyncPolicy::Os, 1 << 20).unwrap();
        log.append(&sample_window(0, 2)).unwrap();
        log.append(&sample_window(2, 2)).unwrap();
        log.append(&sample_window(4, 2)).unwrap();
        drop(log);
        // Flip a byte inside the second frame's payload.
        let path = dir.join(segment_name(0));
        let mut buf = std::fs::read(&path).unwrap();
        let (frames, _) = scan_frames(&buf);
        assert_eq!(frames.len(), 3);
        let second_start = {
            let mut pos = 0usize;
            let len =
                u32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]) as usize;
            pos += FRAME_HEADER + len;
            pos + FRAME_HEADER + 4
        };
        buf[second_start] ^= 0xFF;
        std::fs::write(&path, &buf).unwrap();

        let scanned = scan_log(&dir).unwrap();
        assert_eq!(scanned.windows.len(), 1, "recovery stops at the corruption");
        assert!(scanned.dropped_bytes > 0);
        // Reopening truncates; the third (valid but unreachable) frame is
        // gone — the log never resurrects records behind a tear.
        let (log, reopened) = ArrivalLog::open(&dir, SyncPolicy::Os, 1 << 20).unwrap();
        assert_eq!(reopened.windows.len(), 1);
        assert_eq!(log.stats().durable_rows, 2);
        drop(log);
        let scanned = scan_log(&dir).unwrap();
        assert_eq!(scanned.dropped_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tear_in_middle_segment_drops_later_segments() {
        let dir = temp_dir("midtear");
        let (mut log, _) = ArrivalLog::open(&dir, SyncPolicy::Os, 16).unwrap();
        for i in 0..3 {
            log.append(&sample_window(i * 2, 2)).unwrap();
        }
        assert_eq!(log.stats().segments, 3);
        drop(log);
        // Corrupt segment 1: segment 2 becomes unreachable.
        let path = dir.join(segment_name(1));
        let mut buf = std::fs::read(&path).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        std::fs::write(&path, &buf).unwrap();

        let (log, scanned) = ArrivalLog::open(&dir, SyncPolicy::Os, 16).unwrap();
        assert_eq!(scanned.windows.len(), 1);
        assert!(scanned.dropped_bytes > 0);
        assert_eq!(log.stats().durable_rows, 2);
        assert!(
            !dir.join(segment_name(2)).exists(),
            "unreachable segment removed"
        );
        drop(log);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retirement_deletes_only_covered_closed_segments() {
        let dir = temp_dir("retire");
        let (mut log, _) = ArrivalLog::open(&dir, SyncPolicy::Os, 16).unwrap();
        for i in 0..4 {
            log.append(&sample_window(i * 2, 2)).unwrap();
        }
        // Three closed segments (rows_end 2, 4, 6) plus the active one.
        assert_eq!(log.stats().segments, 4);
        // Coverage that lands mid-segment retires only the fully covered.
        assert_eq!(log.retire_covered(5).unwrap(), 2);
        let stats = log.stats();
        assert_eq!(stats.segments, 2);
        assert_eq!(stats.retired_segments, 2);
        assert!(!dir.join(segment_name(0)).exists());
        assert!(!dir.join(segment_name(1)).exists());
        assert!(dir.join(segment_name(2)).exists());
        // Idempotent at the same coverage.
        assert_eq!(log.retire_covered(5).unwrap(), 0);
        // The active segment survives even when fully covered.
        assert_eq!(log.retire_covered(100).unwrap(), 1);
        assert_eq!(log.stats().segments, 1);
        assert_eq!(log.stats().retired_segments, 3);
        drop(log);
        // A retired log reopens on its surviving suffix with the high-water
        // row count intact (ids no longer start at zero).
        let (log, scanned) = ArrivalLog::open(&dir, SyncPolicy::Os, 16).unwrap();
        assert_eq!(scanned.windows.len(), 1);
        assert_eq!(scanned.windows[0].first_id, 6);
        assert_eq!(log.stats().durable_rows, 8);
        assert_eq!(log.stats().retired_segments, 0, "counter is per-process");
        drop(log);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn table_state_round_trips_byte_exactly() {
        let schema = SchemaBuilder::new("gamelog")
            .dimension("player")
            .dimension("team")
            .measure("points", Direction::HigherIsBetter)
            .measure("turnovers", Direction::LowerIsBetter)
            .build()
            .unwrap();
        let mut table = Table::new(schema);
        // Enough rows to seal posting blocks, in two batches with a compact
        // pass in between so the sealed/tail split is non-trivial.
        let mut tuples = Vec::new();
        for i in 0..300u32 {
            let ids = table
                .schema_mut()
                .intern_dims(&[&format!("p{}", i % 7), ["X", "Y"][i as usize % 2]])
                .unwrap();
            tuples.push(Tuple::new(ids, vec![i as f64, (i % 13) as f64]));
        }
        table.append_batch(tuples).unwrap();
        table.compact_postings();
        let mut more = Vec::new();
        for i in 0..45u32 {
            let ids = table
                .schema_mut()
                .intern_dims(&[&format!("p{}", i % 11), "Z"])
                .unwrap();
            more.push(Tuple::new(ids, vec![i as f64, 1.0]));
        }
        table.append_batch(more).unwrap();

        let mut bytes = Vec::new();
        encode_table(&table, &mut bytes);
        let decoded = decode_table(&mut ByteCursor::new(&bytes)).unwrap();
        assert_eq!(decoded.len(), table.len());
        assert_eq!(decoded.posting_index_stats(), table.posting_index_stats());
        assert_eq!(decoded.approx_heap_bytes(), table.approx_heap_bytes());
        for ((a_id, a), (b_id, b)) in decoded.iter().zip(table.iter()) {
            assert_eq!((a_id, a), (b_id, b));
        }
        decoded.audit().unwrap();
        // Re-encoding the decoded table is byte-identical (deterministic
        // codec despite hash-map cells underneath).
        let mut again = Vec::new();
        encode_table(&decoded, &mut again);
        assert_eq!(again, bytes);

        // A flipped byte surfaces as a typed error somewhere — never a
        // panic. (Some flips only corrupt column *values*, which decode
        // fine; the point is that no flip may crash the decoder.)
        for at in (0..bytes.len()).step_by(17) {
            let mut bad = bytes.clone();
            bad[at] ^= 0x20;
            let _ = decode_table(&mut ByteCursor::new(&bad));
        }
    }

    #[test]
    fn store_cells_round_trip_through_codec_and_store() {
        let mut store = MemorySkylineStore::new();
        let c1 = Constraint::from_values(vec![1, u32::MAX]);
        let c2 = Constraint::from_values(vec![u32::MAX, 2]);
        store.insert(&c1, SubspaceMask(0b01), StoredEntry::new(0, &[1.0, 2.0]));
        store.insert(&c1, SubspaceMask(0b11), StoredEntry::new(1, &[3.0, 4.0]));
        store.insert(&c2, SubspaceMask(0b01), StoredEntry::new(2, &[5.0, 6.0]));
        store.insert(&c2, SubspaceMask(0b01), StoredEntry::new(3, &[7.0, 8.0]));

        let cells = store.dump_cells().expect("memory store dumps");
        let mut bytes = Vec::new();
        encode_cells(&cells, &mut bytes);
        let decoded = decode_cells(&mut ByteCursor::new(&bytes)).unwrap();
        let mut restored = MemorySkylineStore::new();
        restored.load_cells(decoded).unwrap();
        assert_eq!(restored.stats().stored_entries, 4);
        assert_eq!(restored.stats().non_empty_cells, 3);
        let mut a: Vec<_> = store.dump_cells().unwrap();
        let mut b: Vec<_> = restored.dump_cells().unwrap();
        let key = |c: &StoreCell| (c.constraint.clone(), c.subspace);
        a.sort_by_key(key);
        b.sort_by_key(key);
        // Entry order within a cell is insertion order, which load_cells
        // preserves.
        assert_eq!(a, b);
        restored.audit().unwrap();
    }
}
