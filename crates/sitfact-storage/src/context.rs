//! Incremental maintenance of context cardinalities `|σ_C(R)|`.
//!
//! The prominence measure of Section VII divides the context size by the
//! skyline size, and a context contributes a prominent fact only when it holds
//! at least `τ` tuples. Scanning the table per reported fact would dwarf the
//! discovery cost, so the counter below maintains, for every constraint that
//! any tuple has ever satisfied (capped at `d̂` bound attributes), the number
//! of tuples in its context — one hash-map update per constraint per arriving
//! tuple.

use sitfact_core::{BoundMask, Constraint, ConstraintLattice, FxHashMap, TupleView};

/// Incremental counter of `|σ_C(R)|` for every observed constraint.
#[derive(Debug, Clone)]
pub struct ContextCounter {
    lattice: ConstraintLattice,
    /// The lattice's masks, materialised once at construction — `observe`
    /// runs once per arriving tuple and must not re-enumerate (and
    /// re-allocate) the constraint family every time.
    masks: Vec<BoundMask>,
    counts: FxHashMap<Constraint, u64>,
    observed_tuples: u64,
}

impl ContextCounter {
    /// Creates a counter for schemas with `n_dims` dimension attributes,
    /// counting constraints with at most `max_bound` bound attributes.
    pub fn new(n_dims: usize, max_bound: usize) -> Self {
        let lattice = ConstraintLattice::new(n_dims, max_bound);
        let masks = lattice.enumerate_top_down();
        ContextCounter {
            lattice,
            masks,
            counts: FxHashMap::default(),
            observed_tuples: 0,
        }
    }

    /// Registers an arriving tuple: every constraint of `C^t` (up to the `d̂`
    /// cap) has its context cardinality incremented. Accepts any
    /// [`TupleView`], so the table's zero-copy rows can be observed without
    /// materialising them.
    pub fn observe(&mut self, tuple: impl TupleView) {
        debug_assert_eq!(tuple.num_dims(), self.lattice.n_dims());
        for &mask in &self.masks {
            let constraint = Constraint::from_tuple_mask(&tuple, mask);
            *self.counts.entry(constraint).or_insert(0) += 1;
        }
        self.observed_tuples += 1;
    }

    /// Registers a whole window of arrivals. Equivalent to calling
    /// [`ContextCounter::observe`] once per tuple in order, but reserves the
    /// count map for the window's worst-case constraint growth up front so a
    /// bulk load does not rehash the map repeatedly.
    pub fn observe_batch<T, I>(&mut self, tuples: I)
    where
        T: TupleView,
        I: IntoIterator<Item = T>,
    {
        let tuples = tuples.into_iter();
        let (window, _) = tuples.size_hint();
        // Every tuple can introduce at most |masks| - 1 new constraints (the
        // top constraint is not tracked in the map), but reserving that much
        // for large windows over-allocates wildly. One slot per window tuple
        // is a realistic floor for a bulk load into an empty counter, and a
        // map that is already at least window-sized doubles itself at most
        // once more — so cap the worst case at the larger of the two.
        let growth = window
            .saturating_mul(self.masks.len().saturating_sub(1))
            .min(self.counts.len().max(window));
        self.counts.reserve(growth);
        for tuple in tuples {
            self.observe(tuple);
        }
    }

    /// Unregisters a retracted tuple: the exact inverse of
    /// [`ContextCounter::observe`]. Every constraint of `C^t` has its context
    /// cardinality decremented, and constraints whose context empties leave
    /// the map entirely — so a counter that observes a window and then
    /// forgets its expired prefix is indistinguishable from one that only
    /// ever observed the surviving suffix (the windowed ≡ rebuilt property).
    /// Forgetting a tuple that was never observed is a no-op per constraint
    /// (counts never wrap below zero).
    pub fn forget(&mut self, tuple: impl TupleView) {
        debug_assert_eq!(tuple.num_dims(), self.lattice.n_dims());
        for &mask in &self.masks {
            let constraint = Constraint::from_tuple_mask(&tuple, mask);
            if let Some(count) = self.counts.get_mut(&constraint) {
                *count -= 1;
                if *count == 0 {
                    self.counts.remove(&constraint);
                }
            }
        }
        self.observed_tuples = self.observed_tuples.saturating_sub(1);
    }

    /// The number of observed tuples satisfying `constraint`, i.e.
    /// `|σ_C(R)|`. Constraints never observed have cardinality 0; constraints
    /// with more than `d̂` bound attributes are not tracked and also report 0.
    pub fn cardinality(&self, constraint: &Constraint) -> u64 {
        if constraint.is_top() {
            return self.observed_tuples;
        }
        self.counts.get(constraint).copied().unwrap_or(0)
    }

    /// Cardinality for a constraint expressed as a tuple + bound mask, the
    /// form the discovery algorithms naturally produce.
    pub fn cardinality_for(&self, tuple: impl TupleView, mask: BoundMask) -> u64 {
        if mask.is_top() {
            return self.observed_tuples;
        }
        self.cardinality(&Constraint::from_tuple_mask(tuple, mask))
    }

    /// Total number of tuples observed so far.
    pub fn observed_tuples(&self) -> u64 {
        self.observed_tuples
    }

    /// Number of distinct constraints tracked.
    pub fn tracked_constraints(&self) -> usize {
        self.counts.len()
    }

    /// Approximate heap bytes consumed by the counter, derived from `size_of`
    /// so the estimate survives layout changes: each tracked constraint costs
    /// one map entry (a [`Constraint`] key — a boxed value slice — plus the
    /// `u64` count) and its boxed per-attribute values.
    pub fn approx_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let per_entry = size_of::<(Constraint, u64)>()
            + self.lattice.n_dims() * size_of::<sitfact_core::DimValueId>();
        self.counts.len() * per_entry
    }

    /// Iterates over every tracked `(constraint, count)` pair, in no
    /// particular order. Only exposed to the deep validators: the monitor
    /// audits rebuild a counter from the table and compare entry-by-entry.
    #[cfg(any(test, debug_assertions, feature = "deep-audit"))]
    pub fn iter_counts(&self) -> impl Iterator<Item = (&Constraint, u64)> {
        self.counts.iter().map(|(c, &n)| (c, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use sitfact_core::{Direction, SchemaBuilder, Tuple};

    fn sample_table() -> Table {
        let schema = SchemaBuilder::new("gamelog")
            .dimension("player")
            .dimension("team")
            .dimension("month")
            .measure("points", Direction::HigherIsBetter)
            .build()
            .unwrap();
        let mut table = Table::new(schema);
        let rows: [(&str, &str, &str); 5] = [
            ("Wesley", "Celtics", "Feb"),
            ("Wesley", "Celtics", "Mar"),
            ("Sherman", "Celtics", "Feb"),
            ("Bogues", "Hornets", "Feb"),
            ("Wesley", "Celtics", "Feb"),
        ];
        for (p, t, m) in rows {
            table.append_raw(&[p, t, m], vec![1.0]).unwrap();
        }
        table
    }

    #[test]
    fn counts_match_table_scans() {
        let table = sample_table();
        let mut counter = ContextCounter::new(3, 3);
        for (_, tuple) in table.iter() {
            counter.observe(tuple);
        }
        assert_eq!(counter.observed_tuples(), 5);
        // Compare against ground-truth scans for several constraints.
        for bindings in [
            vec![("team", "Celtics")],
            vec![("player", "Wesley")],
            vec![("player", "Wesley"), ("month", "Feb")],
            vec![("team", "Hornets"), ("month", "Feb")],
            vec![("player", "Sherman"), ("team", "Celtics"), ("month", "Feb")],
        ] {
            let c = Constraint::parse(table.schema(), &bindings).unwrap();
            assert_eq!(
                counter.cardinality(&c),
                table.context_cardinality(&c) as u64,
                "constraint {bindings:?}"
            );
        }
        // The top constraint covers every tuple.
        let top = Constraint::top(3);
        assert_eq!(counter.cardinality(&top), 5);
    }

    #[test]
    fn unseen_constraints_have_zero_cardinality() {
        let table = sample_table();
        let mut counter = ContextCounter::new(3, 3);
        for (_, tuple) in table.iter() {
            counter.observe(tuple);
        }
        let c = Constraint::parse(table.schema(), &[("player", "Bogues"), ("team", "Celtics")])
            .unwrap();
        assert_eq!(counter.cardinality(&c), 0);
    }

    #[test]
    fn cap_limits_tracked_constraints() {
        let table = sample_table();
        let mut capped = ContextCounter::new(3, 1);
        let mut full = ContextCounter::new(3, 3);
        for (_, tuple) in table.iter() {
            capped.observe(tuple);
            full.observe(tuple);
        }
        assert!(capped.tracked_constraints() < full.tracked_constraints());
        // Single-attribute constraints are still exact under the cap.
        let c = Constraint::parse(table.schema(), &[("team", "Celtics")]).unwrap();
        assert_eq!(capped.cardinality(&c), 4);
    }

    #[test]
    fn cardinality_for_mask_form() {
        let table = sample_table();
        let mut counter = ContextCounter::new(3, 3);
        for (_, tuple) in table.iter() {
            counter.observe(tuple);
        }
        let t = table.tuple(0); // Wesley, Celtics, Feb
        assert_eq!(counter.cardinality_for(t, BoundMask::TOP), 5);
        // player=Wesley ∧ team=Celtics -> 3 tuples.
        assert_eq!(
            counter.cardinality_for(t, BoundMask::from_indices([0, 1])),
            3
        );
        // month=Feb -> 4 tuples.
        assert_eq!(counter.cardinality_for(t, BoundMask::from_indices([2])), 4);
    }

    #[test]
    fn observe_batch_equals_observe_loop() {
        let table = sample_table();
        let mut looped = ContextCounter::new(3, 2);
        for (_, tuple) in table.iter() {
            looped.observe(tuple);
        }
        let mut batched = ContextCounter::new(3, 2);
        batched.observe_batch(table.iter().map(|(_, t)| t));
        assert_eq!(batched.observed_tuples(), looped.observed_tuples());
        assert_eq!(batched.tracked_constraints(), looped.tracked_constraints());
        for bindings in [
            vec![("team", "Celtics")],
            vec![("player", "Wesley"), ("month", "Feb")],
        ] {
            let c = Constraint::parse(table.schema(), &bindings).unwrap();
            assert_eq!(batched.cardinality(&c), looped.cardinality(&c));
        }
        // Batches compose: a second window continues the counts.
        batched.observe_batch(table.iter().map(|(_, t)| t));
        assert_eq!(batched.observed_tuples(), 10);
    }

    #[test]
    fn heap_estimate_is_positive_after_observation() {
        let mut counter = ContextCounter::new(3, 2);
        assert_eq!(counter.approx_heap_bytes(), 0);
        counter.observe(Tuple::new(vec![0, 1, 2], vec![1.0]));
        assert!(counter.approx_heap_bytes() > 0);
    }

    #[test]
    fn forget_is_the_exact_inverse_of_observe() {
        let table = sample_table();
        // Observe everything, forget the first two arrivals: the counter
        // must be indistinguishable from one that only ever saw the suffix.
        let mut windowed = ContextCounter::new(3, 2);
        windowed.observe_batch(table.iter().map(|(_, t)| t));
        for (_, tuple) in table.iter().take(2) {
            windowed.forget(tuple);
        }
        let mut rebuilt = ContextCounter::new(3, 2);
        rebuilt.observe_batch(table.iter().skip(2).map(|(_, t)| t));
        assert_eq!(windowed.observed_tuples(), rebuilt.observed_tuples());
        assert_eq!(
            windowed.tracked_constraints(),
            rebuilt.tracked_constraints(),
            "emptied contexts must leave the map, not linger at zero"
        );
        for (_, tuple) in table.iter() {
            for mask in [
                BoundMask::from_indices([0]),
                BoundMask::from_indices([1]),
                BoundMask::from_indices([2]),
                BoundMask::from_indices([0, 1]),
                BoundMask::from_indices([1, 2]),
            ] {
                assert_eq!(
                    windowed.cardinality_for(tuple, mask),
                    rebuilt.cardinality_for(tuple, mask)
                );
            }
        }
        // Forgetting every remaining tuple drains the counter completely.
        for (_, tuple) in table.iter().skip(2) {
            windowed.forget(tuple);
        }
        assert_eq!(windowed.observed_tuples(), 0);
        assert_eq!(windowed.tracked_constraints(), 0);
        assert_eq!(windowed.approx_heap_bytes(), 0);
    }
}
