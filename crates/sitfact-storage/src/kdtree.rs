//! k-d tree over the measure space.
//!
//! `BaselineIdx` (Section IV of the paper) avoids scanning the whole table by
//! asking, for each measure subspace `M`, the one-sided range query
//! `⋀_{m_i ∈ M} (m_i ≥ t.m_i)`: which historical tuples are at least as good
//! as the new tuple on every attribute of `M`? Those are the only tuples that
//! can dominate `t` in `M`. The tree indexes the *canonical* measure vectors
//! (lower-is-better attributes negated) so "better" is always "greater or
//! equal".

use sitfact_core::{Direction, SubspaceMask, TupleId, TupleView};

#[derive(Debug, Clone)]
struct Node {
    point: Box<[f64]>,
    id: TupleId,
    left: Option<u32>,
    right: Option<u32>,
    /// Lazily deleted: the node keeps routing queries (its subtrees are
    /// live) but no longer reports its own id. Dead nodes are purged by the
    /// threshold rebuild in [`KdTree::remove`].
    dead: bool,
}

/// A k-d tree keyed by canonical measure vectors, supporting insertion and
/// one-sided ("at least as good on these attributes") range queries.
///
/// Points are inserted in arrival order without rebalancing — adequate for the
/// streaming workloads of the paper, where the tree is only a baseline
/// substrate.
#[derive(Debug, Clone)]
pub struct KdTree {
    dims: usize,
    directions: Vec<Direction>,
    nodes: Vec<Node>,
    root: Option<u32>,
    /// Number of lazily-deleted nodes still in the arena. Once the dead
    /// fraction reaches ½ the tree is rebuilt from its survivors — the same
    /// threshold the compressed posting lists use.
    dead: usize,
}

impl KdTree {
    /// Creates an empty tree over measures with the given directions.
    pub fn new(directions: &[Direction]) -> Self {
        KdTree {
            dims: directions.len(),
            directions: directions.to_vec(),
            nodes: Vec::new(),
            root: None,
            dead: 0,
        }
    }

    /// Number of live indexed points (deleted points stop counting even
    /// while their nodes linger in the arena awaiting a rebuild).
    pub fn len(&self) -> usize {
        self.nodes.len() - self.dead
    }

    /// Whether the tree holds no live points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of lazily-deleted nodes still occupying arena slots.
    pub fn dead_len(&self) -> usize {
        self.dead
    }

    fn canonical(&self, tuple: impl TupleView) -> Box<[f64]> {
        (0..self.dims)
            .map(|i| self.directions[i].canonical(tuple.measure(i)))
            .collect()
    }

    /// Inserts a tuple's measures under its id.
    pub fn insert(&mut self, id: TupleId, tuple: impl TupleView) {
        debug_assert_eq!(tuple.num_measures(), self.dims);
        let point = self.canonical(tuple);
        self.insert_canonical(id, point);
    }

    fn insert_canonical(&mut self, id: TupleId, point: Box<[f64]>) {
        let new_index = self.nodes.len() as u32;
        self.nodes.push(Node {
            point,
            id,
            left: None,
            right: None,
            dead: false,
        });
        let Some(mut current) = self.root else {
            self.root = Some(new_index);
            return;
        };
        let mut depth = 0usize;
        loop {
            let axis = depth % self.dims;
            let go_left = self.nodes[new_index as usize].point[axis]
                < self.nodes[current as usize].point[axis];
            let next = if go_left {
                self.nodes[current as usize].left
            } else {
                self.nodes[current as usize].right
            };
            match next {
                Some(child) => {
                    current = child;
                    depth += 1;
                }
                None => {
                    if go_left {
                        self.nodes[current as usize].left = Some(new_index);
                    } else {
                        self.nodes[current as usize].right = Some(new_index);
                    }
                    return;
                }
            }
        }
    }

    /// Deletes a point by its id, navigating by the tuple's measures (the
    /// same descent [`KdTree::insert`] took, so the walk is logarithmic on
    /// balanced data rather than a full-arena scan). The node is only marked
    /// dead — it keeps routing queries until the dead fraction reaches ½ and
    /// the tree rebuilds itself from the survivors in insertion order.
    ///
    /// Returns whether a live `(id, measures)` point was found and removed.
    pub fn remove(&mut self, id: TupleId, tuple: impl TupleView) -> bool {
        debug_assert_eq!(tuple.num_measures(), self.dims);
        let point = self.canonical(tuple);
        let mut current = self.root;
        let mut depth = 0usize;
        while let Some(index) = current {
            let node = &self.nodes[index as usize];
            if node.id == id && !node.dead && node.point == point {
                self.nodes[index as usize].dead = true;
                self.dead += 1;
                if 2 * self.dead >= self.nodes.len() {
                    self.rebuild();
                }
                return true;
            }
            let axis = depth % self.dims;
            current = if point[axis] < node.point[axis] {
                node.left
            } else {
                node.right
            };
            depth += 1;
        }
        false
    }

    /// Purges dead nodes by re-inserting the survivors in insertion order —
    /// arena order *is* insertion order, so the rebuilt tree is exactly the
    /// tree an append-only run over the survivors would have produced
    /// (deterministic across windowed and rebuilt-from-scratch monitors).
    fn rebuild(&mut self) {
        let old = std::mem::take(&mut self.nodes);
        self.root = None;
        self.dead = 0;
        self.nodes.reserve(old.iter().filter(|n| !n.dead).count());
        for node in old {
            if !node.dead {
                self.insert_canonical(node.id, node.point);
            }
        }
    }

    /// Returns the ids of all indexed tuples whose canonical measures are
    /// greater than or equal to `query`'s on **every** attribute of
    /// `subspace` — the candidate dominators of `query` in that subspace.
    ///
    /// Callers still need a strictness check (a candidate equal to the query
    /// on every attribute of the subspace does not dominate it).
    pub fn candidates_at_least(
        &self,
        query: impl TupleView,
        subspace: SubspaceMask,
    ) -> Vec<TupleId> {
        let q = self.canonical(query);
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.collect(root, 0, &q, subspace, &mut out);
        }
        out
    }

    fn collect(
        &self,
        node_index: u32,
        depth: usize,
        query: &[f64],
        subspace: SubspaceMask,
        out: &mut Vec<TupleId>,
    ) {
        let node = &self.nodes[node_index as usize];
        let satisfies = !node.dead && subspace.indices().all(|i| node.point[i] >= query[i]);
        if satisfies {
            out.push(node.id);
        }
        let axis = depth % self.dims;
        // The left subtree only holds points whose coordinate on `axis` is
        // strictly below this node's; if the query demands at least
        // `query[axis]` on a constrained axis and this node is already below
        // that, nothing on the left can qualify.
        let skip_left = subspace.contains(axis) && node.point[axis] < query[axis];
        if !skip_left {
            if let Some(left) = node.left {
                self.collect(left, depth + 1, query, subspace, out);
            }
        }
        if let Some(right) = node.right {
            self.collect(right, depth + 1, query, subspace, out);
        }
    }

    /// Approximate heap usage in bytes.
    pub fn approx_heap_bytes(&self) -> usize {
        self.nodes.len() * (self.dims * 8 + std::mem::size_of::<Node>())
    }

    /// Deep structural self-check; see [`sitfact_core::audit::Audit`].
    #[cfg(any(test, debug_assertions, feature = "deep-audit"))]
    pub fn audit(&self) -> Result<(), sitfact_core::AuditViolation> {
        sitfact_core::Audit::check(self)
    }
}

/// Checks the spatial invariant `candidates_at_least` prunes by: every node
/// in a left subtree is strictly below its ancestor on the ancestor's split
/// axis, every node on the right is at least it — propagated as per-axis
/// interval bounds down the tree — plus arena reachability (the root reaches
/// each node exactly once) and point arity.
#[cfg(any(test, debug_assertions, feature = "deep-audit"))]
impl sitfact_core::Audit for KdTree {
    fn check(&self) -> Result<(), sitfact_core::AuditViolation> {
        use sitfact_core::AuditViolation;
        let fail = |invariant: &'static str, detail: String| {
            Err(AuditViolation::new("KdTree", invariant, detail))
        };
        if self.root.is_none() != self.nodes.is_empty() {
            return fail(
                "root-consistent",
                format!(
                    "root = {:?} but the arena holds {} nodes",
                    self.root,
                    self.nodes.len()
                ),
            );
        }
        if self.directions.len() != self.dims {
            return fail(
                "direction-arity",
                format!(
                    "{} directions for {} axes",
                    self.directions.len(),
                    self.dims
                ),
            );
        }
        let flagged = self.nodes.iter().filter(|n| n.dead).count();
        if flagged != self.dead {
            return fail(
                "dead-counter",
                format!(
                    "{flagged} nodes carry the dead flag but the counter says {}",
                    self.dead
                ),
            );
        }
        // `remove` rebuilds the moment the dead fraction reaches ½, so a
        // tree at rest always keeps a live majority.
        if self.dead > 0 && 2 * self.dead >= self.nodes.len() {
            return fail(
                "dead-threshold",
                format!(
                    "{} of {} nodes are dead — the ½ rebuild threshold should have fired",
                    self.dead,
                    self.nodes.len()
                ),
            );
        }
        let mut visited = vec![false; self.nodes.len()];
        // (node, depth, per-axis lower bound inclusive, upper bound exclusive)
        let mut stack: Vec<(u32, usize, Vec<f64>, Vec<f64>)> = Vec::new();
        if let Some(root) = self.root {
            stack.push((
                root,
                0,
                vec![f64::NEG_INFINITY; self.dims],
                vec![f64::INFINITY; self.dims],
            ));
        }
        while let Some((index, depth, lo, hi)) = stack.pop() {
            let Some(node) = self.nodes.get(index as usize) else {
                return fail(
                    "child-in-arena",
                    format!(
                        "child index {index} out of range ({} nodes)",
                        self.nodes.len()
                    ),
                );
            };
            if std::mem::replace(&mut visited[index as usize], true) {
                return fail(
                    "tree-shape",
                    format!("node {index} is reachable twice (shared child or cycle)"),
                );
            }
            if node.point.len() != self.dims {
                return fail(
                    "point-arity",
                    format!(
                        "node {index} holds {} coordinates, want {}",
                        node.point.len(),
                        self.dims
                    ),
                );
            }
            for axis in 0..self.dims {
                let v = node.point[axis];
                if v.is_nan() || v < lo[axis] || v >= hi[axis] {
                    return fail(
                        "bounding-box",
                        format!(
                            "node {index} (id {}) coordinate {v} on axis {axis} escapes the \
                             interval [{}, {}) its ancestors imply",
                            node.id, lo[axis], hi[axis]
                        ),
                    );
                }
            }
            let axis = depth % self.dims;
            if let Some(left) = node.left {
                let mut child_hi = hi.clone();
                child_hi[axis] = child_hi[axis].min(node.point[axis]);
                stack.push((left, depth + 1, lo.clone(), child_hi));
            }
            if let Some(right) = node.right {
                let mut child_lo = lo;
                child_lo[axis] = child_lo[axis].max(node.point[axis]);
                stack.push((right, depth + 1, child_lo, hi));
            }
        }
        if let Some(unreached) = visited.iter().position(|&v| !v) {
            return fail(
                "tree-shape",
                format!(
                    "node {unreached} (id {}) is in the arena but unreachable from the root",
                    self.nodes[unreached].id
                ),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitfact_core::Tuple;

    fn tuple(measures: &[f64]) -> Tuple {
        Tuple::new(vec![0], measures.to_vec())
    }

    fn higher(n: usize) -> Vec<Direction> {
        vec![Direction::HigherIsBetter; n]
    }

    /// Brute-force reference for the one-sided query.
    fn reference(
        points: &[(TupleId, Tuple)],
        query: &Tuple,
        subspace: SubspaceMask,
        dirs: &[Direction],
    ) -> Vec<TupleId> {
        let mut out: Vec<TupleId> = points
            .iter()
            .filter(|(_, p)| {
                subspace
                    .indices()
                    .all(|i| dirs[i].better_or_equal(p.measure(i), query.measure(i)))
            })
            .map(|(id, _)| *id)
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn empty_tree_returns_nothing() {
        let tree = KdTree::new(&higher(2));
        assert!(tree.is_empty());
        assert!(tree
            .candidates_at_least(tuple(&[0.0, 0.0]), SubspaceMask::full(2))
            .is_empty());
    }

    #[test]
    fn finds_dominating_candidates() {
        let dirs = higher(3);
        let mut tree = KdTree::new(&dirs);
        let points = [
            [10.0, 15.0, 1.0],
            [15.0, 10.0, 2.0],
            [17.0, 17.0, 3.0],
            [20.0, 20.0, 4.0],
            [11.0, 15.0, 0.5],
        ];
        for (i, p) in points.iter().enumerate() {
            tree.insert(i as TupleId, tuple(p));
        }
        assert_eq!(tree.len(), 5);
        // Who is at least (11, 15, *) on {m0, m1}? -> t0 fails m0? t0=(10,..) fails.
        let q = tuple(&[11.0, 15.0, 0.0]);
        let mut found = tree.candidates_at_least(&q, SubspaceMask::from_indices([0, 1]));
        found.sort_unstable();
        assert_eq!(found, vec![2, 3, 4]);
        // Full-space query from the origin returns everything.
        let all = tree.candidates_at_least(tuple(&[0.0, 0.0, 0.0]), SubspaceMask::full(3));
        assert_eq!(all.len(), 5);
        // A query above everything returns nothing.
        let none = tree.candidates_at_least(tuple(&[99.0, 99.0, 99.0]), SubspaceMask::full(3));
        assert!(none.is_empty());
    }

    #[test]
    fn respects_lower_is_better_directions() {
        let dirs = vec![Direction::HigherIsBetter, Direction::LowerIsBetter];
        let mut tree = KdTree::new(&dirs);
        // (points, fouls): fewer fouls is better.
        tree.insert(0, tuple(&[20.0, 5.0]));
        tree.insert(1, tuple(&[20.0, 1.0]));
        tree.insert(2, tuple(&[10.0, 1.0]));
        let q = tuple(&[15.0, 3.0]);
        let mut found = tree.candidates_at_least(&q, SubspaceMask::full(2));
        found.sort_unstable();
        // Only t1 has >= points and <= fouls.
        assert_eq!(found, vec![1]);
    }

    #[test]
    fn matches_reference_on_random_data() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        let dirs = vec![
            Direction::HigherIsBetter,
            Direction::LowerIsBetter,
            Direction::HigherIsBetter,
            Direction::HigherIsBetter,
        ];
        let mut tree = KdTree::new(&dirs);
        let mut points = Vec::new();
        for i in 0..300u32 {
            let t = tuple(&[
                rng.gen_range(0..20) as f64,
                rng.gen_range(0..20) as f64,
                rng.gen_range(0..20) as f64,
                rng.gen_range(0..20) as f64,
            ]);
            tree.insert(i, &t);
            points.push((i, t));
        }
        for _ in 0..50 {
            let q = tuple(&[
                rng.gen_range(0..20) as f64,
                rng.gen_range(0..20) as f64,
                rng.gen_range(0..20) as f64,
                rng.gen_range(0..20) as f64,
            ]);
            for mask in [0b1111u32, 0b0011, 0b1010, 0b0100, 0b0001] {
                let subspace = SubspaceMask(mask);
                let mut found = tree.candidates_at_least(&q, subspace);
                found.sort_unstable();
                let expected = reference(&points, &q, subspace, &dirs);
                assert_eq!(found, expected, "mask {mask:04b} query {:?}", q.measures());
            }
        }
    }

    #[test]
    fn heap_estimate_grows() {
        let mut tree = KdTree::new(&higher(2));
        let empty = tree.approx_heap_bytes();
        for i in 0..100 {
            tree.insert(i, tuple(&[i as f64, 1.0]));
        }
        assert!(tree.approx_heap_bytes() > empty);
    }

    #[test]
    fn remove_hides_points_and_rebuild_purges_them() {
        let dirs = higher(2);
        let mut tree = KdTree::new(&dirs);
        let points: Vec<Tuple> = (0..8).map(|i| tuple(&[i as f64, (8 - i) as f64])).collect();
        for (i, p) in points.iter().enumerate() {
            tree.insert(i as TupleId, p);
        }
        // Removing an id whose measures don't match, or twice, fails.
        assert!(!tree.remove(3, tuple(&[99.0, 99.0])));
        assert!(tree.remove(3, &points[3]));
        assert!(!tree.remove(3, &points[3]));
        assert_eq!(tree.len(), 7);
        assert_eq!(tree.dead_len(), 1);
        let found = tree.candidates_at_least(tuple(&[0.0, 0.0]), SubspaceMask::full(2));
        assert!(!found.contains(&3), "dead ids must not be reported");
        assert_eq!(found.len(), 7);
        tree.audit().unwrap();
        // Delete up to the ½ threshold: the rebuild purges the arena.
        for i in [0u32, 1, 2] {
            assert!(tree.remove(i, &points[i as usize]));
        }
        assert_eq!(tree.dead_len(), 0, "threshold rebuild must have fired");
        assert_eq!(tree.len(), 4);
        let mut rest = tree.candidates_at_least(tuple(&[0.0, 0.0]), SubspaceMask::full(2));
        rest.sort_unstable();
        assert_eq!(rest, vec![4, 5, 6, 7]);
        tree.audit().unwrap();
    }

    #[test]
    fn rebuild_matches_an_append_only_tree_over_the_survivors() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        let dirs = higher(3);
        let mut tree = KdTree::new(&dirs);
        let mut points = Vec::new();
        for i in 0..120u32 {
            let t = tuple(&[
                rng.gen_range(0..15) as f64,
                rng.gen_range(0..15) as f64,
                rng.gen_range(0..15) as f64,
            ]);
            tree.insert(i, &t);
            points.push((i, t));
        }
        // Retract a prefix, as the windowed monitors do.
        for (id, t) in &points[..70] {
            assert!(tree.remove(*id, t));
        }
        let mut fresh = KdTree::new(&dirs);
        for (id, t) in &points[70..] {
            fresh.insert(*id, t);
        }
        assert_eq!(tree.len(), fresh.len());
        for _ in 0..25 {
            let q = tuple(&[
                rng.gen_range(0..15) as f64,
                rng.gen_range(0..15) as f64,
                rng.gen_range(0..15) as f64,
            ]);
            for mask in [0b111u32, 0b011, 0b100] {
                let subspace = SubspaceMask(mask);
                let mut a = tree.candidates_at_least(&q, subspace);
                let mut b = fresh.candidates_at_least(&q, subspace);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b);
                let expected = reference(&points[70..], &q, subspace, &dirs);
                assert_eq!(a, expected);
            }
        }
        tree.audit().unwrap();
        fresh.audit().unwrap();
    }
}
