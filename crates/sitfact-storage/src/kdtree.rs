//! k-d tree over the measure space.
//!
//! `BaselineIdx` (Section IV of the paper) avoids scanning the whole table by
//! asking, for each measure subspace `M`, the one-sided range query
//! `⋀_{m_i ∈ M} (m_i ≥ t.m_i)`: which historical tuples are at least as good
//! as the new tuple on every attribute of `M`? Those are the only tuples that
//! can dominate `t` in `M`. The tree indexes the *canonical* measure vectors
//! (lower-is-better attributes negated) so "better" is always "greater or
//! equal".

use sitfact_core::{Direction, SubspaceMask, TupleId, TupleView};

#[derive(Debug, Clone)]
struct Node {
    point: Box<[f64]>,
    id: TupleId,
    left: Option<u32>,
    right: Option<u32>,
}

/// A k-d tree keyed by canonical measure vectors, supporting insertion and
/// one-sided ("at least as good on these attributes") range queries.
///
/// Points are inserted in arrival order without rebalancing — adequate for the
/// streaming workloads of the paper, where the tree is only a baseline
/// substrate.
#[derive(Debug, Clone)]
pub struct KdTree {
    dims: usize,
    directions: Vec<Direction>,
    nodes: Vec<Node>,
    root: Option<u32>,
}

impl KdTree {
    /// Creates an empty tree over measures with the given directions.
    pub fn new(directions: &[Direction]) -> Self {
        KdTree {
            dims: directions.len(),
            directions: directions.to_vec(),
            nodes: Vec::new(),
            root: None,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn canonical(&self, tuple: impl TupleView) -> Box<[f64]> {
        (0..self.dims)
            .map(|i| self.directions[i].canonical(tuple.measure(i)))
            .collect()
    }

    /// Inserts a tuple's measures under its id.
    pub fn insert(&mut self, id: TupleId, tuple: impl TupleView) {
        debug_assert_eq!(tuple.num_measures(), self.dims);
        let point = self.canonical(tuple);
        let new_index = self.nodes.len() as u32;
        self.nodes.push(Node {
            point,
            id,
            left: None,
            right: None,
        });
        let Some(mut current) = self.root else {
            self.root = Some(new_index);
            return;
        };
        let mut depth = 0usize;
        loop {
            let axis = depth % self.dims;
            let go_left = self.nodes[new_index as usize].point[axis]
                < self.nodes[current as usize].point[axis];
            let next = if go_left {
                self.nodes[current as usize].left
            } else {
                self.nodes[current as usize].right
            };
            match next {
                Some(child) => {
                    current = child;
                    depth += 1;
                }
                None => {
                    if go_left {
                        self.nodes[current as usize].left = Some(new_index);
                    } else {
                        self.nodes[current as usize].right = Some(new_index);
                    }
                    return;
                }
            }
        }
    }

    /// Returns the ids of all indexed tuples whose canonical measures are
    /// greater than or equal to `query`'s on **every** attribute of
    /// `subspace` — the candidate dominators of `query` in that subspace.
    ///
    /// Callers still need a strictness check (a candidate equal to the query
    /// on every attribute of the subspace does not dominate it).
    pub fn candidates_at_least(
        &self,
        query: impl TupleView,
        subspace: SubspaceMask,
    ) -> Vec<TupleId> {
        let q = self.canonical(query);
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.collect(root, 0, &q, subspace, &mut out);
        }
        out
    }

    fn collect(
        &self,
        node_index: u32,
        depth: usize,
        query: &[f64],
        subspace: SubspaceMask,
        out: &mut Vec<TupleId>,
    ) {
        let node = &self.nodes[node_index as usize];
        let satisfies = subspace.indices().all(|i| node.point[i] >= query[i]);
        if satisfies {
            out.push(node.id);
        }
        let axis = depth % self.dims;
        // The left subtree only holds points whose coordinate on `axis` is
        // strictly below this node's; if the query demands at least
        // `query[axis]` on a constrained axis and this node is already below
        // that, nothing on the left can qualify.
        let skip_left = subspace.contains(axis) && node.point[axis] < query[axis];
        if !skip_left {
            if let Some(left) = node.left {
                self.collect(left, depth + 1, query, subspace, out);
            }
        }
        if let Some(right) = node.right {
            self.collect(right, depth + 1, query, subspace, out);
        }
    }

    /// Approximate heap usage in bytes.
    pub fn approx_heap_bytes(&self) -> usize {
        self.nodes.len() * (self.dims * 8 + std::mem::size_of::<Node>())
    }

    /// Deep structural self-check; see [`sitfact_core::audit::Audit`].
    #[cfg(any(test, debug_assertions, feature = "deep-audit"))]
    pub fn audit(&self) -> Result<(), sitfact_core::AuditViolation> {
        sitfact_core::Audit::check(self)
    }
}

/// Checks the spatial invariant `candidates_at_least` prunes by: every node
/// in a left subtree is strictly below its ancestor on the ancestor's split
/// axis, every node on the right is at least it — propagated as per-axis
/// interval bounds down the tree — plus arena reachability (the root reaches
/// each node exactly once) and point arity.
#[cfg(any(test, debug_assertions, feature = "deep-audit"))]
impl sitfact_core::Audit for KdTree {
    fn check(&self) -> Result<(), sitfact_core::AuditViolation> {
        use sitfact_core::AuditViolation;
        let fail = |invariant: &'static str, detail: String| {
            Err(AuditViolation::new("KdTree", invariant, detail))
        };
        if self.root.is_none() != self.nodes.is_empty() {
            return fail(
                "root-consistent",
                format!(
                    "root = {:?} but the arena holds {} nodes",
                    self.root,
                    self.nodes.len()
                ),
            );
        }
        if self.directions.len() != self.dims {
            return fail(
                "direction-arity",
                format!(
                    "{} directions for {} axes",
                    self.directions.len(),
                    self.dims
                ),
            );
        }
        let mut visited = vec![false; self.nodes.len()];
        // (node, depth, per-axis lower bound inclusive, upper bound exclusive)
        let mut stack: Vec<(u32, usize, Vec<f64>, Vec<f64>)> = Vec::new();
        if let Some(root) = self.root {
            stack.push((
                root,
                0,
                vec![f64::NEG_INFINITY; self.dims],
                vec![f64::INFINITY; self.dims],
            ));
        }
        while let Some((index, depth, lo, hi)) = stack.pop() {
            let Some(node) = self.nodes.get(index as usize) else {
                return fail(
                    "child-in-arena",
                    format!(
                        "child index {index} out of range ({} nodes)",
                        self.nodes.len()
                    ),
                );
            };
            if std::mem::replace(&mut visited[index as usize], true) {
                return fail(
                    "tree-shape",
                    format!("node {index} is reachable twice (shared child or cycle)"),
                );
            }
            if node.point.len() != self.dims {
                return fail(
                    "point-arity",
                    format!(
                        "node {index} holds {} coordinates, want {}",
                        node.point.len(),
                        self.dims
                    ),
                );
            }
            for axis in 0..self.dims {
                let v = node.point[axis];
                if v.is_nan() || v < lo[axis] || v >= hi[axis] {
                    return fail(
                        "bounding-box",
                        format!(
                            "node {index} (id {}) coordinate {v} on axis {axis} escapes the \
                             interval [{}, {}) its ancestors imply",
                            node.id, lo[axis], hi[axis]
                        ),
                    );
                }
            }
            let axis = depth % self.dims;
            if let Some(left) = node.left {
                let mut child_hi = hi.clone();
                child_hi[axis] = child_hi[axis].min(node.point[axis]);
                stack.push((left, depth + 1, lo.clone(), child_hi));
            }
            if let Some(right) = node.right {
                let mut child_lo = lo;
                child_lo[axis] = child_lo[axis].max(node.point[axis]);
                stack.push((right, depth + 1, child_lo, hi));
            }
        }
        if let Some(unreached) = visited.iter().position(|&v| !v) {
            return fail(
                "tree-shape",
                format!(
                    "node {unreached} (id {}) is in the arena but unreachable from the root",
                    self.nodes[unreached].id
                ),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitfact_core::Tuple;

    fn tuple(measures: &[f64]) -> Tuple {
        Tuple::new(vec![0], measures.to_vec())
    }

    fn higher(n: usize) -> Vec<Direction> {
        vec![Direction::HigherIsBetter; n]
    }

    /// Brute-force reference for the one-sided query.
    fn reference(
        points: &[(TupleId, Tuple)],
        query: &Tuple,
        subspace: SubspaceMask,
        dirs: &[Direction],
    ) -> Vec<TupleId> {
        let mut out: Vec<TupleId> = points
            .iter()
            .filter(|(_, p)| {
                subspace
                    .indices()
                    .all(|i| dirs[i].better_or_equal(p.measure(i), query.measure(i)))
            })
            .map(|(id, _)| *id)
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn empty_tree_returns_nothing() {
        let tree = KdTree::new(&higher(2));
        assert!(tree.is_empty());
        assert!(tree
            .candidates_at_least(tuple(&[0.0, 0.0]), SubspaceMask::full(2))
            .is_empty());
    }

    #[test]
    fn finds_dominating_candidates() {
        let dirs = higher(3);
        let mut tree = KdTree::new(&dirs);
        let points = [
            [10.0, 15.0, 1.0],
            [15.0, 10.0, 2.0],
            [17.0, 17.0, 3.0],
            [20.0, 20.0, 4.0],
            [11.0, 15.0, 0.5],
        ];
        for (i, p) in points.iter().enumerate() {
            tree.insert(i as TupleId, tuple(p));
        }
        assert_eq!(tree.len(), 5);
        // Who is at least (11, 15, *) on {m0, m1}? -> t0 fails m0? t0=(10,..) fails.
        let q = tuple(&[11.0, 15.0, 0.0]);
        let mut found = tree.candidates_at_least(&q, SubspaceMask::from_indices([0, 1]));
        found.sort_unstable();
        assert_eq!(found, vec![2, 3, 4]);
        // Full-space query from the origin returns everything.
        let all = tree.candidates_at_least(tuple(&[0.0, 0.0, 0.0]), SubspaceMask::full(3));
        assert_eq!(all.len(), 5);
        // A query above everything returns nothing.
        let none = tree.candidates_at_least(tuple(&[99.0, 99.0, 99.0]), SubspaceMask::full(3));
        assert!(none.is_empty());
    }

    #[test]
    fn respects_lower_is_better_directions() {
        let dirs = vec![Direction::HigherIsBetter, Direction::LowerIsBetter];
        let mut tree = KdTree::new(&dirs);
        // (points, fouls): fewer fouls is better.
        tree.insert(0, tuple(&[20.0, 5.0]));
        tree.insert(1, tuple(&[20.0, 1.0]));
        tree.insert(2, tuple(&[10.0, 1.0]));
        let q = tuple(&[15.0, 3.0]);
        let mut found = tree.candidates_at_least(&q, SubspaceMask::full(2));
        found.sort_unstable();
        // Only t1 has >= points and <= fouls.
        assert_eq!(found, vec![1]);
    }

    #[test]
    fn matches_reference_on_random_data() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        let dirs = vec![
            Direction::HigherIsBetter,
            Direction::LowerIsBetter,
            Direction::HigherIsBetter,
            Direction::HigherIsBetter,
        ];
        let mut tree = KdTree::new(&dirs);
        let mut points = Vec::new();
        for i in 0..300u32 {
            let t = tuple(&[
                rng.gen_range(0..20) as f64,
                rng.gen_range(0..20) as f64,
                rng.gen_range(0..20) as f64,
                rng.gen_range(0..20) as f64,
            ]);
            tree.insert(i, &t);
            points.push((i, t));
        }
        for _ in 0..50 {
            let q = tuple(&[
                rng.gen_range(0..20) as f64,
                rng.gen_range(0..20) as f64,
                rng.gen_range(0..20) as f64,
                rng.gen_range(0..20) as f64,
            ]);
            for mask in [0b1111u32, 0b0011, 0b1010, 0b0100, 0b0001] {
                let subspace = SubspaceMask(mask);
                let mut found = tree.candidates_at_least(&q, subspace);
                found.sort_unstable();
                let expected = reference(&points, &q, subspace, &dirs);
                assert_eq!(found, expected, "mask {mask:04b} query {:?}", q.measures());
            }
        }
    }

    #[test]
    fn heap_estimate_grows() {
        let mut tree = KdTree::new(&higher(2));
        let empty = tree.approx_heap_bytes();
        for i in 0..100 {
            tree.insert(i, tuple(&[i as f64, 1.0]));
        }
        assert!(tree.approx_heap_bytes() > empty);
    }
}
