//! In-memory skyline store: nested hash maps from constraint to subspace to a
//! copy-on-write vector of entries.

use crate::stats::StoreStats;
use crate::store::{SkylineStore, StoreCell, StoredEntry};
use sitfact_core::{Constraint, FxHashMap, SubspaceMask, TupleId};
use std::sync::Arc;

/// In-memory implementation of [`SkylineStore`].
///
/// Cells are created lazily on first insert; empty cells are removed so that
/// the map size tracks the number of *non-empty* cells (which is what the
/// file-backed variant pays I/O for and what the memory experiment reports).
///
/// Cell contents are `Arc<Vec<_>>`: a read is a reference-count bump (the
/// discovery algorithms read a cell once per visited constraint per subspace,
/// which is by far the hottest operation), and mutations copy-on-write only
/// when a snapshot of the same cell is still alive.
#[derive(Debug)]
pub struct MemorySkylineStore {
    cells: FxHashMap<Constraint, FxHashMap<SubspaceMask, Arc<Vec<StoredEntry>>>>,
    stored_entries: u64,
    non_empty_cells: u64,
    empty: Arc<Vec<StoredEntry>>,
}

impl Default for MemorySkylineStore {
    fn default() -> Self {
        MemorySkylineStore {
            cells: FxHashMap::default(),
            stored_entries: 0,
            non_empty_cells: 0,
            empty: Arc::new(Vec::new()),
        }
    }
}

impl MemorySkylineStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Iterates over all non-empty cells (used by prominence queries and by
    /// tests asserting the paper's invariants).
    pub fn iter_cells(&self) -> impl Iterator<Item = (&Constraint, SubspaceMask, &[StoredEntry])> {
        self.cells.iter().flat_map(|(constraint, by_subspace)| {
            by_subspace
                .iter()
                .map(move |(&subspace, entries)| (constraint, subspace, entries.as_slice()))
        })
    }

    /// Number of entries stored in a specific cell without copying them.
    pub fn cell_len(&self, constraint: &Constraint, subspace: SubspaceMask) -> usize {
        self.cells
            .get(constraint)
            .and_then(|by_subspace| by_subspace.get(&subspace))
            .map_or(0, |entries| entries.len())
    }

    /// Deep structural self-check; see [`sitfact_core::audit::Audit`].
    #[cfg(any(test, debug_assertions, feature = "deep-audit"))]
    pub fn audit(&self) -> Result<(), sitfact_core::AuditViolation> {
        sitfact_core::Audit::check(self)
    }

    /// Extends [`MemorySkylineStore::audit`] with the semantic skyline
    /// invariant, which needs the measure directions the store itself does
    /// not hold: every stored cell must *be* its own skyline — recomputing
    /// the skyline of the stored members in the cell's subspace must keep
    /// them all (no stored entry dominates another).
    #[cfg(any(test, debug_assertions, feature = "deep-audit"))]
    pub fn audit_with_directions(
        &self,
        directions: &[sitfact_core::Direction],
    ) -> Result<(), sitfact_core::AuditViolation> {
        self.audit()?;
        for (constraint, subspace, entries) in self.iter_cells() {
            for a in entries {
                for b in entries {
                    if dominates_measures(&a.measures, &b.measures, subspace, directions) {
                        return Err(sitfact_core::AuditViolation::new(
                            "MemorySkylineStore",
                            "cell-is-own-skyline",
                            format!(
                                "in cell ({constraint:?}, {subspace:?}) stored entry {} \
                                 dominates stored entry {} — recomputing the skyline from \
                                 the members would drop {}",
                                a.id, b.id, b.id
                            ),
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// `dominates` over raw measure slices (a [`StoredEntry`] has no dimension
/// columns, so it cannot be a `TupleView`).
#[cfg(any(test, debug_assertions, feature = "deep-audit"))]
fn dominates_measures(
    left: &[f64],
    right: &[f64],
    m: SubspaceMask,
    directions: &[sitfact_core::Direction],
) -> bool {
    let mut strictly_better = false;
    for i in m.indices() {
        let (a, b) = (left[i], right[i]);
        if a == b {
            continue;
        }
        if directions[i].better(a, b) {
            strictly_better = true;
        } else {
            return false;
        }
    }
    strictly_better
}

/// Re-derives the store's denormalized bookkeeping from the cell contents:
/// entry/cell counters, no retained empty cells or inner maps (reads of
/// absent cells must stay allocation-free), and id uniqueness plus uniform
/// measure arity within each cell.
#[cfg(any(test, debug_assertions, feature = "deep-audit"))]
impl sitfact_core::Audit for MemorySkylineStore {
    fn check(&self) -> Result<(), sitfact_core::AuditViolation> {
        use sitfact_core::AuditViolation;
        let fail = |invariant: &'static str, detail: String| {
            Err(AuditViolation::new("MemorySkylineStore", invariant, detail))
        };
        let mut entries = 0u64;
        let mut cells = 0u64;
        for (constraint, by_subspace) in &self.cells {
            if by_subspace.is_empty() {
                return fail(
                    "no-empty-cells",
                    format!("constraint {constraint:?} maps to an empty subspace map"),
                );
            }
            for (&subspace, cell) in by_subspace {
                if cell.is_empty() {
                    return fail(
                        "no-empty-cells",
                        format!("cell ({constraint:?}, {subspace:?}) is retained but empty"),
                    );
                }
                cells += 1;
                entries += cell.len() as u64;
                let arity = cell[0].measures.len();
                for (pos, entry) in cell.iter().enumerate() {
                    if entry.measures.len() != arity {
                        return fail(
                            "uniform-measure-arity",
                            format!(
                                "cell ({constraint:?}, {subspace:?}) entry {} holds {} \
                                 measures where the cell's first entry holds {arity}",
                                entry.id,
                                entry.measures.len()
                            ),
                        );
                    }
                    if cell[..pos].iter().any(|prior| prior.id == entry.id) {
                        return fail(
                            "unique-ids-per-cell",
                            format!(
                                "cell ({constraint:?}, {subspace:?}) stores id {} twice",
                                entry.id
                            ),
                        );
                    }
                }
            }
        }
        if entries != self.stored_entries {
            return fail(
                "entry-counter",
                format!(
                    "stored_entries = {} but the cells hold {entries} entries",
                    self.stored_entries
                ),
            );
        }
        if cells != self.non_empty_cells {
            return fail(
                "cell-counter",
                format!(
                    "non_empty_cells = {} but {cells} non-empty cells exist",
                    self.non_empty_cells
                ),
            );
        }
        if !self.empty.is_empty() {
            return fail(
                "empty-sentinel",
                format!(
                    "the shared empty-cell sentinel holds {} entries",
                    self.empty.len()
                ),
            );
        }
        Ok(())
    }
}

impl SkylineStore for MemorySkylineStore {
    fn read(&mut self, constraint: &Constraint, subspace: SubspaceMask) -> Arc<Vec<StoredEntry>> {
        self.cells
            .get(constraint)
            .and_then(|by_subspace| by_subspace.get(&subspace))
            .cloned()
            .unwrap_or_else(|| Arc::clone(&self.empty))
    }

    fn insert(&mut self, constraint: &Constraint, subspace: SubspaceMask, entry: StoredEntry) {
        let by_subspace = self.cells.entry(constraint.clone()).or_default();
        let cell = by_subspace.entry(subspace).or_default();
        if cell.is_empty() {
            self.non_empty_cells += 1;
        }
        Arc::make_mut(cell).push(entry);
        self.stored_entries += 1;
    }

    fn remove(&mut self, constraint: &Constraint, subspace: SubspaceMask, id: TupleId) -> bool {
        let Some(by_subspace) = self.cells.get_mut(constraint) else {
            return false;
        };
        let Some(cell) = by_subspace.get_mut(&subspace) else {
            return false;
        };
        let Some(pos) = cell.iter().position(|e| e.id == id) else {
            return false;
        };
        Arc::make_mut(cell).swap_remove(pos);
        self.stored_entries -= 1;
        if cell.is_empty() {
            by_subspace.remove(&subspace);
            self.non_empty_cells -= 1;
            if by_subspace.is_empty() {
                self.cells.remove(constraint);
            }
        }
        true
    }

    fn contains(&mut self, constraint: &Constraint, subspace: SubspaceMask, id: TupleId) -> bool {
        self.cells
            .get(constraint)
            .and_then(|by_subspace| by_subspace.get(&subspace))
            .is_some_and(|cell| cell.iter().any(|e| e.id == id))
    }

    fn stats(&self) -> StoreStats {
        // Estimate bytes from the actual layout: per cell the constraint key
        // (inline box + boxed values) and the subspace map entry; per entry
        // the inline `StoredEntry` plus its `Arc<[f64]>` allocation (counts +
        // measures).
        use std::mem::size_of;
        let mut bytes = 0u64;
        for (constraint, by_subspace) in &self.cells {
            bytes += (size_of::<Constraint>()
                + constraint.num_dims() * size_of::<sitfact_core::DimValueId>())
                as u64;
            for cell in by_subspace.values() {
                let measures = cell.first().map_or(0, |e| e.measures.len());
                let per_entry =
                    size_of::<StoredEntry>() + 2 * size_of::<usize>() + measures * size_of::<f64>();
                bytes += (size_of::<(SubspaceMask, Arc<Vec<StoredEntry>>)>()
                    + cell.len() * per_entry) as u64;
            }
        }
        StoreStats {
            stored_entries: self.stored_entries,
            non_empty_cells: self.non_empty_cells,
            approx_bytes: bytes,
            file_reads: 0,
            file_writes: 0,
        }
    }

    fn clear(&mut self) {
        self.cells.clear();
        self.stored_entries = 0;
        self.non_empty_cells = 0;
    }

    fn dump_cells(&self) -> Option<Vec<StoreCell>> {
        Some(
            self.iter_cells()
                .map(|(constraint, subspace, entries)| StoreCell {
                    constraint: constraint.values().to_vec(),
                    subspace: subspace.0,
                    entries: entries
                        .iter()
                        .map(|e| (e.id, e.measures.to_vec()))
                        .collect(),
                })
                .collect(),
        )
    }

    fn load_cells(&mut self, cells: Vec<StoreCell>) -> sitfact_core::Result<()> {
        self.clear();
        for cell in cells {
            let constraint = Constraint::from_values(cell.constraint);
            let subspace = SubspaceMask(cell.subspace);
            for (id, measures) in cell.entries {
                self.insert(&constraint, subspace, StoredEntry::new(id, &measures));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constraint(values: Vec<u32>) -> Constraint {
        Constraint::from_values(values)
    }

    #[test]
    fn insert_read_remove_cycle() {
        let mut store = MemorySkylineStore::new();
        let c = constraint(vec![1, u32::MAX]);
        let m = SubspaceMask(0b11);
        assert!(store.read(&c, m).is_empty());

        store.insert(&c, m, StoredEntry::new(0, &[1.0, 2.0]));
        store.insert(&c, m, StoredEntry::new(1, &[3.0, 4.0]));
        assert_eq!(store.read(&c, m).len(), 2);
        assert!(store.contains(&c, m, 0));
        assert!(store.contains(&c, m, 1));
        assert!(!store.contains(&c, m, 2));
        assert_eq!(store.cell_len(&c, m), 2);

        assert!(store.remove(&c, m, 0));
        assert!(!store.remove(&c, m, 0));
        assert_eq!(store.read(&c, m).len(), 1);
        assert_eq!(store.read(&c, m)[0].id, 1);
    }

    #[test]
    fn read_snapshots_survive_mutation() {
        // The algorithms read a cell and keep iterating the snapshot while
        // removing entries from the same cell; copy-on-write must keep the
        // snapshot intact.
        let mut store = MemorySkylineStore::new();
        let c = constraint(vec![5]);
        let m = SubspaceMask(0b1);
        store.insert(&c, m, StoredEntry::new(0, &[1.0]));
        store.insert(&c, m, StoredEntry::new(1, &[2.0]));
        let snapshot = store.read(&c, m);
        assert!(store.remove(&c, m, 0));
        store.insert(&c, m, StoredEntry::new(2, &[3.0]));
        assert_eq!(snapshot.len(), 2, "snapshot must be unaffected");
        assert_eq!(store.cell_len(&c, m), 2);
        assert!(store.contains(&c, m, 2));
        assert!(!store.contains(&c, m, 0));
    }

    #[test]
    fn cells_are_independent() {
        let mut store = MemorySkylineStore::new();
        let c1 = constraint(vec![1, u32::MAX]);
        let c2 = constraint(vec![u32::MAX, 2]);
        store.insert(&c1, SubspaceMask(0b01), StoredEntry::new(0, &[1.0]));
        store.insert(&c1, SubspaceMask(0b10), StoredEntry::new(0, &[1.0]));
        store.insert(&c2, SubspaceMask(0b01), StoredEntry::new(1, &[2.0]));
        assert_eq!(store.read(&c1, SubspaceMask(0b01)).len(), 1);
        assert_eq!(store.read(&c1, SubspaceMask(0b10)).len(), 1);
        assert_eq!(store.read(&c2, SubspaceMask(0b01)).len(), 1);
        assert_eq!(store.read(&c2, SubspaceMask(0b10)).len(), 0);
        assert_eq!(store.stats().stored_entries, 3);
        assert_eq!(store.stats().non_empty_cells, 3);
    }

    #[test]
    fn stats_track_entries_and_bytes() {
        let mut store = MemorySkylineStore::new();
        let c = constraint(vec![0]);
        assert_eq!(store.stats().approx_bytes, 0);
        for i in 0..10 {
            store.insert(&c, SubspaceMask(1), StoredEntry::new(i, &[i as f64]));
        }
        let stats = store.stats();
        assert_eq!(stats.stored_entries, 10);
        assert_eq!(stats.non_empty_cells, 1);
        assert!(stats.approx_bytes > 0);
        assert_eq!(stats.file_reads, 0);
        assert_eq!(stats.file_writes, 0);
    }

    #[test]
    fn removing_last_entry_removes_the_cell() {
        let mut store = MemorySkylineStore::new();
        let c = constraint(vec![0]);
        store.insert(&c, SubspaceMask(1), StoredEntry::new(0, &[1.0]));
        assert_eq!(store.stats().non_empty_cells, 1);
        store.remove(&c, SubspaceMask(1), 0);
        assert_eq!(store.stats().non_empty_cells, 0);
        assert_eq!(store.stats().stored_entries, 0);
    }

    #[test]
    fn clear_empties_everything() {
        let mut store = MemorySkylineStore::new();
        let c = constraint(vec![0]);
        store.insert(&c, SubspaceMask(1), StoredEntry::new(0, &[1.0]));
        store.clear();
        assert_eq!(store.stats(), StoreStats::default());
        assert!(store.read(&c, SubspaceMask(1)).is_empty());
    }

    #[test]
    fn iter_cells_visits_all() {
        let mut store = MemorySkylineStore::new();
        let c1 = constraint(vec![1]);
        let c2 = constraint(vec![2]);
        store.insert(&c1, SubspaceMask(1), StoredEntry::new(0, &[1.0]));
        store.insert(&c2, SubspaceMask(1), StoredEntry::new(1, &[2.0]));
        let cells: Vec<_> = store.iter_cells().collect();
        assert_eq!(cells.len(), 2);
        let total: usize = cells.iter().map(|(_, _, entries)| entries.len()).sum();
        assert_eq!(total, 2);
    }
}
